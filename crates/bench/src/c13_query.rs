//! C13 — sustained mixed query serving under live ingest.
//!
//! The serving layer's claim is *reads do not stop the writes*: a
//! `QueryService` answers point, window, kNN, predictive and event-log
//! queries from watermark-stamped snapshots while one ingest thread
//! drives a full scenario through the pipeline. This experiment runs
//! exactly that shape — 1 writer × N reader threads — and reports, per
//! reader count, the sustained mixed-query throughput, the ingest
//! throughput alongside it, and the snapshots each reader observed
//! (watermark monotonicity is asserted, not assumed).
//!
//! On the 1-CPU bench container readers and the writer share one core,
//! so ingest slows as readers are added; the interesting numbers are
//! queries/s (the serving capacity of one snapshot generation) and the
//! *shape* of the degradation. On real hardware shards and readers
//! scale with cores.

use crate::util::{f, table, timed};
use mda_core::{MaritimePipeline, PipelineConfig};
use mda_events::ring::EventCursor;
use mda_geo::time::{HOUR, MINUTE};
use mda_geo::{BoundingBox, Position, Timestamp, VesselId};
use mda_sim::{Scenario, ScenarioConfig, SimOutput};
use mda_stream::runner::run_with_readers;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::Ordering;

/// Vessels in the standard serving workload.
pub const FLEET: usize = 150;
/// Scenario length of the standard workload.
pub const DURATION: i64 = 2 * HOUR;

/// Per-reader query tally of one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReaderTally {
    /// Point lookups (`latest`, `position_at`).
    pub points: u64,
    /// Window queries.
    pub windows: u64,
    /// kNN queries.
    pub knn: u64,
    /// Predictive queries (`where_at`, `eta`).
    pub predictive: u64,
    /// Event-log polls.
    pub polls: u64,
    /// Distinct snapshot stamps observed.
    pub stamps: u64,
}

impl ReaderTally {
    /// Total queries issued.
    pub fn total(&self) -> u64 {
        self.points + self.windows + self.knn + self.predictive + self.polls
    }
}

/// Build the standard scenario once (seeded, reusable across reader
/// counts).
pub fn scenario(seed: u64, vessels: usize, duration: i64) -> SimOutput {
    Scenario::generate(ScenarioConfig::regional(seed, vessels, duration))
}

/// One full 1-writer × `readers`-reader run over `sim`: the writer
/// ingests the whole scenario; each reader hammers a mixed query
/// battery against its own `QueryService` clone until ingest finishes
/// (asserting watermark monotonicity throughout). Returns the events
/// the writer emitted and each reader's tally.
pub fn drive(sim: &SimOutput, readers: usize) -> (usize, Vec<ReaderTally>) {
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = sim
        .world
        .zones
        .iter()
        .map(|z| mda_events::NamedZone {
            name: z.name.clone(),
            area: z.area.clone(),
            protected: z.kind == mda_sim::ZoneKind::ProtectedArea,
        })
        .collect();
    let mut pipeline = MaritimePipeline::new(config).with_weather(sim.weather.clone());
    let service = pipeline.query_service();
    let bounds = sim.world.bounds;
    let fleet = sim.vessels.len() as u32;

    let (events, tallies) = run_with_readers(
        || pipeline.run_scenario(sim).len(),
        readers,
        |reader, running| {
            let service = service.clone();
            let mut rng = StdRng::seed_from_u64(1_000 + reader as u64);
            let mut tally = ReaderTally::default();
            let mut cursor = EventCursor::default();
            let mut last_wm = Timestamp::MIN;
            loop {
                let done = !running.load(Ordering::Acquire);
                let snap = service.snapshot();
                let wm = snap.watermark();
                assert!(wm >= last_wm, "watermark regressed for reader {reader}");
                if wm > last_wm {
                    last_wm = wm;
                    tally.stamps += 1;
                }
                if wm != Timestamp::MIN {
                    let id: VesselId = rng.gen_range(1..=fleet.max(1));
                    // Point lookups.
                    let _ = snap.latest(id);
                    let _ = snap.position_at(id, wm - rng.gen_range(0..30) * MINUTE);
                    tally.points += 2;
                    // Window over a random half-degree box of the region.
                    let lat = rng.gen_range(bounds.min_lat..bounds.max_lat);
                    let lon = rng.gen_range(bounds.min_lon..bounds.max_lon);
                    let area = BoundingBox::new(lat - 0.25, lon - 0.25, lat + 0.25, lon + 0.25);
                    let _ = snap.window(&area, wm - 20 * MINUTE, wm);
                    tally.windows += 1;
                    // Snapshot kNN around a random point.
                    let _ = snap.knn(Position::new(lat, lon), wm, 5);
                    tally.knn += 1;
                    // Predictive: where will this vessel be in 15 min?
                    let _ = snap.where_at(id, wm + 15 * MINUTE);
                    tally.predictive += 1;
                    // ETA only every 8th round — the network walk is
                    // the one deliberately expensive query.
                    if tally.predictive % 8 == 0 {
                        let _ = snap.eta(id, Position::new(lat, lon));
                        tally.predictive += 1;
                    }
                    // Event subscription.
                    let poll = service.poll_since(cursor);
                    cursor = poll.cursor;
                    tally.polls += 1;
                }
                if done {
                    return tally;
                }
                std::thread::yield_now();
            }
        },
    );
    (events, tallies)
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let sim = scenario(31, FLEET, DURATION);
    let fixes = sim.ais.len() + sim.radar.len() + sim.vms.len();

    let mut rows = Vec::new();
    for readers in [1usize, 2, 4, 8] {
        let ((events, tallies), secs) = timed(|| drive(&sim, readers));
        let queries: u64 = tallies.iter().map(ReaderTally::total).sum();
        let stamps: u64 = tallies.iter().map(|t| t.stamps).sum::<u64>() / readers as u64;
        rows.push(vec![
            readers.to_string(),
            format!("{}/s", f(queries as f64 / secs, 0)),
            queries.to_string(),
            format!("{}/s", f(fixes as f64 / secs, 0)),
            stamps.to_string(),
            events.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        &format!("C13 — mixed queries under live ingest, {FLEET}-vessel scenario, 2 h"),
        &["readers", "queries", "total queries", "ingest (obs)", "stamps/reader", "events"],
        &rows,
    ));
    out.push_str(
        "\n(each reader loops a mixed battery — 2 point lookups, 1 window, 1 kNN,\n\
         1–2 predictive, 1 event poll per round — against consistent watermark-\n\
         stamped snapshots while one writer ingests the whole scenario; watermark\n\
         monotonicity per reader is asserted inside the loop. Single-CPU\n\
         container: readers and writer share one core, so ingest throughput\n\
         degrades as readers are added; queries/s is the serving-capacity\n\
         number. Event counts are reader-count invariant.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_serve_while_ingest_runs() {
        let sim = scenario(5, 20, HOUR);
        let (events, tallies) = drive(&sim, 2);
        assert!(events > 0, "scenario must emit events");
        assert_eq!(tallies.len(), 2);
        for t in &tallies {
            assert!(t.total() > 0, "every reader must have served queries");
            assert!(t.stamps > 0, "every reader must have seen published snapshots");
            assert!(t.points >= 2 * t.windows, "battery shape: 2 points per window");
        }
    }

    #[test]
    fn emission_is_reader_count_invariant() {
        let sim = scenario(6, 15, HOUR);
        let (a, _) = drive(&sim, 1);
        let (b, _) = drive(&sim, 4);
        assert_eq!(a, b, "readers must not perturb the write path");
    }
}
