//! C4 — real-time event recognition throughput (§3.1, ref 35).
//!
//! The event engine must keep up with "voluminous data streams of
//! moving entities in large geographic areas". Throughput is measured
//! as fixes/second through the full detector stack, as a function of
//! fleet size.

use crate::util::{drive_engine_ticked, f, table, timed};
use mda_events::engine::{EngineConfig, EventEngine};
use mda_events::zone::NamedZone;
use mda_geo::Fix;
use mda_sim::scenario::{Scenario, ScenarioConfig};

/// Event-time-ordered AIS fixes for a given fleet size.
pub fn ordered_fixes(n_vessels: usize, hours: i64) -> Vec<Fix> {
    let sim =
        Scenario::generate(ScenarioConfig::regional(61, n_vessels, hours * mda_geo::time::HOUR));
    let mut fixes = sim.ais_fixes();
    fixes.sort_by_key(|f| f.t);
    fixes
}

/// Engine with the standard zone set installed.
pub fn engine() -> EventEngine {
    let world = mda_sim::world::World::gulf_of_lion();
    let zones = world
        .zones
        .iter()
        .map(|z| NamedZone {
            name: z.name.clone(),
            area: z.area.clone(),
            protected: z.kind == mda_sim::world::ZoneKind::ProtectedArea,
        })
        .collect();
    EventEngine::new(EngineConfig { zones, ..Default::default() })
}

/// Feed all fixes through an engine, batched per minute of event time
/// with an aligned tick after each minute (the pairwise detectors and
/// the dark-vessel check run on ticks, placed by the pipeline's
/// `TickSchedule` discipline via [`drive_engine_ticked`]); returns
/// events emitted.
pub fn drive(fixes: &[Fix]) -> u64 {
    let mut e = engine();
    let mut events = drive_engine_ticked(&mut e, fixes);
    if let Some(last) = fixes.last() {
        events += e.tick(last.t).len() as u64;
    }
    events
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let mut rows = Vec::new();
    for n in [25usize, 50, 100, 200] {
        let fixes = ordered_fixes(n, 3);
        let (events, secs) = timed(|| drive(&fixes));
        rows.push(vec![
            n.to_string(),
            fixes.len().to_string(),
            events.to_string(),
            format!("{}/s", f(fixes.len() as f64 / secs, 0)),
            format!("{} µs", f(secs * 1e6 / fixes.len() as f64, 2)),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        "C4 — event-recognition throughput vs fleet size",
        &["vessels", "fixes", "events", "throughput", "latency/fix"],
        &rows,
    ));
    out.push_str(
        "\n(full detector stack: gaps, veracity, zones, loitering, rendezvous,\n\
         collision screening; per-fix latency should stay in the microsecond\n\
         range and grow sublinearly with fleet size thanks to the cell index)\n",
    );
    out
}
