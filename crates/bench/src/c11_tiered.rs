//! C11 — tiered hot/cold storage: seal throughput, cold query latency
//! vs hot, and bytes-per-fix of sealed segments vs the raw archive.
//!
//! The archive must retain months of history for normalcy models and
//! forensic queries; keeping every fix as a raw in-memory `Fix` grows
//! without bound. This experiment measures the cost of rotating dense
//! raw history into sealed, threshold-compressed, delta-encoded cold
//! segments — and what cold queries pay for it:
//!
//! - **seal throughput** — fixes/s moved hot→cold by `seal_before`
//!   (includes grid-index maintenance, compression and encoding).
//! - **bytes per ingested fix** — hot tier vs sealed segments, at the
//!   default retention tolerance (the ≥5× claim) and lossless.
//! - **window / knn latency** — the same queries against a never-
//!   sealed store and a fully-sealed store.

use crate::util::{f, table, timed};
use mda_core::config::RetentionPolicy;
use mda_geo::time::{HOUR, MINUTE};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use mda_store::segment::SegmentConfig;
use mda_store::shards::{ShardedTrajectoryStore, StIndexConfig, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of fixes in the standard workload.
pub const WORKLOAD: usize = 100_000;

/// Nominal region of the synthetic fleet.
pub fn bounds() -> BoundingBox {
    BoundingBox::new(42.0, 3.0, 44.0, 6.0)
}

/// A dense, *smooth* historical workload: `vessels` vessels on
/// persistent courses with slow drift, reporting every 10 s — the kind
/// of raw history the cold tier is built for (unlike `c10`'s random
/// positions, which no trajectory compressor can thin).
pub fn smooth_fleet(n: usize, vessels: u32, seed: u64) -> Vec<Fix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = bounds();
    let mut state: Vec<Fix> = (1..=vessels)
        .map(|id| {
            Fix::new(
                id,
                Timestamp::from_secs(0),
                Position::new(
                    rng.gen_range(b.min_lat + 0.2..b.max_lat - 0.2),
                    rng.gen_range(b.min_lon + 0.2..b.max_lon - 0.2),
                ),
                rng.gen_range(6.0..16.0),
                rng.gen_range(0.0..360.0),
            )
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let v = i % vessels as usize;
        let t = Timestamp::from_secs((i / vessels as usize) as i64 * 10);
        let prev = state[v];
        let mut fix = Fix { t, pos: prev.dead_reckon(t), ..prev };
        // Occasional gentle manoeuvre so synopses keep *some* points.
        if rng.gen_bool(0.01) {
            fix.cog_deg = (fix.cog_deg + rng.gen_range(-40.0..40.0)).rem_euclid(360.0);
            fix.sog_kn = (fix.sog_kn + rng.gen_range(-2.0..2.0)).clamp(4.0, 18.0);
        }
        state[v] = fix;
        out.push(fix);
    }
    out
}

/// A store configured like the pipeline archive: grid-indexed, sealing
/// at `tolerance_m` (the default retention tolerance for the headline
/// numbers, 0 for the lossless comparison).
pub fn archive_store(tolerance_m: f64) -> ShardedTrajectoryStore {
    ShardedTrajectoryStore::with_config(StoreConfig {
        shards: 8,
        st_index: Some(StIndexConfig { bounds: bounds(), cell_deg: 0.1, slice: 30 * MINUTE }),
        knn: None,
        seal: SegmentConfig { tolerance_m, max_silence: 30 * MINUTE, max_span: 30 * MINUTE },
    })
}

/// Ingest the workload and seal everything (one timed sweep). Returns
/// `(store, seal seconds)`.
pub fn sealed_store(fixes: &[Fix], tolerance_m: f64) -> (ShardedTrajectoryStore, f64) {
    let store = archive_store(tolerance_m);
    store.append_batch(fixes.to_vec());
    let horizon = fixes.iter().map(|fx| fx.t).max().unwrap_or(Timestamp(0)) + HOUR;
    let ((), secs) = timed(|| {
        store.seal_before(horizon);
    });
    (store, secs)
}

/// The standard window query mix: nine sub-boxes × a one-hour slice.
pub fn window_queries(t_hi: Timestamp) -> Vec<(BoundingBox, Timestamp, Timestamp)> {
    let b = bounds();
    let (lat_step, lon_step) = (b.lat_span() / 3.0, b.lon_span() / 3.0);
    let mut out = Vec::new();
    for i in 0..3 {
        for j in 0..3 {
            let area = BoundingBox::new(
                b.min_lat + lat_step * f64::from(i),
                b.min_lon + lon_step * f64::from(j),
                b.min_lat + lat_step * f64::from(i + 1),
                b.min_lon + lon_step * f64::from(j + 1),
            );
            let from = Timestamp(t_hi.millis() / 2);
            out.push((area, from, from + HOUR));
        }
    }
    out
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let fixes = smooth_fleet(WORKLOAD, 200, 42);
    let t_hi = fixes.iter().map(|fx| fx.t).max().unwrap();
    let default_tol = RetentionPolicy::default().cold_tolerance_m;

    let hot = archive_store(default_tol);
    hot.append_batch(fixes.clone());
    let hot_stats = hot.tier_stats();

    let (sealed, seal_secs) = sealed_store(&fixes, default_tol);
    let sealed_stats = sealed.tier_stats();
    let (lossless, _) = sealed_store(&fixes, 0.0);
    let lossless_stats = lossless.tier_stats();

    // Bytes per *ingested* fix: the sealed store holds the same history
    // (within tolerance), so divide by the full workload.
    let hot_bpf = hot_stats.hot_bytes as f64 / WORKLOAD as f64;
    let sealed_bpf = sealed_stats.cold_bytes as f64 / WORKLOAD as f64;
    let lossless_bpf = lossless_stats.cold_bytes as f64 / WORKLOAD as f64;

    let queries = window_queries(t_hi);
    let time_windows = |store: &ShardedTrajectoryStore| {
        let (count, secs) = timed(|| {
            let mut n = 0usize;
            for _ in 0..5 {
                for (area, from, to) in &queries {
                    n += store.window(area, *from, *to).len();
                }
            }
            n
        });
        (count, secs / (5.0 * queries.len() as f64) * 1e6)
    };
    let (hot_hits, hot_win_us) = time_windows(&hot);
    let (cold_hits, cold_win_us) = time_windows(&sealed);

    let knn_probe = |store: &ShardedTrajectoryStore| {
        let ((), secs) = timed(|| {
            for i in 0..50 {
                let q = Position::new(42.2 + 0.03 * f64::from(i), 3.2 + 0.05 * f64::from(i));
                std::hint::black_box(store.knn(q, t_hi, 10));
            }
        });
        secs / 50.0 * 1e6
    };
    let hot_knn_us = knn_probe(&hot);
    let cold_knn_us = knn_probe(&sealed);

    let mut out = String::new();
    out.push_str(&table(
        &format!("C11 — tiered storage, {WORKLOAD} fixes / 200 vessels"),
        &["metric", "hot", "sealed", "ratio"],
        &[
            vec![
                "bytes/ingested fix".into(),
                f(hot_bpf, 1),
                f(sealed_bpf, 1),
                format!("{}x smaller", f(hot_bpf / sealed_bpf, 1)),
            ],
            vec![
                "bytes/fix (lossless seal)".into(),
                f(hot_bpf, 1),
                f(lossless_bpf, 1),
                format!("{}x smaller", f(hot_bpf / lossless_bpf, 1)),
            ],
            vec![
                "window query".into(),
                format!("{} us", f(hot_win_us, 0)),
                format!("{} us", f(cold_win_us, 0)),
                format!("{}x", f(cold_win_us / hot_win_us, 2)),
            ],
            vec![
                "knn query (fallback scan)".into(),
                format!("{} us", f(hot_knn_us, 0)),
                format!("{} us", f(cold_knn_us, 0)),
                format!("{}x", f(cold_knn_us / hot_knn_us, 2)),
            ],
            vec![
                "seal throughput".into(),
                "-".into(),
                format!("{}/s", f(WORKLOAD as f64 / seal_secs, 0)),
                "-".into(),
            ],
        ],
    ));
    out.push_str(&format!(
        "\n(sealed = {} segments at tolerance {default_tol} m, {} of {} fixes kept;\n\
         window hits hot {hot_hits} vs sealed {cold_hits} — sealed stores the synopsis)\n",
        sealed_stats.cold_segments, sealed_stats.cold_fixes, WORKLOAD,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_bytes_per_fix_beats_hot_by_5x() {
        let fixes = smooth_fleet(20_000, 50, 7);
        let (sealed, _) = sealed_store(&fixes, RetentionPolicy::default().cold_tolerance_m);
        let stats = sealed.tier_stats();
        assert_eq!(stats.hot_fixes, 0, "everything must be sealed");
        let hot_bpf = std::mem::size_of::<Fix>() as f64;
        let sealed_bpf = stats.cold_bytes as f64 / fixes.len() as f64;
        assert!(
            hot_bpf / sealed_bpf >= 5.0,
            "sealed {sealed_bpf:.1} bytes/fix vs hot {hot_bpf:.1}: ratio below 5x"
        );
    }

    #[test]
    fn sealed_window_answers_match_within_synopsis() {
        // Hot and sealed stores answer the same queries; sealed returns
        // the synopsis subset, so every sealed hit has a hot counterpart
        // at the same (vessel, time) up to compression.
        let fixes = smooth_fleet(10_000, 20, 9);
        let hot = archive_store(0.0);
        hot.append_batch(fixes.clone());
        let (sealed, _) = sealed_store(&fixes, 0.0);
        let t_hi = fixes.iter().map(|fx| fx.t).max().unwrap();
        for (area, from, to) in window_queries(t_hi) {
            assert_eq!(sealed.window(&area, from, to), hot.window(&area, from, to));
        }
    }
}
