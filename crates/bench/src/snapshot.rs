//! Machine-readable bench snapshot: headline medians of the hot-path
//! experiments (C10 ingest, C12 events, C13 queries, C15 serving
//! fan-out, C17 adaptive) written to `BENCH_PR10.json` for regression
//! tracking across PRs.
//!
//! The experiment tables are for humans; this step re-runs each
//! experiment's public driver on its CI-sized workload (median-of-3
//! wall time here, the C17 grid's own interleaved fastest-of-rounds
//! timing inside `grid_results`) and dumps one flat JSON object — no
//! parsing of pretty-printed tables, no extra dependencies.

use crate::util::timed;
use mda_geo::time::{HOUR, MINUTE};

fn median(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// Run the snapshot, write `BENCH_PR10.json` into the working
/// directory, and return the JSON text.
pub fn run() -> String {
    // C10 — sharded batch ingest, 4 workers over 8 stripes.
    let fixes = crate::c10_ingest::fleet_fixes(50_000, 500, 42);
    let c10_secs = median(
        (0..3)
            .map(|_| {
                timed(|| {
                    std::hint::black_box(crate::c10_ingest::ingest_sharded(fixes.clone(), 4, 8));
                })
                .1
            })
            .collect(),
    );
    let c10_per_s = fixes.len() as f64 / c10_secs;

    // C12 — 8-shard event engine over a churn fleet.
    let churn = crate::c12_events::churn_fixes(800, 3, 12);
    let c12_secs = median(
        (0..3)
            .map(|_| {
                timed(|| {
                    std::hint::black_box(crate::c12_events::drive_sharded(&churn, 8, 30 * MINUTE))
                })
                .1
            })
            .collect(),
    );
    let c12_per_s = churn.len() as f64 / c12_secs;

    // C13 — mixed-query serving, 2 readers beside 1 writer.
    let sim = crate::c13_query::scenario(31, 60, HOUR);
    let c13 = median(
        (0..3)
            .map(|_| {
                let ((_, tallies), secs) = timed(|| crate::c13_query::drive(&sim, 2));
                let queries: u64 = tallies.iter().map(crate::c13_query::ReaderTally::total).sum();
                queries as f64 / secs
            })
            .collect(),
    );

    // C15 — filtered subscription fan-out, CI-sized: 2k subscribers
    // (2% stalled) over 120 minutes of fleet time on one pump — long
    // enough that the stalled cohort crosses the evict bound, so the
    // dropped-cursor accounting lands in the regression record.
    let c15_runs: Vec<(crate::c15_serve::ServeOutcome, f64)> =
        (0..3).map(|_| timed(|| crate::c15_serve::drive(2_000, 40, 120))).collect();
    let c15_push_per_s =
        median(c15_runs.iter().map(|(o, secs)| o.delivered as f64 / secs).collect());
    let c15_p99_ms = median(c15_runs.iter().map(|(o, _)| o.p99_push_ms).collect());
    let c15_dropped = c15_runs[0].0.dropped;

    // C17 — the full adaptive-vs-static grid (median-of-3 inside).
    let grid = crate::c17_adaptive::grid_results();
    let (_, adaptive_goodput, adaptive) = grid.last().expect("grid non-empty");
    let statics = &grid[..grid.len() - 1];
    let best_static_goodput = statics.iter().map(|(_, g, _)| *g).fold(f64::MIN, f64::max);
    let best_static_p99 = statics.iter().map(|(_, _, o)| o.p99_ms).min().expect("grid non-empty");

    let json = format!(
        "{{\n  \"c10_sharded_ingest_fixes_per_s\": {:.0},\n  \
           \"c12_event_engine_fixes_per_s\": {:.0},\n  \
           \"c13_mixed_queries_per_s\": {:.0},\n  \
           \"c15_serve_pushes_per_s\": {:.0},\n  \
           \"c15_serve_p99_push_ms\": {:.2},\n  \
           \"c15_serve_evicted_dropped\": {},\n  \
           \"c17_adaptive_goodput_per_s\": {:.0},\n  \
           \"c17_adaptive_p99_staleness_min\": {:.1},\n  \
           \"c17_adaptive_dropped\": {},\n  \
           \"c17_best_static_goodput_per_s\": {:.0},\n  \
           \"c17_best_static_p99_staleness_min\": {:.1}\n}}\n",
        c10_per_s,
        c12_per_s,
        c13,
        c15_push_per_s,
        c15_p99_ms,
        c15_dropped,
        adaptive_goodput,
        adaptive.p99_ms as f64 / MINUTE as f64,
        adaptive.dropped,
        best_static_goodput,
        best_static_p99 as f64 / MINUTE as f64,
    );
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    json
}
