//! C15 — serving fan-out: filtered subscription push at 10k+ sessions.
//!
//! The serving front (`mda-serve`) deliberately makes *sessions* the
//! unit of scale, not threads: a subscription is a cursor, a filter and
//! a bounded queue, pumped centrally against the shared event ring.
//! This experiment measures what that buys on one CPU: how many
//! concurrent filtered subscribers one pump can sustain, what push
//! latency they see, and what happens to the ones that stop reading.
//!
//! The workload is a duty-cycled fleet: [`VESSELS`] vessels report for
//! 17 minutes and go dark for 17, staggered per vessel, so the gap
//! detector emits a steady trickle of `gap-start`/`gap-end` events
//! while two always-on vessels advance the watermark. Subscribers are
//! filter-diverse — most watch a single vessel, a cohort watches event
//! kinds fleet-wide — plus a stalled cohort that subscribes to
//! everything and never drains, which must be evicted at the drop
//! bound without disturbing anyone else.
//!
//! **Push latency** is measured by sequence-timeline sampling: each
//! ingest round records `(total events appended so far, Instant)`; when
//! a drain hands a subscriber event seq `s`, its latency is the time
//! since the first timeline point covering `s`. Wall-clock sampling
//! lives here in bench code only — the serving crate itself stays
//! clock-free (lint rule L4).

use crate::util::{f, table, timed};
use mda_core::{MaritimePipeline, PipelineConfig};
use mda_events::ring::{EventCursor, EventFilter};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use mda_serve::server::{ServeConfig, ServeCore};
use mda_serve::session::SessionConfig;
use mda_serve::wire::{Request, Response};
use std::time::Instant;

/// Duty-cycled vessels generating the event stream.
pub const VESSELS: u32 = 120;
/// Minutes of one on/off duty cycle (half on, half off; the off half
/// exceeds the 15-minute gap threshold, so every cycle emits events).
const CYCLE: i64 = 34;
/// Per-session queue bound (events, before drop-oldest). Sized above
/// the terminal flush burst — `finish()` sweeps every still-dark
/// vessel at once — so a reading fleet-wide subscriber never drops.
const QUEUE: usize = 512;
/// Cumulative drops after which a stalled subscriber is evicted.
const EVICT_AFTER: u64 = 64;

const BOUNDS: BoundingBox =
    BoundingBox { min_lat: 42.0, min_lon: 3.0, max_lat: 44.0, max_lon: 6.5 };

fn fleet_fix(v: u32, minute: i64) -> Fix {
    Fix::new(
        v,
        Timestamp::from_mins(minute),
        Position::new(42.2 + 0.025 * f64::from(v % 64), 3.4 + 0.004 * minute as f64),
        9.0 + f64::from(v % 5),
        90.0,
    )
}

/// The filter for healthy subscriber `i`: most watch one vessel of the
/// duty-cycled fleet, every 25th watches gap events fleet-wide.
pub fn subscriber_filter(i: usize) -> EventFilter {
    if i % 25 == 0 {
        EventFilter::for_kinds(["gap-start", "gap-end"])
    } else {
        EventFilter::for_vessels([1 + (i as u32) % VESSELS])
    }
}

/// What one serving run produced.
#[derive(Debug, Clone, Copy)]
pub struct ServeOutcome {
    /// Healthy subscribers, all still live at the end.
    pub healthy: usize,
    /// Stalled subscribers, all evicted by the end.
    pub stalled: usize,
    /// Events the pipeline appended to the ring.
    pub events: u64,
    /// Events pushed to (and drained by) healthy subscribers.
    pub delivered: u64,
    /// Events the ring-side filters suppressed across all subscribers.
    pub filtered: u64,
    /// Sessions evicted (must equal `stalled`).
    pub evicted: u64,
    /// Total events dropped on evicted subscribers' floors — the exact
    /// dropped-cursor accounting the eviction notices report.
    pub dropped: u64,
    /// Median push latency, ms (append round → drained).
    pub p50_push_ms: f64,
    /// 99th-percentile push latency, ms.
    pub p99_push_ms: f64,
}

/// Drive `healthy + stalled` filtered subscribers for `minutes` of
/// fleet time on one pump.
///
/// Per minute: ingest the duty-cycled fleet, record a timeline point,
/// pump all sessions, drain every healthy session and sample push
/// latencies. Stalled sessions are never drained; their eviction
/// notices are collected at the end. Panics if any healthy subscriber
/// dropped an event or a sampled subscriber's stream diverges from the
/// ring oracle — the fan-out must be lossless for everyone who reads.
pub fn drive(healthy: usize, stalled: usize, minutes: i64) -> ServeOutcome {
    let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(BOUNDS));
    let service = pipeline.query_service();
    let config = ServeConfig {
        session: SessionConfig {
            queue_capacity: QUEUE,
            evict_after_dropped: EVICT_AFTER,
            max_sessions: (healthy + stalled).max(1024),
        },
        ..ServeConfig::default()
    };
    let core = ServeCore::new(service.clone(), config);

    let subscribe = |core: &ServeCore, filter: EventFilter| -> u64 {
        match core.handle(&Request::Subscribe { filter, resume_at: Some(0) }) {
            Response::Subscribed { session, .. } => session,
            other => panic!("subscribe refused: {other:?}"),
        }
    };
    let healthy_ids: Vec<u64> =
        (0..healthy).map(|i| subscribe(&core, subscriber_filter(i))).collect();
    let stalled_ids: Vec<u64> =
        (0..stalled).map(|_| subscribe(&core, EventFilter::all())).collect();

    // (events appended after round, when) — the push-latency baseline.
    let mut timeline: Vec<(u64, Instant)> = Vec::new();
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut per_session: Vec<u64> = vec![0; healthy];
    // The batch counters are cumulative per session: keep the latest.
    let mut per_filtered: Vec<u64> = vec![0; healthy];
    let mut delivered = 0u64;

    // Independent oracle cursors for a sample of subscribers, advanced
    // every round so ring ageing can't skew the comparison: by the end
    // each must have counted exactly what its subscriber received.
    let mut oracles: Vec<(usize, EventCursor, u64)> = (0..healthy)
        .step_by(251.max(healthy / 16))
        .map(|i| (i, EventCursor::default(), 0u64))
        .collect();

    let drain_all = |core: &ServeCore,
                     timeline: &Vec<(u64, Instant)>,
                     latencies_ms: &mut Vec<f64>,
                     per_session: &mut Vec<u64>,
                     per_filtered: &mut Vec<u64>,
                     delivered: &mut u64| {
        for (i, &id) in healthy_ids.iter().enumerate() {
            loop {
                let batch = match core.drain_session(id) {
                    Some(Ok(batch)) => batch,
                    Some(Err(lost)) => panic!("healthy subscriber {i} evicted ({lost} dropped)"),
                    None => break,
                };
                let now = Instant::now();
                for &(seq, _) in &batch.events {
                    let round = timeline.partition_point(|&(n, _)| n <= seq);
                    let (_, at) = timeline[round.min(timeline.len() - 1)];
                    latencies_ms.push(now.duration_since(at).as_secs_f64() * 1e3);
                }
                per_session[i] += batch.events.len() as u64;
                per_filtered[i] = batch.filtered;
                *delivered += batch.events.len() as u64;
                assert_eq!(batch.dropped, 0, "healthy subscribers must never drop");
                if batch.events.is_empty() {
                    break;
                }
            }
        }
    };

    for minute in 0..minutes {
        // Two always-on vessels keep the watermark moving; the rest
        // follow a staggered half-on/half-off duty cycle.
        pipeline.push_fix(fleet_fix(900, minute));
        pipeline.push_fix(fleet_fix(901, minute));
        for v in 1..=VESSELS {
            if (minute + i64::from(v)) % CYCLE < CYCLE / 2 {
                pipeline.push_fix(fleet_fix(v, minute));
            }
        }
        timeline.push((service.with_event_ring(|ring| ring.total_appended()), Instant::now()));
        core.pump();
        drain_all(
            &core,
            &timeline,
            &mut latencies_ms,
            &mut per_session,
            &mut per_filtered,
            &mut delivered,
        );
        for (i, cursor, count) in &mut oracles {
            let poll = service.poll_filtered(*cursor, &subscriber_filter(*i));
            *count += poll.events.len() as u64;
            *cursor = EventCursor::at_seq(poll.cursor.next_seq());
        }
    }
    pipeline.finish();
    timeline.push((service.with_event_ring(|ring| ring.total_appended()), Instant::now()));
    core.pump();
    drain_all(
        &core,
        &timeline,
        &mut latencies_ms,
        &mut per_session,
        &mut per_filtered,
        &mut delivered,
    );
    let filtered: u64 = per_filtered.iter().sum();
    // Spot-check delivered streams against the ring oracle: a sampled
    // subscriber got exactly what its filter admits, nothing less.
    for (i, cursor, count) in &mut oracles {
        let poll = service.poll_filtered(*cursor, &subscriber_filter(*i));
        *count += poll.events.len() as u64;
        assert_eq!(per_session[*i], *count, "subscriber {i} diverged from the ring oracle");
    }

    // Collect the stalled cohort's eviction notices: exact drop counts.
    let mut evicted = 0u64;
    let mut dropped = 0u64;
    for &id in &stalled_ids {
        if let Some(Err(lost)) = core.drain_session(id) {
            evicted += 1;
            dropped += lost;
        }
    }
    assert!(
        healthy_ids.iter().all(|&id| core.session_live(id)),
        "every healthy subscriber survives"
    );
    let stats = core.session_stats();
    assert_eq!(stats.live + evicted as usize, healthy + stalled, "sessions accounted for");

    latencies_ms.sort_by(f64::total_cmp);
    let pct = |q: f64| {
        if latencies_ms.is_empty() {
            0.0
        } else {
            latencies_ms[((latencies_ms.len() - 1) as f64 * q) as usize]
        }
    };
    ServeOutcome {
        healthy,
        stalled,
        events: service.with_event_ring(|ring| ring.total_appended()),
        delivered,
        filtered,
        evicted,
        dropped,
        p50_push_ms: pct(0.50),
        p99_push_ms: pct(0.99),
    }
}

/// `(outcome, wall seconds)` per subscriber scale — the rows [`run`]
/// tabulates and the snapshot step exports. The last row is the
/// headline ≥10k-subscriber cell.
pub fn scale_results() -> Vec<(ServeOutcome, f64)> {
    [1_000usize, 4_000, 10_000]
        .into_iter()
        .map(|healthy| {
            let stalled = healthy / 50;
            timed(|| drive(healthy, stalled, 120))
        })
        .collect()
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let results = scale_results();

    let mut rows = Vec::new();
    for (o, secs) in &results {
        rows.push(vec![
            format!("{} + {}", o.healthy, o.stalled),
            o.events.to_string(),
            o.delivered.to_string(),
            format!("{}/s", f(o.delivered as f64 / secs, 0)),
            f(o.p50_push_ms, 2),
            f(o.p99_push_ms, 2),
            format!("{} ({} ev)", o.evicted, o.dropped),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        "C15 — filtered subscription fan-out, one pump, 120 min fleet time",
        &[
            "subscribers (+stalled)",
            "events",
            "delivered",
            "push rate",
            "p50 push (ms)",
            "p99 push (ms)",
            "evicted (dropped)",
        ],
        &rows,
    ));

    // The headline claims: the ≥10k row sustains every healthy
    // subscriber losslessly, and every stalled one is evicted at the
    // drop bound with its losses counted.
    let (top, _) = results.last().expect("scale sweep non-empty");
    assert!(top.healthy + top.stalled >= 10_000, "headline row must carry 10k+ subscribers");
    assert!(top.delivered > 0 && top.events > 0, "the fleet must generate and deliver events");
    assert_eq!(top.evicted as usize, top.stalled, "every stalled subscriber evicted");
    assert!(top.dropped >= top.evicted * EVICT_AFTER, "evictions carry exact drop counts");
    assert!(top.filtered > 0, "ring-side filters must be doing real suppression");

    out.push_str(
        "\n(one central pump over plain-data sessions: subscribers are a\n\
         cursor + filter + bounded queue, not a thread. Most watch a single\n\
         duty-cycled vessel, every 25th watches gap events fleet-wide, and a\n\
         2% cohort subscribes to everything and never reads — it is evicted\n\
         at the drop bound with exact loss accounting while every reading\n\
         subscriber receives its filtered stream losslessly. Push latency is\n\
         append-round → drain, by sequence-timeline sampling.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fanout_is_lossless_and_evicts_the_stalled() {
        let outcome = drive(200, 8, 120);
        assert!(outcome.events >= EVICT_AFTER + QUEUE as u64, "duty cycle generates events");
        assert!(outcome.delivered > 0);
        assert_eq!(outcome.evicted, 8, "all stalled subscribers evicted");
        assert!(outcome.dropped >= outcome.evicted * EVICT_AFTER);
        assert!(outcome.filtered > 0, "vessel filters suppress foreign events");
        assert!(outcome.p99_push_ms >= outcome.p50_push_ms);
    }

    #[test]
    fn filters_partition_the_stream() {
        // Every event of the oracle stream goes to exactly the vessel
        // subscribers whose filter admits it, so summing one subscriber
        // per vessel recovers the non-watermark event stream.
        let outcome = drive(usize::try_from(VESSELS).expect("small") + 1, 0, 120);
        assert_eq!(outcome.evicted, 0);
        assert_eq!(outcome.dropped, 0);
    }
}
