//! C2 — veracity: detecting the paper's ~5% static errors and the
//! spoofing/identity-fraud behaviours (§1, refs 36, 43, 44).
//!
//! Ground truth comes from the simulator's corruption labels, so
//! precision and recall are exact.

use crate::fig2_pipeline::pipeline_for;
use crate::util::{pct, table};
use mda_ais::messages::AisMessage;
use mda_ais::quality::validate;
use mda_events::event::EventKind;
use mda_sim::corruption::CorruptionLabel;
use mda_sim::scenario::{Scenario, ScenarioConfig};

/// Precision/recall rows for the three corruption channels.
pub fn run() -> String {
    let sim = Scenario::generate(ScenarioConfig::regional(47, 100, 6 * mda_geo::time::HOUR));

    // --- static errors: per-message validation ------------------------
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fnn = 0usize;
    let mut statics = 0usize;
    for obs in &sim.ais {
        if let AisMessage::StaticVoyage(_) = obs.msg {
            statics += 1;
            let flagged = !validate(&obs.msg).is_clean();
            match (obs.label == CorruptionLabel::StaticError, flagged) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fnn += 1,
                (false, false) => {}
            }
        }
    }
    let static_precision = tp as f64 / (tp + fp).max(1) as f64;
    let static_recall = tp as f64 / (tp + fnn).max(1) as f64;
    let injected_rate = (tp + fnn) as f64 / statics.max(1) as f64;

    // --- kinematic spoofing & identity fraud: event engine ------------
    let mut p = pipeline_for(&sim);
    let events = p.run_scenario(&sim);
    let spoof_flagged: std::collections::HashSet<u32> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::KinematicSpoofing { .. }))
        .map(|e| e.vessel)
        .collect();
    let conflict_flagged: std::collections::HashSet<u32> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::IdentityConflict { .. }))
        .map(|e| e.vessel)
        .collect();

    let spoof_truth: std::collections::HashSet<u32> = sim.spoof_episodes.keys().copied().collect();
    // Identity fraud surfaces on the *victim's* MMSI (two transmitters
    // sharing it); the first bounces also look like spoofing, so the
    // spoofing precision counts any genuinely deceptive identity as a
    // true positive.
    let victims: std::collections::HashSet<u32> =
        sim.vessels.iter().filter_map(|v| v.deception.cloned_mmsi).collect();
    let deceptive: std::collections::HashSet<u32> = spoof_truth.union(&victims).copied().collect();
    let spoof_tp = spoof_flagged.intersection(&spoof_truth).count();
    let spoof_recall = spoof_tp as f64 / spoof_truth.len().max(1) as f64;
    let spoof_precision =
        spoof_flagged.intersection(&deceptive).count() as f64 / spoof_flagged.len().max(1) as f64;

    let fraud_tp = conflict_flagged.intersection(&victims).count();
    let fraud_recall = fraud_tp as f64 / victims.len().max(1) as f64;

    let rows = vec![
        vec![
            "static-field errors".into(),
            format!("{:.1}% of {} msgs", injected_rate * 100.0, statics),
            pct(static_precision),
            pct(static_recall),
        ],
        vec![
            "GPS spoofing (vessel-level)".into(),
            format!("{} vessels", spoof_truth.len()),
            pct(spoof_precision),
            pct(spoof_recall),
        ],
        vec![
            "identity cloning (victim MMSI)".into(),
            format!("{} victims", victims.len()),
            "—".into(),
            pct(fraud_recall),
        ],
    ];
    let mut out = String::new();
    out.push_str(&table(
        "C2 — veracity detection vs injected corruption",
        &["corruption channel", "injected", "precision", "recall"],
        &rows,
    ));
    out.push_str(
        "\n(paper: ~5% of AIS static transmissions carry errors; spoofing and\n\
         identity fraud are documented attack modes — detectors must catch\n\
         most of them with few false alarms)\n",
    );
    out
}
