//! C1 — trajectory synopses: the 95% compression claim (§2.1).
//!
//! Sweeps the dead-reckoning tolerance over realistic traffic and
//! reports compression ratio against synchronized reconstruction error,
//! with Douglas–Peucker as the offline baseline. The paper's claim is
//! that ~95% compression is achievable without compromising accuracy;
//! "holds" means some tolerance reaches ≥95% with error well below the
//! AIS position accuracy scale.

use crate::util::{f, pct, table};
use mda_sim::scenario::{Scenario, ScenarioConfig};
use mda_synopses::compress::{compress_trajectory, ThresholdConfig};
use mda_synopses::douglas::douglas_peucker;
use mda_synopses::error::{compression_ratio, reconstruction_error};

/// The archival traffic used by the sweep.
pub fn traffic() -> mda_sim::scenario::SimOutput {
    Scenario::generate(ScenarioConfig::regional_honest(31, 60, 12 * mda_geo::time::HOUR))
}

/// One sweep row: `(tolerance, ratio, mean_err, max_err)`.
pub fn sweep_point(sim: &mda_sim::scenario::SimOutput, tolerance_m: f64) -> (f64, f64, f64, f64) {
    let cfg = ThresholdConfig { tolerance_m, ..Default::default() };
    let mut total = 0usize;
    let mut kept_total = 0usize;
    let mut err_sum = 0.0;
    let mut err_max = 0.0f64;
    let mut n = 0usize;
    for fixes in sim.truth.values() {
        let kept = compress_trajectory(fixes, cfg);
        total += fixes.len();
        kept_total += kept.len();
        let e = reconstruction_error(fixes, &kept);
        err_sum += e.mean_m * e.n as f64;
        err_max = err_max.max(e.max_m);
        n += e.n;
    }
    (compression_ratio(total, kept_total), err_sum / n.max(1) as f64, err_max, total as f64)
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let sim = traffic();
    let total: usize = sim.truth.values().map(Vec::len).sum();

    let mut rows = Vec::new();
    for tol in [10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0] {
        let (ratio, mean, max, _) = sweep_point(&sim, tol);
        rows.push(vec![
            format!("{tol:.0} m"),
            pct(ratio),
            format!("{} m", f(mean, 1)),
            format!("{} m", f(max, 1)),
            if ratio >= 0.95 { "≥95% ✓".into() } else { String::new() },
        ]);
    }

    // Douglas–Peucker offline baseline at 100 m.
    let mut dp_kept = 0usize;
    for fixes in sim.truth.values() {
        dp_kept += douglas_peucker(fixes, 100.0).len();
    }
    let dp_ratio = compression_ratio(total, dp_kept);

    let mut out = String::new();
    out.push_str(&format!(
        "C1 — synopsis compression sweep over {} fixes from {} vessels\n\n",
        total,
        sim.truth.len()
    ));
    out.push_str(&table(
        "threshold (online dead-reckoning) compression",
        &["tolerance", "compression", "mean SED", "max SED", "claim"],
        &rows,
    ));
    out.push_str(&format!(
        "\nDouglas–Peucker offline baseline at 100 m: {} compression\n\
         (paper claim: state of the art reaches ~95% over AIS traces)\n",
        pct(dp_ratio)
    ));
    out
}
