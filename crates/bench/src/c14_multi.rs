//! C14 — multi-writer shard-owned ingest throughput.
//!
//! The multi-writer pipeline decomposes ingest into N writer lanes,
//! each owning a disjoint shard set end-to-end, synchronised only at
//! tick boundaries by a two-phase barrier. Its contract — proven in
//! `tests/scenario_determinism.rs`, `tests/query_consistency.rs` and
//! `tests/multi_writer.rs` — is that *everything observable is
//! writer-count invariant*; this experiment measures what the lanes
//! buy: ingest throughput at 1/2/4/8 writers over the same churn
//! workload the C12 event-engine experiment uses.
//!
//! On the 1-CPU bench container all lanes share one core, so the
//! interesting number is the per-writer overhead (barrier + routing
//! cost paid without parallel speedup); on real hardware lanes scale
//! with cores exactly like the detector shards they own.

use crate::c12_events::churn_fixes;
use crate::util::{f, table, timed};
use mda_core::{MultiWriterPipeline, PipelineConfig};
use mda_geo::BoundingBox;

/// Vessels in the standard multi-writer workload.
pub const FLEET: u32 = 2_000;
/// Scenario length, hours.
pub const HOURS: i64 = 4;

/// Drive a churn workload through a `writers`-lane pipeline in arrival
/// order (write-only: no reader handle, so snapshot publication is
/// elided exactly as in the single-writer pipeline). Returns
/// `(events, archived fixes, dropped late)`.
pub fn drive_multi(fixes: &[mda_geo::Fix], writers: usize) -> (u64, usize, u64) {
    let config = PipelineConfig::regional(BoundingBox::new(42.0, 3.0, 44.0, 6.0));
    let mut pipeline = MultiWriterPipeline::new(config, writers);
    let mut events = 0u64;
    for fix in fixes {
        events += pipeline.push_fix(*fix).len() as u64;
    }
    events += pipeline.finish().len() as u64;
    (events, pipeline.store().len(), pipeline.report().dropped_late)
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let fixes = churn_fixes(FLEET, HOURS, 14);

    // Correctness cross-check before timing: writer counts agree.
    let reference = drive_multi(&fixes, 1);
    assert_eq!(drive_multi(&fixes, 8), reference, "writer count changed observable output");

    let median = |mut runs: Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let mut rows = Vec::new();
    for writers in [1usize, 2, 4, 8] {
        let runs: Vec<((u64, usize, u64), f64)> =
            (0..3).map(|_| timed(|| drive_multi(&fixes, writers))).collect();
        let secs = median(runs.iter().map(|(_, s)| *s).collect());
        let (events, archived, _) = runs[0].0;
        rows.push(vec![
            writers.to_string(),
            format!("{}/s", f(fixes.len() as f64 / secs, 0)),
            events.to_string(),
            archived.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        &format!("C14 — multi-writer ingest, {FLEET}-vessel churn fleet, {HOURS} h"),
        &["writer lanes", "throughput", "events", "archived fixes"],
        &rows,
    ));
    out.push_str(
        "\n(N writer lanes each own a disjoint shard set end-to-end and meet\n\
         only at tick boundaries; events and archive are asserted writer-count\n\
         invariant before timing. Single-CPU container: lanes share one core,\n\
         so the deltas here are pure barrier/routing overhead — lane\n\
         throughput scales with cores, not on a 1-CPU container.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_counts_agree_on_churn() {
        let fixes = churn_fixes(120, 2, 5);
        let reference = drive_multi(&fixes, 1);
        assert!(reference.0 > 0, "churn must emit events");
        assert!(reference.1 > 0, "churn must archive fixes");
        assert_eq!(reference.2, 0, "in-order arrival drops nothing");
        for writers in [2usize, 4, 8] {
            assert_eq!(drive_multi(&fixes, writers), reference, "{writers} writers diverged");
        }
    }
}
