//! Regenerate every figure/claim experiment and print the tables.
//!
//! ```sh
//! cargo run -p mda-bench --release --bin experiments            # all
//! cargo run -p mda-bench --release --bin experiments -- c1 c6   # subset
//! ```

use std::time::Instant;

/// A named experiment: CLI selector and table generator.
type Experiment = (&'static str, fn() -> String);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all: Vec<Experiment> = vec![
        ("fig1", mda_bench::fig1_coverage::run),
        ("fig2", mda_bench::fig2_pipeline::run),
        ("c1", mda_bench::c1_synopses::run),
        ("c2", mda_bench::c2_veracity::run),
        ("c3", mda_bench::c3_godark::run),
        ("c4", mda_bench::c4_events::run),
        ("c5", mda_bench::c5_fusion::run),
        ("c6", mda_bench::c6_forecast::run),
        ("c7", mda_bench::c7_knn::run),
        ("c8", mda_bench::c8_semantics::run),
        ("c9", mda_bench::c9_viz::run),
        ("c10", mda_bench::c10_ingest::run),
        ("c11", mda_bench::c11_tiered::run),
        ("c12", mda_bench::c12_events::run),
        ("c13", mda_bench::c13_query::run),
        ("c14", mda_bench::c14_multi::run),
        ("c15", mda_bench::c15_serve::run),
        ("c16", mda_bench::c16_durability::run),
        ("c17", mda_bench::c17_adaptive::run),
        ("snapshot", mda_bench::snapshot::run),
    ];
    let selected: Vec<&Experiment> = if args.is_empty() {
        all.iter().collect()
    } else {
        all.iter().filter(|(name, _)| args.iter().any(|a| a == name)).collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment; available: fig1 fig2 c1..c17 snapshot");
        std::process::exit(2);
    }
    let start = Instant::now();
    for (name, run) in selected {
        let t0 = Instant::now();
        let text = run();
        println!("\n{}", "#".repeat(72));
        println!("######## experiment {name} ({:.1}s)", t0.elapsed().as_secs_f64());
        println!("{}\n{text}", "#".repeat(72));
    }
    eprintln!("\nall selected experiments done in {:.1}s", start.elapsed().as_secs_f64());
}
