//! Figure 1 — worldwide satellite AIS coverage.
//!
//! The paper's Figure 1 shows global AIS positions acquired by
//! satellites (ORBCOMM) and quotes ~18M positions/day worldwide. We
//! regenerate the *shape*: a global trade-lane fleet observed by a
//! satellite-only receiver, rendered as a world density map, plus the
//! ingest-rate scaling that supports the 18M/day figure.

use crate::util::{f, pct, table, timed};
use mda_sim::scenario::{Scenario, ScenarioConfig};
use mda_viz::raster::DensityRaster;
use mda_viz::render::render_ascii;

/// Generate the global scenario used by the figure.
pub fn scenario(n_vessels: usize, hours: i64) -> mda_sim::scenario::SimOutput {
    Scenario::generate(ScenarioConfig::global(1717, n_vessels, hours * mda_geo::time::HOUR))
}

/// Build the coverage raster from received satellite messages.
pub fn coverage_raster(
    sim: &mda_sim::scenario::SimOutput,
    rows: usize,
    cols: usize,
) -> DensityRaster {
    let mut raster = DensityRaster::new(sim.world.bounds, rows, cols);
    for fix in sim.ais_fixes() {
        raster.add(fix.pos);
    }
    raster
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let (sim, gen_s) = timed(|| scenario(240, 24));
    let received = sim.ais.len();
    let transmitted_estimate = sim.truth_len(); // one tx opportunity per step
    let raster = coverage_raster(&sim, 28, 72);

    let mut out = String::new();
    out.push_str("Figure 1 — worldwide satellite AIS acquisition (simulated)\n\n");
    out.push_str(&render_ascii(&raster));
    out.push('\n');

    // Ingest-rate scaling: decode throughput of the AIVDM path.
    let sample: Vec<_> = sim.ais.iter().take(20_000).collect();
    let (decoded, dec_s) = timed(|| {
        let mut n = 0usize;
        for obs in &sample {
            let (bits, fill) = mda_ais::codec::encode_payload(&obs.msg);
            for s in mda_ais::nmea::to_sentences(&bits, fill, 'A', 1) {
                let sentence = mda_ais::nmea::parse_sentence(&s).expect("valid");
                let mut asm = mda_ais::nmea::SentenceAssembler::new();
                if let Some(payload) = asm.push(sentence).expect("ok") {
                    let _ = mda_ais::codec::decode_payload(&payload);
                    n += 1;
                }
            }
        }
        n
    });
    let per_sec = decoded as f64 / dec_s;
    let day_capacity = per_sec * 86_400.0;

    let rows = vec![
        vec!["vessels simulated".into(), sim.vessels.len().to_string()],
        vec!["scenario span".into(), "24 h".into()],
        vec!["positions transmitted (est.)".into(), transmitted_estimate.to_string()],
        vec!["messages received via satellite".into(), received.to_string()],
        vec![
            "satellite acquisition rate".into(),
            pct(received as f64 / transmitted_estimate.max(1) as f64),
        ],
        vec!["ocean cells with coverage".into(), pct(raster.coverage())],
        vec!["scenario generation time".into(), format!("{} s", f(gen_s, 2))],
        vec!["AIVDM encode+decode throughput".into(), format!("{} msg/s", f(per_sec, 0))],
        vec![
            "single-core daily ingest capacity".into(),
            format!(
                "{:.1}G msg/day ({:.0}x the paper's 18M/day worldwide volume)",
                day_capacity / 1e9,
                day_capacity / 18e6
            ),
        ],
    ];
    out.push_str(&table("Figure 1 metrics", &["metric", "value"], &rows));
    out
}
