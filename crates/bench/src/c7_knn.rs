//! C7 — kNN queries over moving objects (§2.3, ref 45).
//!
//! Snapshot k-nearest-neighbour queries over a live fleet: the grid-
//! pruned ring search against the linear-scan baseline, as fleet size
//! grows. The paper's cited work targets scalable distributed kNN; the
//! single-node shape to reproduce is the index's superlinear advantage.

use crate::util::{f, table, timed};
use mda_geo::time::MINUTE;
use mda_geo::{Fix, Position, Timestamp};
use mda_store::knn::KnnEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An engine loaded with `n` vessels spread over the region.
pub fn engine_with_fleet(n: usize, seed: u64) -> KnnEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = KnnEngine::new(0.05, 30 * MINUTE);
    for i in 0..n as u32 {
        e.update(Fix::new(
            i + 1,
            Timestamp::from_mins(rng.gen_range(0..10)),
            Position::new(rng.gen_range(41.0..45.0), rng.gen_range(2.0..9.0)),
            rng.gen_range(0.0..18.0),
            rng.gen_range(0.0..360.0),
        ));
    }
    e
}

/// Random query points.
pub fn queries(n: usize, seed: u64) -> Vec<Position> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Position::new(rng.gen_range(41.0..45.0), rng.gen_range(2.0..9.0))).collect()
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let t = Timestamp::from_mins(12);
    let k = 10;
    let qs = queries(300, 9);
    let mut rows = Vec::new();
    for n in [500usize, 2_000, 10_000, 50_000] {
        let e = engine_with_fleet(n, 3);
        // Warm + verify agreement on a few queries.
        for q in qs.iter().take(5) {
            let a: Vec<u32> = e.knn(*q, t, k).iter().map(|r| r.id).collect();
            let b: Vec<u32> = e.knn_scan(*q, t, k).iter().map(|r| r.id).collect();
            assert_eq!(a, b, "index must agree with scan");
        }
        let (_, ring_s) = timed(|| {
            for q in &qs {
                std::hint::black_box(e.knn(*q, t, k));
            }
        });
        let (_, scan_s) = timed(|| {
            for q in &qs {
                std::hint::black_box(e.knn_scan(*q, t, k));
            }
        });
        rows.push(vec![
            n.to_string(),
            format!("{}/s", f(qs.len() as f64 / ring_s, 0)),
            format!("{}/s", f(qs.len() as f64 / scan_s, 0)),
            format!("{}x", f(scan_s / ring_s, 1)),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        "C7 — snapshot kNN (k=10) over moving objects",
        &["fleet size", "grid ring-search", "linear scan", "speedup"],
        &rows,
    ));
    out.push_str(
        "\n(both paths dead-reckon candidates to the query time; the index's\n\
         advantage must grow with fleet size — the scan is O(n) per query)\n",
    );
    out
}
