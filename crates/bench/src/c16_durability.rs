//! C16 — durability: what the durable cold tier costs over the
//! in-memory archive, and what crash recovery buys back.
//!
//! Reuses the C11 workload and archive shape so every number is an
//! apples-to-apples comparison against the in-memory tiered store:
//!
//! - **ingest overhead** — fixes/s appended with write-ahead logging
//!   vs straight into the hot tier.
//! - **seal-to-disk throughput** — fixes/s moved hot→cold when the
//!   sweep also persists segment frames, rotates the WAL and commits
//!   the manifest, vs C11's purely in-memory sweep.
//! - **recovery time** — opening the crashed directory cold: manifest
//!   read, segment adoption, WAL replay to the pre-crash watermark.
//! - **cold query latency from disk** — the C11 window/knn mix against
//!   the recovered store vs the never-crashed in-memory sealed store
//!   (the acceptance bar: within 2x).
//! - **bytes per fix on disk** — segment files + WAL + manifest vs the
//!   in-memory cold tier's resident bytes.

use crate::c11_tiered::{bounds, smooth_fleet, window_queries, WORKLOAD};
use crate::util::{f, table, timed};
use mda_core::config::RetentionPolicy;
use mda_geo::time::{HOUR, MINUTE};
use mda_geo::{Fix, Position};
use mda_store::segment::SegmentConfig;
use mda_store::shards::{ShardedTrajectoryStore, StIndexConfig, StoreConfig};
use mda_store::{DurabilityConfig, DurableStore};
use std::path::PathBuf;

/// The C11 archive configuration (grid-indexed, 8 shards), shared by
/// the in-memory baseline and the durable store so the comparison is
/// config-identical.
pub fn archive_config(tolerance_m: f64) -> StoreConfig {
    StoreConfig {
        shards: 8,
        st_index: Some(StIndexConfig { bounds: bounds(), cell_deg: 0.1, slice: 30 * MINUTE }),
        knn: None,
        seal: SegmentConfig { tolerance_m, max_silence: 30 * MINUTE, max_span: 30 * MINUTE },
    }
}

/// A fresh scratch data directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mda-c16-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Append the workload in per-reporting-round batches (200 vessels at
/// 10 s cadence → 200-fix batches), as the pipeline's tick loop would.
fn ingest_batched(fixes: &[Fix], mut push: impl FnMut(Vec<Fix>)) {
    for chunk in fixes.chunks(200) {
        push(chunk.to_vec());
    }
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let tol = RetentionPolicy::default().cold_tolerance_m;
    let fixes = smooth_fleet(WORKLOAD, 200, 42);
    let t_hi = fixes.iter().map(|fx| fx.t).max().unwrap();

    // In-memory baseline, C11's shape: batched ingest, one seal sweep.
    let mem = ShardedTrajectoryStore::with_config(archive_config(tol));
    let ((), mem_ingest_secs) = timed(|| {
        ingest_batched(&fixes, |batch| {
            mem.append_batch(batch);
        });
    });
    let ((), mem_seal_secs) = timed(|| {
        mem.seal_before(t_hi + HOUR);
    });
    let mem_stats = mem.tier_stats();

    // Durable: identical workload write-ahead-logged batch by batch,
    // marked at the final watermark, then sealed to disk.
    let dir = scratch_dir("run");
    let durable =
        DurableStore::open(archive_config(tol), &DurabilityConfig::new(&dir)).expect("open");
    let ((), wal_ingest_secs) = timed(|| {
        ingest_batched(&fixes, |batch| {
            durable.append_batch(batch).expect("logged append");
        });
        durable.mark(t_hi).expect("mark");
    });
    let (outcome, dur_seal_secs) = timed(|| durable.seal_before(t_hi + HOUR).expect("seal"));
    let disk_bytes = durable.disk_bytes();
    drop(durable); // the crash: no shutdown path

    // Cold start: recover the directory into a fresh store.
    let (back, recover_secs) =
        timed(|| DurableStore::recover(&dir, archive_config(tol)).expect("recover"));
    let report = back.recovery().clone();

    // The C11 query mix against the in-memory sealed store and the
    // disk-recovered one.
    let queries = window_queries(t_hi);
    let time_windows = |store: &ShardedTrajectoryStore| {
        let (count, secs) = timed(|| {
            let mut n = 0usize;
            for _ in 0..5 {
                for (area, from, to) in &queries {
                    n += store.window(area, *from, *to).len();
                }
            }
            n
        });
        (count, secs / (5.0 * queries.len() as f64) * 1e6)
    };
    let (mem_hits, mem_win_us) = time_windows(&mem);
    let (disk_hits, disk_win_us) = time_windows(back.store());

    let knn_probe = |store: &ShardedTrajectoryStore| {
        let ((), secs) = timed(|| {
            for i in 0..50 {
                let q = Position::new(42.2 + 0.03 * f64::from(i), 3.2 + 0.05 * f64::from(i));
                std::hint::black_box(store.knn(q, t_hi, 10));
            }
        });
        secs / 50.0 * 1e6
    };
    let mem_knn_us = knn_probe(&mem);
    let disk_knn_us = knn_probe(back.store());
    drop(back);
    let _ = std::fs::remove_dir_all(&dir);

    let rate = |secs: f64| f(WORKLOAD as f64 / secs / 1e6, 2);
    let mut out = String::new();
    out.push_str(&table(
        &format!("C16 — durable cold tier, {WORKLOAD} fixes / 200 vessels"),
        &["metric", "in-memory", "durable", "ratio"],
        &[
            vec![
                "ingest (Mfix/s)".into(),
                rate(mem_ingest_secs),
                rate(wal_ingest_secs),
                format!("{}x", f(wal_ingest_secs / mem_ingest_secs, 2)),
            ],
            vec![
                "seal sweep (Mfix/s)".into(),
                rate(mem_seal_secs),
                rate(dur_seal_secs),
                format!("{}x", f(dur_seal_secs / mem_seal_secs, 2)),
            ],
            vec![
                "window query (us)".into(),
                f(mem_win_us, 1),
                f(disk_win_us, 1),
                format!("{}x", f(disk_win_us / mem_win_us, 2)),
            ],
            vec![
                "knn query (us)".into(),
                f(mem_knn_us, 1),
                f(disk_knn_us, 1),
                format!("{}x", f(disk_knn_us / mem_knn_us, 2)),
            ],
            vec![
                "cold bytes/fix".into(),
                f(mem_stats.cold_bytes as f64 / WORKLOAD as f64, 1),
                f(disk_bytes as f64 / WORKLOAD as f64, 1),
                format!("{}x", f(disk_bytes as f64 / mem_stats.cold_bytes as f64, 2)),
            ],
        ],
    ));
    out.push('\n');
    out.push_str(&table(
        "C16 — crash recovery (cold start of the crashed directory)",
        &["metric", "value"],
        &[
            vec!["recovery time (ms)".into(), f(recover_secs * 1e3, 1)],
            vec!["recovery rate (Mfix/s)".into(), rate(recover_secs)],
            vec!["segments adopted".into(), report.segments.to_string()],
            vec!["segments sealed at crash".into(), outcome.segments.to_string()],
            vec!["sealed fixes on disk".into(), report.sealed_fixes.to_string()],
            vec!["hot fixes replayed".into(), report.hot_fixes.to_string()],
            vec!["window hits mem/disk".into(), format!("{mem_hits}/{disk_hits}")],
        ],
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recovered store answers the full C11 query mix exactly like
    /// the never-crashed in-memory sealed store: durability changes
    /// where bytes live, not what queries see.
    #[test]
    fn recovered_answers_match_the_in_memory_sealed_store() {
        let tol = RetentionPolicy::default().cold_tolerance_m;
        let fixes = smooth_fleet(20_000, 50, 7);
        let t_hi = fixes.iter().map(|fx| fx.t).max().unwrap();

        let mem = ShardedTrajectoryStore::with_config(archive_config(tol));
        mem.append_batch(fixes.clone());
        mem.seal_before(t_hi + HOUR);

        let dir = scratch_dir("test");
        let durable =
            DurableStore::open(archive_config(tol), &DurabilityConfig::new(&dir)).unwrap();
        durable.append_batch(fixes).unwrap();
        durable.mark(t_hi).unwrap();
        durable.seal_before(t_hi + HOUR).unwrap();
        assert!(durable.disk_bytes() > 0);
        drop(durable);

        let back = DurableStore::recover(&dir, archive_config(tol)).unwrap();
        assert_eq!(back.watermark(), t_hi);
        assert_eq!(back.recovery().dropped_segments, 0);
        for (area, from, to) in window_queries(t_hi) {
            assert_eq!(back.store().window(&area, from, to), mem.window(&area, from, to));
        }
        for v in 1..=50u32 {
            assert_eq!(back.store().trajectory(v), mem.trajectory(v), "vessel {v}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
