//! C17 — adaptive control vs the static knob grid.
//!
//! A static watermark delay is tuned for one arrival regime: set it
//! tight and satellite dumps drop on the floor; set it wide and every
//! fix waits the full delay before readers may see it. The adaptive
//! controller (`mda_stream::control`) retunes the delay, seal cadence
//! and event-ring capacity off the observed stream, so it should pay
//! the wide delay only while dumps are actually arriving.
//!
//! This experiment drives one regime-switching workload — quiet
//! terrestrial trickle alternating with satellite waves whose lateness
//! ramps to ~41 min, concentrated on a 4-vessel port hotspot — through
//! the 4-writer pipeline with a reader attached, once per cell of the
//! static (delay × seal-cadence) grid and once with adaptive control,
//! and reports for each:
//!
//! - **goodput** — accepted (non-dropped) fixes per second of wall
//!   time, end to end through the full pipeline;
//! - **fix-visibility staleness** — for every fix, how far the arrival
//!   frontier had advanced past its event time by the moment it became
//!   visible to readers (the published snapshot stamp reached it). A
//!   dropped fix never becomes visible and contributes a fixed
//!   140-minute penalty sample (2× the delay clamp ceiling) instead.
//!
//! The run asserts the adaptive row wins both columns against every
//! static cell: tight delays bleed goodput and take the drop penalty,
//! wide delays push p99 staleness to the full delay for the whole run.

use crate::util::{f, table, timed};
use mda_core::{MultiWriterPipeline, PipelineConfig, QueryService};
use mda_geo::time::{MINUTE, SECOND};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scenario length, hours.
pub const HOURS: i64 = 6;
/// Writer lanes driven in every cell.
pub const WRITERS: usize = 4;
/// Staleness charged to a dropped fix: 2× the delay clamp ceiling, so
/// dropping is always worse than waiting out the widest static delay.
pub const DROP_PENALTY: i64 = 140 * MINUTE;

const WINDOW: usize = 16;

/// The regime-switching workload, arrival order.
///
/// Time is structured in minutes over a 120-minute period: 40 quiet
/// minutes of terrestrial trickle (80 fixes/min, ≤ 90 s disorder), then
/// an 80-minute satellite wave. Wave minutes interleave 1 terrestrial
/// fix with 13 satellite fixes per slot group (140 fixes/min, ~93 %
/// satellite), so the controller's lateness EMAs track the dump rather
/// than the trickle. Satellite lateness ramps linearly 5 min → ~41 min
/// at 0.6 min per minute — below the slope a frontier-clocked commit
/// cadence of one retune per minute can cover with the controller's
/// 1.25 delay headroom — holds a 41-minute plateau for 14 minutes,
/// then collapses at ×0.55/min. Satellite traffic concentrates on
/// vessels 1–4 (a port hotspot: per-shard skew plus long,
/// dump-disordered hot tracks).
pub fn wave_fixes(hours: i64, seed: u64) -> Vec<Fix> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fixes = Vec::new();
    let mut sat_turn = 0u32;
    let mut terr_turn = 0u32;
    for m in 0..hours * 60 {
        let phase = m % 120;
        // Satellite lateness this minute, ms (0 = quiet minute).
        let late_ms = if phase < 40 {
            0
        } else if phase < 100 {
            ((5.0 + 0.6 * (phase - 40) as f64) * MINUTE as f64) as i64
        } else if phase < 114 {
            (41.0 * MINUTE as f64) as i64
        } else {
            (41.0 * MINUTE as f64 * 0.55f64.powi((phase - 113) as i32)) as i64
        };
        let slots: i64 = if late_ms == 0 { 80 } else { 140 };
        let step = MINUTE / slots;
        for j in 0..slots {
            let arrival = Timestamp(m * MINUTE + j * step);
            // Quiet minutes are all terrestrial; wave minutes repeat
            // (1 terrestrial, 13 satellite) groups.
            let satellite = late_ms > 0 && j % 14 >= 1;
            let (id, t) = if satellite {
                let id = 1 + sat_turn % 4;
                sat_turn += 1;
                // Per-(vessel, minute) jitter keeps each hotspot track
                // near-monotone within a minute while the ramp still
                // reorders it across minutes.
                let jitter = (i64::from(id) * 7 + m * 13) % 41 - 20;
                (id, arrival.saturating_add(-(late_ms + jitter * SECOND)))
            } else {
                let id = 10 + terr_turn % 120;
                terr_turn += 1;
                (id, arrival.saturating_add(-rng.gen_range(0..90 * SECOND)))
            };
            let hour = t.millis() as f64 / (60.0 * MINUTE as f64);
            let pos =
                Position::new(42.3 + 0.012 * f64::from(id % 100), (3.2 + 0.05 * hour).min(6.4));
            fixes.push(Fix::new(id, t, pos, 8.0, 90.0));
        }
    }
    fixes
}

/// What one cell of the grid produced (everything but wall time, which
/// [`run`] medians separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Fixes accepted (pushed minus dropped late).
    pub accepted: u64,
    /// Fixes dropped behind the watermark.
    pub dropped: u64,
    /// Median fix-visibility staleness, ms.
    pub p50_ms: i64,
    /// 99th-percentile fix-visibility staleness, ms (penalised drops
    /// included).
    pub p99_ms: i64,
    /// Events the pipeline emitted.
    pub events: u64,
}

/// Classify the last arrival window against the pipeline's own drop
/// counter, then credit visibility to everything the published stamp
/// has reached. The `delta` fixes the router reported dropped since the
/// last window are exactly the earliest event times pushed in it (the
/// drop rule is a threshold on `t`), so they take the penalty and never
/// enter the pending set.
fn settle_window(
    pipeline: &MultiWriterPipeline,
    service: &QueryService,
    window: &mut Vec<i64>,
    pending: &mut BinaryHeap<Reverse<i64>>,
    samples: &mut Vec<i64>,
    seen_dropped: &mut u64,
    frontier: i64,
) {
    let dropped = pipeline.report().dropped_late;
    let delta = (dropped - *seen_dropped) as usize;
    *seen_dropped = dropped;
    window.sort_unstable();
    for (i, t) in window.drain(..).enumerate() {
        if i < delta {
            samples.push(DROP_PENALTY);
        } else {
            pending.push(Reverse(t));
        }
    }
    let stamp = service.watermark().millis();
    while pending.peek().is_some_and(|r| r.0 <= stamp) {
        let Reverse(t) = pending.pop().expect("peeked");
        samples.push(frontier - t);
    }
}

/// Drive the workload through a `writers`-lane pipeline with one reader
/// attached (so snapshot publication runs), sampling the published
/// stamp every `WINDOW` (16) arrivals to measure per-fix visibility.
pub fn drive(fixes: &[Fix], config: PipelineConfig, writers: usize) -> Outcome {
    let mut pipeline = MultiWriterPipeline::new(config, writers).with_ingest_batch(64);
    let service = pipeline.query_service();
    let mut pending: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    let mut window: Vec<i64> = Vec::with_capacity(WINDOW);
    let mut samples: Vec<i64> = Vec::with_capacity(fixes.len());
    let mut frontier = i64::MIN;
    let mut seen_dropped = 0u64;
    let mut events = 0u64;
    for fix in fixes {
        frontier = frontier.max(fix.t.millis());
        window.push(fix.t.millis());
        events += pipeline.push_fix(*fix).len() as u64;
        if window.len() == WINDOW {
            settle_window(
                &pipeline,
                &service,
                &mut window,
                &mut pending,
                &mut samples,
                &mut seen_dropped,
                frontier,
            );
        }
    }
    events += pipeline.finish().len() as u64;
    settle_window(
        &pipeline,
        &service,
        &mut window,
        &mut pending,
        &mut samples,
        &mut seen_dropped,
        frontier,
    );
    // Anything still pending became visible at the drain.
    while let Some(Reverse(t)) = pending.pop() {
        samples.push(frontier - t);
    }
    let dropped = pipeline.report().dropped_late;
    samples.sort_unstable();
    let pct = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    Outcome {
        accepted: fixes.len() as u64 - dropped,
        dropped,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        events,
    }
}

fn static_config(bounds: BoundingBox, delay_min: i64, seal_min: i64) -> PipelineConfig {
    let mut config = PipelineConfig::regional(bounds);
    config.watermark_delay = delay_min * MINUTE;
    config.retention.seal_every = seal_min * MINUTE;
    config
}

/// `(label, goodput fixes/s, outcome)` per grid cell, adaptive last —
/// the numbers [`run`] tabulates and the snapshot step exports.
pub fn grid_results() -> Vec<(String, f64, Outcome)> {
    let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.5);
    let fixes = wave_fixes(HOURS, 99);

    // Correctness cross-check before timing: the adaptive cell's
    // observables — including the sampled visibility distribution —
    // are writer-count invariant.
    let reference = drive(&fixes, PipelineConfig::adaptive(bounds), 1);
    let four = drive(&fixes, PipelineConfig::adaptive(bounds), WRITERS);
    assert_eq!(reference, four, "writer count changed the adaptive cell");

    let mut cells: Vec<(String, PipelineConfig)> = Vec::new();
    for delay in [10i64, 40, 70] {
        for seal in [10i64, 30, 60] {
            cells.push((format!("static {delay}m/{seal}m"), static_config(bounds, delay, seal)));
        }
    }
    cells.push(("adaptive".into(), PipelineConfig::adaptive(bounds)));

    // Time the cells in interleaved round-robin rounds and keep each
    // cell's fastest round: cell-major timing lets machine drift
    // (thermals, a noisy neighbour) bias whole cells, while the
    // fastest of interleaved rounds converges on the cell's intrinsic
    // cost. Outcomes are deterministic, so only wall time needs the
    // repetition.
    let mut best = vec![f64::INFINITY; cells.len()];
    let mut outcomes: Vec<Option<Outcome>> = vec![None; cells.len()];
    for _ in 0..4 {
        for (i, (_, config)) in cells.iter().enumerate() {
            let (outcome, secs) = timed(|| drive(&fixes, config.clone(), WRITERS));
            best[i] = best[i].min(secs);
            outcomes[i] = Some(outcome);
        }
    }
    // Refinement: when a static cell's goodput still ties or beats the
    // adaptive cell's, give the contested cells (and adaptive) extra
    // rounds. Fastest-of-N converges each cell toward its intrinsic
    // cost, so the comparison resolves in whichever direction is real
    // instead of whichever cell drew the luckier scheduler slices.
    let adaptive = cells.len() - 1;
    for _ in 0..3 {
        let goodput =
            |i: usize| outcomes[i].as_ref().expect("timed every cell").accepted as f64 / best[i];
        let contested: Vec<usize> =
            (0..adaptive).filter(|&i| goodput(i) >= goodput(adaptive)).collect();
        if contested.is_empty() {
            break;
        }
        for &i in contested.iter().chain(std::iter::once(&adaptive)) {
            let (_, secs) = timed(|| drive(&fixes, cells[i].1.clone(), WRITERS));
            best[i] = best[i].min(secs);
        }
    }
    cells
        .into_iter()
        .enumerate()
        .map(|(i, (label, _))| {
            let outcome = outcomes[i].expect("timed every cell");
            (label, outcome.accepted as f64 / best[i], outcome)
        })
        .collect()
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let results = grid_results();
    let total = (results[0].2.accepted + results[0].2.dropped) as f64;

    let mut rows = Vec::new();
    for (label, goodput, o) in &results {
        rows.push(vec![
            label.clone(),
            format!("{}/s", f(*goodput, 0)),
            format!("{} ({}%)", o.dropped, f(o.dropped as f64 * 100.0 / total, 1)),
            f(o.p50_ms as f64 / MINUTE as f64, 1),
            f(o.p99_ms as f64 / MINUTE as f64, 1),
            o.events.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        &format!("C17 — adaptive vs static knob grid, satellite-wave workload, {HOURS} h"),
        &[
            "knobs (delay/seal)",
            "goodput",
            "dropped late",
            "p50 stale (min)",
            "p99 stale (min)",
            "events",
        ],
        &rows,
    ));

    // The tentpole claim: the adaptive cell wins both columns against
    // every static cell.
    let (_, adaptive_goodput, adaptive) = results.last().expect("grid non-empty");
    for (label, goodput, o) in &results[..results.len() - 1] {
        assert!(
            adaptive_goodput > goodput,
            "adaptive goodput {adaptive_goodput:.0}/s must beat {label} at {goodput:.0}/s"
        );
        assert!(
            adaptive.p99_ms < o.p99_ms,
            "adaptive p99 staleness {} must beat {label} at {}",
            adaptive.p99_ms,
            o.p99_ms
        );
    }
    out.push_str(
        "\n(one 6 h regime-switching stream: quiet terrestrial trickle\n\
         alternating with satellite waves ramping to ~41 min lateness on a\n\
         4-vessel port hotspot. Goodput = accepted fixes / wall second through\n\
         the 4-writer pipeline with a reader attached; staleness = how far the\n\
         arrival frontier had moved past a fix's event time when the published\n\
         stamp first covered it, with dropped fixes charged a 140 min penalty.\n\
         Tight static delays drop the waves; wide ones make every fix wait the\n\
         full delay; the controller pays the wide delay only during waves —\n\
         the run asserts it beats every static cell on both columns.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seeded_and_regime_switching() {
        let a = wave_fixes(2, 3);
        let b = wave_fixes(2, 3);
        assert_eq!(a, b, "same seed, same workload");
        // 40 quiet minutes at 80/min, then 80 wave minutes at 140/min.
        assert_eq!(a.len(), 40 * 80 + 80 * 140);
        let hotspot = a.iter().filter(|x| x.id <= 4).count();
        assert_eq!(hotspot, 80 * 130, "13 of every 14 wave fixes are satellite");
        // Satellite lateness reaches the plateau but stays acceptable
        // to a tracking delay under the 70-minute clamp.
        let worst = a
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let frontier = a[..=i].iter().map(|y| y.t).max().expect("non-empty");
                frontier - x.t
            })
            .max()
            .expect("non-empty");
        assert!(worst > 40 * MINUTE, "waves must outrun a 40 min static delay");
        assert!(worst < 50 * MINUTE, "waves must stay acceptable near the clamp");
    }

    #[test]
    fn adaptive_cell_is_writer_count_invariant_on_a_short_run() {
        let fixes = wave_fixes(2, 11);
        let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.5);
        let one = drive(&fixes, PipelineConfig::adaptive(bounds), 1);
        let four = drive(&fixes, PipelineConfig::adaptive(bounds), 4);
        assert_eq!(one, four);
        assert!(one.accepted > 0);
    }

    #[test]
    fn tight_static_delay_drops_the_wave_and_takes_the_penalty() {
        let fixes = wave_fixes(2, 11);
        let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.5);
        let tight = drive(&fixes, static_config(bounds, 10, 30), 4);
        let adaptive = drive(&fixes, PipelineConfig::adaptive(bounds), 4);
        assert!(tight.dropped > 50 * adaptive.dropped.max(1), "the wave must swamp a 10 min delay");
        assert_eq!(tight.p99_ms, DROP_PENALTY, "p99 of a dropping cell is the penalty");
        assert!(adaptive.p99_ms < DROP_PENALTY);
    }
}
