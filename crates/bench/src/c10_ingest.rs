//! C10 — concurrent archive ingest: sharded batch appends vs the
//! single-global-lock baseline.
//!
//! The paper's pipeline is built around continuous high-rate AIS
//! ingest. The original `SharedTrajectoryStore` serialized every write
//! through one `RwLock`; the sharded store stripes that lock by vessel
//! hash and batches appends per shard. This experiment measures both
//! designs under 1/2/4/8 ingest threads pushing the same 100k-fix
//! workload.

use crate::util::{f, table, timed};
use mda_geo::{Fix, Position, Timestamp};
use mda_store::shards::ShardedTrajectoryStore;
use mda_stream::runner::{run_partitioned, run_shard_affine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of fixes in the standard workload.
pub const WORKLOAD: usize = 100_000;

/// A time-ordered ingest workload: `n` fixes interleaved round-robin
/// over `vessels` vessels (the arrival pattern of a live AIS feed).
pub fn fleet_fixes(n: usize, vessels: u32, seed: u64) -> Vec<Fix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Fix::new(
                (i as u32 % vessels) + 1,
                Timestamp::from_secs((i / vessels as usize) as i64 * 10),
                Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0)),
                rng.gen_range(0.0..18.0),
                rng.gen_range(0.0..360.0),
            )
        })
        .collect()
}

/// A replayed-dump workload: the [`fleet_fixes`] stream, except that
/// dump vessels (1 in 25) have two thirds of their fixes withheld and
/// re-delivered ~7 minutes of stream later as one contiguous burst per
/// vessel — the arrival shape of a satellite batch landing behind the
/// terrestrial tail. Every replayed fix arrives behind its vessel's
/// track tail, so per-fix appends pay one disordered sort-insert each
/// while batched appends coalesce each per-vessel burst into a single
/// merge.
pub fn replayed_fixes(n: usize, vessels: u32, seed: u64) -> Vec<Fix> {
    let base = fleet_fixes(n, vessels, seed);
    let mut out = Vec::with_capacity(base.len());
    let mut held: std::collections::BTreeMap<u32, Vec<Fix>> = std::collections::BTreeMap::new();
    for (i, fix) in base.iter().enumerate() {
        if fix.id % 25 == 0 && (i / vessels as usize) % 3 != 0 {
            held.entry(fix.id).or_default().push(*fix);
        } else {
            out.push(*fix);
        }
        if (i + 1) % 20_000 == 0 {
            for (_, burst) in std::mem::take(&mut held) {
                out.extend(burst);
            }
        }
    }
    for (_, burst) in held {
        out.extend(burst);
    }
    out
}

/// Baseline: the pre-sharding design. One global lock (a 1-shard
/// store), `workers` ingest threads routed by vessel-key hash, one lock
/// acquisition per fix.
pub fn ingest_global_lock(fixes: Vec<Fix>, workers: usize) -> ShardedTrajectoryStore {
    let store = ShardedTrajectoryStore::with_shards(1);
    run_partitioned(
        fixes,
        workers,
        |f: &Fix| f.id,
        || {
            let store = store.clone();
            move |fix: Fix| {
                store.append(fix);
                Vec::<()>::new()
            }
        },
    );
    store
}

/// The sharded path: `workers` ingest threads routed shard-affine over
/// a lock-striped store, one batch append per owned shard.
pub fn ingest_sharded(fixes: Vec<Fix>, workers: usize, shards: usize) -> ShardedTrajectoryStore {
    let store = ShardedTrajectoryStore::with_shards(shards);
    run_shard_affine(
        fixes,
        workers,
        shards,
        |f: &Fix| store.shard_of(f.id),
        || {
            let store = store.clone();
            move |batch: Vec<Fix>| {
                store.append_batch(batch);
                Vec::<()>::new()
            }
        },
    );
    store
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let fixes = fleet_fixes(WORKLOAD, 500, 42);
    // Correctness cross-check before timing anything.
    let a = ingest_global_lock(fixes.clone(), 4);
    let b = ingest_sharded(fixes.clone(), 4, 8);
    assert_eq!(a.len(), WORKLOAD);
    assert_eq!(b.len(), WORKLOAD);
    assert_eq!(a.vessels(), b.vessels());

    // Median of 5 runs per cell: single-shot ingest timings are noisy,
    // especially under scheduler jitter on small machines.
    let median = |mut runs: Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let global_s = median(
            (0..5)
                .map(|_| {
                    timed(|| {
                        std::hint::black_box(ingest_global_lock(fixes.clone(), workers));
                    })
                    .1
                })
                .collect(),
        );
        let sharded_s = median(
            (0..5)
                .map(|_| {
                    timed(|| {
                        std::hint::black_box(ingest_sharded(fixes.clone(), workers, 8));
                    })
                    .1
                })
                .collect(),
        );
        rows.push(vec![
            workers.to_string(),
            format!("{}/s", f(WORKLOAD as f64 / global_s, 0)),
            format!("{}/s", f(WORKLOAD as f64 / sharded_s, 0)),
            format!("{}x", f(global_s / sharded_s, 1)),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        "C10 — concurrent ingest, 100k fixes / 500 vessels",
        &["ingest threads", "global lock (per-fix)", "sharded (batch)", "speedup"],
        &rows,
    ));
    out.push_str(
        "\n(global lock = 1-shard store, key-hash routing, one lock per fix —\n\
         the pre-sharding design; sharded = 8 lock stripes, shard-affine\n\
         routing, one batch append per owned shard)\n",
    );

    // Disorder guard: on a replayed-dump stream, batched appends must
    // coalesce each per-vessel burst into one sort-merge where the
    // per-fix trickle pays one disordered insert per late fix. The
    // assertion is the regression guard; the table shows the margin.
    let replay = replayed_fixes(WORKLOAD, 500, 43);
    let merges = |store: &ShardedTrajectoryStore| {
        store.fold_shards(0u64, |acc, shard| acc + shard.disordered_merges())
    };
    let run_trickle = || {
        let store = ShardedTrajectoryStore::with_shards(8);
        for fix in &replay {
            store.append(*fix);
        }
        store
    };
    let run_batched = || {
        let store = ShardedTrajectoryStore::with_shards(8);
        for chunk in replay.chunks(256) {
            store.append_batch(chunk.iter().copied());
        }
        store
    };
    let (trickle_store, trickle_s) = timed(run_trickle);
    let (batched_store, batched_s) = timed(run_batched);
    for id in trickle_store.vessels() {
        assert_eq!(
            trickle_store.trajectory(id),
            batched_store.trajectory(id),
            "batched disorder handling diverged for vessel {id}"
        );
    }
    let (trickle_merges, batched_merges) = (merges(&trickle_store), merges(&batched_store));
    assert!(
        batched_merges * 4 <= trickle_merges,
        "batched appends must coalesce replayed bursts: {batched_merges} merges \
         vs {trickle_merges} trickled"
    );
    out.push_str(&table(
        "C10 — replayed-dump disorder, 100k fixes (1 in 25 vessels replayed late)",
        &["append path", "throughput", "disordered merges"],
        &[
            vec![
                "per-fix trickle".into(),
                format!("{}/s", f(WORKLOAD as f64 / trickle_s, 0)),
                trickle_merges.to_string(),
            ],
            vec![
                "batched (256/chunk)".into(),
                format!("{}/s", f(WORKLOAD as f64 / batched_s, 0)),
                batched_merges.to_string(),
            ],
        ],
    ));
    out.push_str(
        "\n(each replayed burst lands behind its vessel's hot-track tail;\n\
         batched appends sort the batch and splice one run per vessel, so the\n\
         disordered-merge count — asserted ≤ 1/4 of the trickle's — stays\n\
         near the burst count instead of the late-fix count)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_appends_coalesce_replayed_bursts() {
        let replay = replayed_fixes(20_000, 100, 9);
        assert_eq!(replay.len(), 20_000, "replay reorders, never drops");
        let trickle = ShardedTrajectoryStore::with_shards(8);
        for fix in &replay {
            trickle.append(*fix);
        }
        let batched = ShardedTrajectoryStore::with_shards(8);
        for chunk in replay.chunks(256) {
            batched.append_batch(chunk.iter().copied());
        }
        let merges = |s: &ShardedTrajectoryStore| {
            s.fold_shards(0u64, |acc, shard| acc + shard.disordered_merges())
        };
        assert_eq!(trickle.len(), batched.len());
        for id in trickle.vessels() {
            assert_eq!(trickle.trajectory(id), batched.trajectory(id), "vessel {id}");
        }
        assert!(merges(&trickle) > 0, "the replay must actually disorder the stream");
        assert!(
            merges(&batched) * 4 <= merges(&trickle),
            "batched: {} vs trickled: {}",
            merges(&batched),
            merges(&trickle)
        );
    }

    #[test]
    fn both_paths_ingest_identical_state() {
        let fixes = fleet_fixes(5_000, 50, 7);
        let a = ingest_global_lock(fixes.clone(), 4);
        let b = ingest_sharded(fixes, 4, 8);
        assert_eq!(a.len(), 5_000);
        assert_eq!(b.len(), 5_000);
        assert_eq!(a.vessels(), b.vessels());
        for id in a.vessels() {
            assert_eq!(a.trajectory(id), b.trajectory(id), "vessel {id}");
        }
    }
}
