//! C12 — fleet-scale sharded event recognition under churn.
//!
//! The event layer must survive what a real AIS feed does over days:
//! vessels appearing, transmitting for an hour or two, and going dark
//! for good. Two claims are measured here:
//!
//! - **throughput vs detector shards** — the same churn workload driven
//!   through the sharded engine (`observe_batch` + aligned ticks) with
//!   1/2/4/8 shards; emission is shard-count invariant, so any delta is
//!   pure execution cost;
//! - **bounded resident state** — with the TTL eviction on, detector
//!   state tracks the *live* population; with it off, every vessel ever
//!   seen stays resident forever (the pre-eviction behaviour).

use crate::util::{drive_engine_ticked, f, table, timed};
use mda_events::engine::{EngineConfig, EngineStateStats, EventEngine};
use mda_geo::time::{HOUR, MINUTE, SECOND};
use mda_geo::{DurationMs, Fix, Position, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vessels in the standard churn workload.
pub const FLEET: u32 = 4_000;
/// Scenario length, hours.
pub const HOURS: i64 = 6;

/// A churn workload: `vessels` vessels with staggered lifetimes over
/// `hours` hours of event time, one fix every 30 s while alive, then
/// permanent silence. At any instant only a fraction of the fleet is
/// live — the shape that leaks state in an eviction-less engine.
pub fn churn_fixes(vessels: u32, hours: i64, seed: u64) -> Vec<Fix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let duration = hours * HOUR;
    let mut fixes = Vec::new();
    for v in 1..=vessels {
        let life = rng.gen_range(30 * MINUTE..90 * MINUTE);
        let start = rng.gen_range(0..(duration - life).max(1));
        let lat = rng.gen_range(42.0..44.0);
        let lon = rng.gen_range(3.0..6.0);
        let sog = rng.gen_range(0.5..18.0);
        let cog = rng.gen_range(0.0..360.0);
        let base = Fix::new(v, Timestamp(start), Position::new(lat, lon), sog, cog);
        let mut t = start;
        while t < start + life {
            let ts = Timestamp(t);
            fixes.push(Fix { t: ts, pos: base.dead_reckon(ts), ..base });
            t += 30 * SECOND;
        }
    }
    fixes.sort_by_key(|x| (x.t, x.id));
    fixes
}

/// Drive a churn workload through a sharded engine with the pipeline's
/// `TickSchedule` discipline (via [`drive_engine_ticked`]): fixes
/// batch per aligned minute through `observe_batch`, each boundary's
/// tick fires after exactly the data it covers. Returns `(events,
/// final resident state)`.
pub fn drive_sharded(fixes: &[Fix], shards: usize, ttl: DurationMs) -> (u64, EngineStateStats) {
    let mut engine =
        EventEngine::new(EngineConfig { shards, vessel_ttl: ttl, ..Default::default() });
    let mut events = drive_engine_ticked(&mut engine, fixes);
    if let Some(last) = fixes.last() {
        // Trailing sweep so the last generation of dark vessels ages out.
        events += engine.tick(last.t.saturating_add(ttl.saturating_add(30 * MINUTE))).len() as u64;
    }
    let _ = engine.take_evicted();
    (events, engine.state_stats())
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let fixes = churn_fixes(FLEET, HOURS, 12);
    let ttl = 30 * MINUTE;

    // Correctness cross-check before timing: shard counts agree.
    let (events_1, _) = drive_sharded(&fixes, 1, ttl);
    let (events_8, _) = drive_sharded(&fixes, 8, ttl);
    assert_eq!(events_1, events_8, "shard count changed emission");

    let median = |mut runs: Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let runs: Vec<((u64, EngineStateStats), f64)> =
            (0..3).map(|_| timed(|| drive_sharded(&fixes, shards, ttl))).collect();
        let secs = median(runs.iter().map(|(_, s)| *s).collect());
        let (events, stats) = runs[0].0;
        rows.push(vec![
            shards.to_string(),
            format!("{}/s", f(fixes.len() as f64 / secs, 0)),
            events.to_string(),
            stats.live_vessels.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        &format!("C12 — sharded event engine, {FLEET}-vessel churn fleet, {HOURS} h"),
        &["detector shards", "throughput", "events", "resident vessels"],
        &rows,
    ));

    // Bounded state: TTL on vs off.
    let (_, bounded) = drive_sharded(&fixes, 8, ttl);
    let (_, unbounded) = drive_sharded(&fixes, 8, DurationMs::MAX);
    out.push_str(&table(
        "C12 — resident detector state after the run (8 shards)",
        &["eviction", "live vessels", "gap tracked", "resident entries"],
        &[
            vec![
                "TTL 30 min".into(),
                bounded.live_vessels.to_string(),
                bounded.gap_tracked.to_string(),
                bounded.resident_entries().to_string(),
            ],
            vec![
                "off (pre-PR behaviour)".into(),
                unbounded.live_vessels.to_string(),
                unbounded.gap_tracked.to_string(),
                unbounded.resident_entries().to_string(),
            ],
        ],
    ));
    out.push_str(
        "\n(churn fleet: every vessel transmits ~1 h then goes dark for good;\n\
         with eviction the engine retains only the live tail, without it the\n\
         whole fleet history stays resident — the leak this PR closes.\n\
         Emission is shard-count invariant; shard throughput deltas are pure\n\
         execution cost and scale with cores, not on a 1-CPU container)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_workload_is_seeded_and_ordered() {
        let a = churn_fixes(50, 2, 7);
        let b = churn_fixes(50, 2, 7);
        assert_eq!(a, b, "same seed, same workload");
        assert!(a.windows(2).all(|w| (w[0].t, w[0].id) <= (w[1].t, w[1].id)));
        assert!(a.len() > 1_000);
    }

    #[test]
    fn eviction_bounds_resident_state_under_churn() {
        let fixes = churn_fixes(300, 4, 3);
        let (events_a, bounded) = drive_sharded(&fixes, 4, 30 * MINUTE);
        let (events_b, unbounded) = drive_sharded(&fixes, 4, DurationMs::MAX);
        // The trailing sweep ages every churned vessel out.
        assert_eq!(bounded.live_vessels, 0, "all dark vessels must age out");
        assert_eq!(unbounded.gap_tracked, 300, "without TTL every vessel stays resident");
        assert!(bounded.resident_entries() < unbounded.resident_entries() / 4);
        // Eviction changes state, not per-vessel emission before the
        // TTL horizon — both runs saw the same gap alarms live.
        assert!(events_a >= events_b, "TTL must not lose live alarms");
    }

    #[test]
    fn shard_counts_agree_on_churn() {
        let fixes = churn_fixes(120, 2, 5);
        let reference = drive_sharded(&fixes, 1, 30 * MINUTE);
        for shards in [2usize, 4, 8] {
            assert_eq!(drive_sharded(&fixes, shards, 30 * MINUTE), reference);
        }
    }
}
