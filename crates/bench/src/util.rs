//! Small table-formatting helpers shared by the experiments.

use std::fmt::Write as _;

/// Render an ASCII table with a title, header and rows.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Format a float with the given decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a rate as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Time a closure, returning (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Drive event-time-ordered fixes through an engine with the
/// pipeline's [`TickSchedule`](mda_stream::watermark::TickSchedule)
/// discipline: fixes accumulate into
/// per-aligned-minute batches for `observe_batch`, and each boundary's
/// tick fires after exactly the fixes it covers. Returns the events
/// emitted. Trailing sweeps (e.g. ageing out the final generation of
/// dark vessels) are the caller's choice — the C4 and C12 drivers
/// differ only there.
pub fn drive_engine_ticked(engine: &mut mda_events::EventEngine, fixes: &[mda_geo::Fix]) -> u64 {
    let mut events = 0u64;
    let mut ticks = mda_stream::watermark::TickSchedule::new(mda_geo::time::MINUTE);
    let mut batch: Vec<mda_geo::Fix> = Vec::new();
    for fix in fixes {
        while let Some(boundary) = ticks.before_observation(fix.t) {
            events += engine.observe_batch(&std::mem::take(&mut batch)).len() as u64;
            events += engine.tick(boundary).len() as u64;
        }
        batch.push(*fix);
    }
    events += engine.observe_batch(&batch).len() as u64;
    events
}
