//! Small table-formatting helpers shared by the experiments.

use std::fmt::Write as _;

/// Render an ASCII table with a title, header and rows.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Format a float with the given decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a rate as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Time a closure, returning (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}
