//! C3 — going dark and open-world querying (§4, Windward figures).
//!
//! The paper: 27% of ships do not transmit ≥10% of the time, so the AIS
//! database violates the closed-world assumption; rendezvous queries
//! must treat what happened while dark as *possible*, not false.
//!
//! Measured here: (a) gap-detection precision/recall against the
//! simulator's dark episodes; (b) the dark vessel-hours the fleet
//! accumulated; (c) a rendezvous existence query answered closed-world
//! vs open-world.

use crate::fig2_pipeline::pipeline_for;
use crate::util::{f, pct, table};
use mda_events::event::EventKind;
use mda_sim::scenario::{Scenario, ScenarioConfig};
use mda_uncertainty::openworld::OpenWorldRelation;

/// Run the experiment and return the report text.
pub fn run() -> String {
    let sim = Scenario::generate(ScenarioConfig::regional(53, 100, 6 * mda_geo::time::HOUR));
    let mut p = pipeline_for(&sim);
    let events = p.run_scenario(&sim);

    // --- gap detection vs ground truth ---------------------------------
    let flagged: std::collections::HashSet<u32> =
        events.iter().filter(|e| matches!(e.kind, EventKind::GapStart)).map(|e| e.vessel).collect();
    let truth: std::collections::HashSet<u32> = sim.dark_episodes.keys().copied().collect();
    let tp = flagged.intersection(&truth).count();
    let recall = tp as f64 / truth.len().max(1) as f64;
    let precision = tp as f64 / flagged.len().max(1) as f64;

    // Dark exposure of the fleet.
    let dark_ms: i64 =
        sim.dark_episodes.values().flat_map(|eps| eps.iter().map(|e| e.duration())).sum();
    let dark_hours = dark_ms as f64 / 3_600_000.0;
    let fleet_hours = sim.vessels.len() as f64 * 6.0;

    // --- closed vs open world rendezvous query -------------------------
    // §4's motivating query: a rendezvous *while the participant was
    // dark*. AIS-based recognition cannot observe those by construction
    // — both parties must transmit — so the closed-world answer is
    // structurally (near) zero and only the open-world semantics keeps
    // the possibility alive, budgeted by the dark exposure.
    let mut pairs: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut dark_time_pairs = 0usize;
    for e in &events {
        if let EventKind::Rendezvous { other, .. } = e.kind {
            let key = if e.vessel < other { (e.vessel, other) } else { (other, e.vessel) };
            pairs.insert(key);
            let in_dark = [e.vessel, other].iter().any(|v| {
                sim.dark_episodes
                    .get(v)
                    .map(|eps| eps.iter().any(|ep| ep.contains(e.t)))
                    .unwrap_or(false)
            });
            if in_dark {
                dark_time_pairs += 1;
            }
        }
    }
    // Expected hidden encounters: scale the observed encounter rate by
    // the fraction of exposure spent dark.
    let hidden_budget =
        pairs.len() as f64 * (dark_hours / fleet_hours) / (1.0 - dark_hours / fleet_hours);
    let mut relation: OpenWorldRelation<(u32, u32, bool)> =
        OpenWorldRelation::new(hidden_budget.max(1.0));
    for pair in &pairs {
        relation.insert((pair.0, pair.1, false), 0.8);
    }
    let closed_count = relation.expected_count_closed(|_| true);
    let (open_lo, open_hi) = relation.expected_count_open(|_| true);
    // Hidden encounters happen, by definition, during dark time.
    let closed_p = relation.exists_closed(|t| t.2);
    let open_p = relation.exists_open(|t| t.2, 0.5);
    let _ = dark_time_pairs;

    let rows = vec![
        vec!["ships configured dark".into(), format!("{} / {}", truth.len(), sim.vessels.len())],
        vec!["dark share of fleet".into(), pct(truth.len() as f64 / sim.vessels.len() as f64)],
        vec![
            "dark vessel-hours".into(),
            format!(
                "{} h of {} h ({})",
                f(dark_hours, 1),
                f(fleet_hours, 0),
                pct(dark_hours / fleet_hours)
            ),
        ],
        vec!["gap-detection recall".into(), pct(recall)],
        vec!["gap-detection precision".into(), pct(precision)],
        vec!["rendezvous pairs observed (closed world)".into(), f(closed_count, 2)],
        vec![
            "rendezvous pairs expected (open world)".into(),
            format!("[{}, {}]", f(open_lo, 2), f(open_hi, 2)),
        ],
        vec!["∃ rendezvous during a dark episode, closed world".into(), f(closed_p, 3)],
        vec!["∃ rendezvous during a dark episode, open world".into(), open_p.to_string()],
    ];
    let mut out = String::new();
    out.push_str(&table("C3 — going dark and open-world queries", &["metric", "value"], &rows));
    out.push_str(
        "\n(paper: 27% of ships go dark ≥10% of the time; closed-world answers\n\
         lower-bound the truth and the open-world interval exposes exactly the\n\
         uncertainty the dark hours create)\n",
    );
    out
}
