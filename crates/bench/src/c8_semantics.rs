//! C8 — link discovery and streaming semantic enrichment (§2.2, §2.5).
//!
//! Two halves: (a) registry link discovery quality/throughput at
//! growing registry sizes (the Silk/LIMES-style task of §2.2); (b)
//! streaming triple enrichment rate into the live knowledge graph (the
//! paper cites "billions of streaming triples per hour" for live
//! knowledge graphs — single-node triples/second is the comparable
//! figure).

use crate::util::{f, pct, table, timed};
use mda_geo::{Fix, Position, Timestamp};
use mda_semantics::enrich::Enricher;
use mda_semantics::link::{discover_links, score_links, LinkConfig};
use mda_semantics::registry::generate_registries;
use mda_semantics::store::TripleStore;
use mda_semantics::term::Interner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run the experiment and return the report text.
pub fn run() -> String {
    // --- link discovery -------------------------------------------------
    let mut rows = Vec::new();
    for n in [200usize, 1_000, 5_000] {
        let mut rng = StdRng::seed_from_u64(13);
        let (crowd, auth) = generate_registries(n, 0.12, &mut rng);
        let ((links, score), secs) = timed(|| {
            let links = discover_links(&crowd, &auth, &LinkConfig::default());
            let score = score_links(&links, &crowd, &auth);
            (links, score)
        });
        rows.push(vec![
            n.to_string(),
            links.len().to_string(),
            pct(score.precision()),
            pct(score.recall()),
            pct(score.f1()),
            format!("{} rec/s", f(n as f64 / secs, 0)),
        ]);
    }
    // Degraded variant: strip the hard identifiers so matching must
    // rely on names and numerics only — the regime where the paper says
    // existing link-discovery tools ("mostly numerical types") struggle.
    let mut rng = StdRng::seed_from_u64(13);
    let (mut crowd, mut auth) = generate_registries(1_000, 0.12, &mut rng);
    for r in crowd.iter_mut().chain(auth.iter_mut()) {
        r.mmsi = None;
        r.imo = None;
        r.callsign = None;
        // Keep only the name stem — fleets reuse names, so stems alone
        // are highly ambiguous.
        r.name = r.name.split_whitespace().next().unwrap_or("").to_string();
    }
    let links = discover_links(&crowd, &auth, &LinkConfig::default());
    let score = score_links(&links, &crowd, &auth);
    rows.push(vec![
        "1000 (no identifiers)".into(),
        links.len().to_string(),
        pct(score.precision()),
        pct(score.recall()),
        pct(score.f1()),
        "—".into(),
    ]);

    let mut out = String::new();
    out.push_str(&table(
        "C8a — registry link discovery (crowd-sourced vs authoritative)",
        &["records/side", "links", "precision", "recall", "F1", "throughput"],
        &rows,
    ));

    // --- streaming enrichment -------------------------------------------
    let world = mda_sim::world::World::gulf_of_lion();
    let zones = world.zones.iter().map(|z| (z.name.clone(), z.area.clone())).collect();
    let mut interner = Interner::new();
    let mut enricher = Enricher::new(&mut interner, zones);
    let mut store = TripleStore::new();
    let mut rng = StdRng::seed_from_u64(14);
    let n_fixes = 200_000usize;
    let vessel_terms: Vec<_> = (0..500).map(|i| interner.intern(&format!(":vessel/{i}"))).collect();
    let fixes: Vec<(usize, Fix)> = (0..n_fixes)
        .map(|i| {
            let v = i % 500;
            (
                v,
                Fix::new(
                    v as u32,
                    Timestamp::from_secs(i as i64),
                    Position::new(rng.gen_range(42.0..43.8), rng.gen_range(3.2..6.2)),
                    rng.gen_range(0.0..18.0),
                    rng.gen_range(0.0..360.0),
                ),
            )
        })
        .collect();
    let (triples, secs) = timed(|| {
        let mut emitted = 0usize;
        for (v, fix) in &fixes {
            emitted += enricher.enrich(&mut store, vessel_terms[*v], fix, 7.0);
        }
        emitted
    });
    let rows = vec![
        vec!["fixes enriched".into(), n_fixes.to_string()],
        vec!["triples emitted".into(), triples.to_string()],
        vec!["distinct triples stored".into(), store.len().to_string()],
        vec!["enrichment rate".into(), format!("{} fixes/s", f(n_fixes as f64 / secs, 0))],
        vec!["triple rate".into(), format!("{} triples/s", f(triples as f64 / secs, 0))],
        vec![
            "extrapolated hourly".into(),
            format!("{:.1}M triples/h", triples as f64 / secs * 3_600.0 / 1e6),
        ],
    ];
    out.push('\n');
    out.push_str(&table(
        "C8b — streaming enrichment into the knowledge graph",
        &["metric", "value"],
        &rows,
    ));
    out
}
