//! Figure 2 — the integrated maritime information infrastructure.
//!
//! Runs the full pipeline on a mixed regional scenario and reports one
//! row per architectural component: elements handled, mean latency and
//! busy-time throughput. This is the "does the integrated system hold
//! together" experiment.

use crate::util::{f, pct, table, timed};
use mda_core::{MaritimePipeline, PipelineConfig};
use mda_events::zone::NamedZone;
use mda_sim::scenario::{Scenario, ScenarioConfig, SimOutput};

/// Build the pipeline for a scenario (zones installed, weather wired).
pub fn pipeline_for(sim: &SimOutput) -> MaritimePipeline {
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = sim
        .world
        .zones
        .iter()
        .map(|z| NamedZone {
            name: z.name.clone(),
            area: z.area.clone(),
            protected: z.kind == mda_sim::world::ZoneKind::ProtectedArea,
        })
        .collect();
    MaritimePipeline::new(config).with_weather(sim.weather.clone())
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let sim = Scenario::generate(ScenarioConfig::regional(99, 80, 6 * mda_geo::time::HOUR));
    let mut p = pipeline_for(&sim);
    let (events, wall_s) = timed(|| p.run_scenario(&sim));

    let r = p.report();
    let mut rows: Vec<Vec<String>> = r
        .stage_rows()
        .into_iter()
        .map(|(stage, calls, mean_us, per_s)| {
            vec![
                stage.to_string(),
                calls.to_string(),
                format!("{} µs", f(mean_us, 1)),
                format!("{}/s", f(per_s, 0)),
            ]
        })
        .collect();
    rows.push(vec![
        "TOTAL (wall)".into(),
        (r.ais_messages + r.radar_plots + r.vms_reports).to_string(),
        format!("{} s", f(wall_s, 2)),
        format!("{}/s", f((r.ais_messages + r.radar_plots + r.vms_reports) as f64 / wall_s, 0)),
    ]);

    let mut out = String::new();
    out.push_str(&table(
        "Figure 2 — per-component throughput (integrated pipeline)",
        &["component", "elements", "mean latency", "throughput"],
        &rows,
    ));
    let (live, confirmed, dropped) = p.fuser().stats();
    let summary = vec![
        vec!["AIS messages".into(), r.ais_messages.to_string()],
        vec!["radar plots".into(), r.radar_plots.to_string()],
        vec!["VMS reports".into(), r.vms_reports.to_string()],
        vec!["events recognised".into(), events.len().to_string()],
        vec!["static messages flagged".into(), pct(r.static_error_rate())],
        vec!["late drops".into(), r.dropped_late.to_string()],
        vec!["tracks live/confirmed/dropped".into(), format!("{live}/{confirmed}/{dropped}")],
        vec!["synopsis compression".into(), pct(p.compression_ratio())],
        vec!["knowledge-graph triples".into(), p.graph().0.len().to_string()],
        vec!["archive fixes".into(), p.store().len().to_string()],
    ];
    out.push('\n');
    out.push_str(&table("Figure 2 — end-to-end summary", &["metric", "value"], &summary));
    out
}
