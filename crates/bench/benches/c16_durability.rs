//! Criterion bench: durable cold tier — WAL-logged ingest, seal-to-
//! disk, crash recovery, and cold queries from a recovered store (C16).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mda_bench::c11_tiered::{smooth_fleet, window_queries, WORKLOAD};
use mda_bench::c16_durability::{archive_config, scratch_dir};
use mda_core::config::RetentionPolicy;
use mda_geo::time::HOUR;
use mda_geo::Position;
use mda_store::{DurabilityConfig, DurableStore};

fn bench(c: &mut Criterion) {
    let tolerance = RetentionPolicy::default().cold_tolerance_m;
    let fixes = smooth_fleet(WORKLOAD, 200, 42);
    let t_hi = fixes.iter().map(|f| f.t).max().unwrap();

    // One crashed directory, reused (read-only) by the recovery and
    // cold-query benches below.
    let dir = scratch_dir("bench");
    let durable =
        DurableStore::open(archive_config(tolerance), &DurabilityConfig::new(&dir)).unwrap();
    durable.append_batch(fixes.clone()).unwrap();
    durable.mark(t_hi).unwrap();
    durable.seal_before(t_hi + HOUR).unwrap();
    eprintln!(
        "c16_durability: {:.1} bytes/fix on disk ({} segments)",
        durable.disk_bytes() as f64 / WORKLOAD as f64,
        durable.tier_stats().cold_segments,
    );
    drop(durable);

    let mut group = c.benchmark_group("c16_durability");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WORKLOAD as u64));
    // Seal-to-disk: the populated durable store is rebuilt in setup
    // (fresh scratch directory each iteration), outside the timing.
    group.bench_function("seal_to_disk_100k", |b| {
        let mut n = 0u32;
        b.iter_batched(
            || {
                n += 1;
                let d = scratch_dir(&format!("seal-{n}"));
                let store =
                    DurableStore::open(archive_config(tolerance), &DurabilityConfig::new(&d))
                        .unwrap();
                store.append_batch(fixes.clone()).unwrap();
                store.mark(t_hi).unwrap();
                (store, d)
            },
            |(store, d)| {
                std::hint::black_box(store.seal_before(t_hi + HOUR).unwrap());
                drop(store);
                let _ = std::fs::remove_dir_all(&d);
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("recover_100k", |b| {
        b.iter(|| std::hint::black_box(DurableStore::recover(&dir, archive_config(tolerance))))
    });
    group.finish();

    // Cold queries against a recovered store, next to c11's
    // window_cold/knn_cold numbers.
    let back = DurableStore::recover(&dir, archive_config(tolerance)).unwrap();
    let queries = window_queries(t_hi);
    let mut group = c.benchmark_group("c16_recovered_queries");
    group.bench_function("window_recovered", |b| {
        b.iter(|| {
            for (area, from, to) in &queries {
                std::hint::black_box(back.store().window(area, *from, *to));
            }
        })
    });
    group.bench_function("knn_recovered", |b| {
        b.iter(|| std::hint::black_box(back.store().knn(Position::new(43.0, 4.5), t_hi, 10)))
    });
    group.finish();
    drop(back);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
