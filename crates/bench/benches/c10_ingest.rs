//! Criterion bench: concurrent ingest — sharded batch appends vs the
//! single-global-lock baseline (C10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mda_bench::c10_ingest::{fleet_fixes, ingest_global_lock, ingest_sharded, WORKLOAD};

fn bench(c: &mut Criterion) {
    let fixes = fleet_fixes(WORKLOAD, 500, 42);
    let mut group = c.benchmark_group("c10_ingest");
    group.throughput(Throughput::Elements(WORKLOAD as u64));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("global_lock", workers), &workers, |b, &w| {
            b.iter(|| std::hint::black_box(ingest_global_lock(fixes.clone(), w)))
        });
        group.bench_with_input(BenchmarkId::new("sharded", workers), &workers, |b, &w| {
            b.iter(|| std::hint::black_box(ingest_sharded(fixes.clone(), w, 8)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
