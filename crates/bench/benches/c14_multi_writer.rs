//! Criterion bench: multi-writer shard-owned ingest (C14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mda_bench::c12_events::churn_fixes;
use mda_bench::c14_multi::drive_multi;

fn bench(c: &mut Criterion) {
    // A CI-sized slice of the standard workload: 300 vessels, 2 h.
    let fixes = churn_fixes(300, 2, 14);
    let mut group = c.benchmark_group("c14_multi_writer");
    group.throughput(Throughput::Elements(fixes.len() as u64));
    group.sample_size(10);
    for writers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("churn", writers), &writers, |b, &w| {
            b.iter(|| std::hint::black_box(drive_multi(&fixes, w)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
