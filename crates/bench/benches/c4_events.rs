//! Criterion bench: full event-engine observe path (C4).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::c4_events::{drive, ordered_fixes};

fn bench(c: &mut Criterion) {
    let fixes = ordered_fixes(50, 1);
    c.bench_function("c4_event_engine_50_vessels_1h", |b| {
        b.iter(|| drive(std::hint::black_box(&fixes)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
