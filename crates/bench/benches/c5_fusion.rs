//! Criterion bench: Kalman update + fuser ingest kernels (C5).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::c5_fusion::{drive, Sources};
use mda_geo::{Position, Timestamp};
use mda_sim::scenario::{Scenario, ScenarioConfig};
use mda_track::kalman::{CvKalman, KalmanConfig};

fn bench(c: &mut Criterion) {
    c.bench_function("c5_kalman_1000_updates", |b| {
        b.iter(|| {
            let mut kf = CvKalman::new(
                Position::new(43.0, 5.0),
                10.0,
                Timestamp::from_secs(0),
                KalmanConfig::default(),
            );
            for i in 1..1_000i64 {
                kf.update(
                    Position::new(43.0 + i as f64 * 1e-5, 5.0),
                    10.0,
                    Timestamp::from_secs(i * 10),
                );
            }
            kf.position()
        })
    });
    let sim = Scenario::generate(ScenarioConfig::regional(71, 15, mda_geo::time::HOUR));
    c.bench_function("c5_fused_ingest_15_vessels_1h", |b| {
        b.iter(|| {
            let fuser = drive(std::hint::black_box(&sim), Sources::Fused);
            fuser.stats()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
