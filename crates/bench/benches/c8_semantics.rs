//! Criterion bench: link discovery and enrichment kernels (C8).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_semantics::enrich::Enricher;
use mda_semantics::link::{discover_links, LinkConfig};
use mda_semantics::registry::generate_registries;
use mda_semantics::store::TripleStore;
use mda_semantics::term::Interner;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let (crowd, auth) = generate_registries(500, 0.12, &mut rng);
    c.bench_function("c8_link_discovery_500", |b| {
        b.iter(|| discover_links(std::hint::black_box(&crowd), &auth, &LinkConfig::default()))
    });

    let world = mda_sim::world::World::gulf_of_lion();
    let zones: Vec<_> = world.zones.iter().map(|z| (z.name.clone(), z.area.clone())).collect();
    c.bench_function("c8_enrich_1000_fixes", |b| {
        b.iter_batched(
            || {
                let mut interner = Interner::new();
                let enricher = Enricher::new(&mut interner, zones.clone());
                let v = interner.intern(":vessel/1");
                (enricher, TripleStore::new(), v)
            },
            |(mut enricher, mut store, v)| {
                for i in 0..1_000i64 {
                    let fix = mda_geo::Fix::new(
                        1,
                        mda_geo::Timestamp::from_secs(i),
                        mda_geo::Position::new(43.1 + (i % 50) as f64 * 0.001, 5.4),
                        8.0,
                        90.0,
                    );
                    enricher.enrich(&mut store, v, &fix, 7.0);
                }
                store
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
