//! Criterion bench: filtered subscription fan-out (C15).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mda_bench::c15_serve::drive;

fn bench(c: &mut Criterion) {
    // A CI-sized slice of the standard workload: 2k subscribers (2%
    // stalled) over 40 minutes of fleet time on one pump.
    let mut group = c.benchmark_group("c15_serve");
    group.throughput(Throughput::Elements(2_000));
    group.sample_size(10);
    group.bench_function("fanout_2k", |b| b.iter(|| std::hint::black_box(drive(2_000, 40, 40))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
