//! Criterion bench: mixed query serving under live ingest (C13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mda_bench::c13_query::{drive, scenario};
use mda_geo::time::HOUR;

fn bench(c: &mut Criterion) {
    // A CI-sized slice of the standard workload: 40 vessels, 1 h.
    let sim = scenario(31, 40, HOUR);
    let observations = (sim.ais.len() + sim.radar.len() + sim.vms.len()) as u64;
    let mut group = c.benchmark_group("c13_query");
    group.throughput(Throughput::Elements(observations));
    group.sample_size(10);
    for readers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("mixed", readers), &readers, |b, &r| {
            b.iter(|| std::hint::black_box(drive(&sim, r)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
