//! Criterion bench: static validation + veracity detector kernels (C2).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_ais::quality::validate;
use mda_events::veracity::{VeracityConfig, VeracityDetector};
use mda_sim::scenario::{Scenario, ScenarioConfig};

fn bench(c: &mut Criterion) {
    let sim = Scenario::generate(ScenarioConfig::regional(47, 20, mda_geo::time::HOUR));
    let msgs: Vec<_> = sim.ais.iter().map(|o| o.msg.clone()).collect();
    c.bench_function("c2_validate_stream", |b| {
        b.iter(|| {
            let mut flagged = 0usize;
            for m in &msgs {
                if !validate(std::hint::black_box(m)).is_clean() {
                    flagged += 1;
                }
            }
            flagged
        })
    });
    let mut fixes = sim.ais_fixes();
    fixes.sort_by_key(|f| f.t);
    c.bench_function("c2_veracity_detector_stream", |b| {
        b.iter(|| {
            let mut d = VeracityDetector::new(VeracityConfig::default());
            let mut alerts = 0usize;
            for f in &fixes {
                alerts += d.observe(std::hint::black_box(f)).len();
            }
            alerts
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
