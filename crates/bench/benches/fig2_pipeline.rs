//! Criterion bench: end-to-end pipeline on a small scenario (Figure 2).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::fig2_pipeline::pipeline_for;
use mda_sim::scenario::{Scenario, ScenarioConfig};

fn bench(c: &mut Criterion) {
    let sim = Scenario::generate(ScenarioConfig::regional(99, 10, mda_geo::time::HOUR));
    c.bench_function("fig2_pipeline_10_vessels_1h", |b| {
        b.iter(|| {
            let mut p = pipeline_for(&sim);
            std::hint::black_box(p.run_scenario(&sim).len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
