//! Criterion bench: threshold compression kernel (C1).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_synopses::compress::{compress_trajectory, ThresholdConfig};

fn bench(c: &mut Criterion) {
    let sim = mda_sim::scenario::Scenario::generate(
        mda_sim::scenario::ScenarioConfig::regional_honest(31, 10, 2 * mda_geo::time::HOUR),
    );
    let fixes: Vec<_> = sim.truth.values().next().unwrap().clone();
    let cfg = ThresholdConfig { tolerance_m: 100.0, ..Default::default() };
    c.bench_function("c1_threshold_compress_one_trajectory", |b| {
        b.iter(|| compress_trajectory(std::hint::black_box(&fixes), cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
