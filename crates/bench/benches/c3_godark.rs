//! Criterion bench: gap detector and open-world query kernels (C3).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_events::gap::GapDetector;
use mda_sim::scenario::{Scenario, ScenarioConfig};
use mda_uncertainty::openworld::OpenWorldRelation;

fn bench(c: &mut Criterion) {
    let sim = Scenario::generate(ScenarioConfig::regional(53, 30, 2 * mda_geo::time::HOUR));
    let mut fixes = sim.ais_fixes();
    fixes.sort_by_key(|f| f.t);
    c.bench_function("c3_gap_detector_stream", |b| {
        b.iter(|| {
            let mut d = GapDetector::new(15 * mda_geo::time::MINUTE);
            let mut events = 0usize;
            for f in &fixes {
                events += d.observe(std::hint::black_box(f)).len();
            }
            events
        })
    });
    let mut relation: OpenWorldRelation<u32> = OpenWorldRelation::new(25.0);
    for i in 0..10_000u32 {
        relation.insert(i, 0.5 + (i % 100) as f64 / 250.0);
    }
    c.bench_function("c3_open_world_query_10k_tuples", |b| {
        b.iter(|| relation.exists_open(|v| *v % 7 == 0, 0.1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
