//! Criterion bench: sharded event engine over a churn fleet (C12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mda_bench::c12_events::{churn_fixes, drive_sharded};
use mda_geo::time::MINUTE;

fn bench(c: &mut Criterion) {
    // A CI-sized slice of the standard workload: 400 vessels, 2 h.
    let fixes = churn_fixes(400, 2, 12);
    let mut group = c.benchmark_group("c12_events");
    group.throughput(Throughput::Elements(fixes.len() as u64));
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("churn", shards), &shards, |b, &s| {
            b.iter(|| std::hint::black_box(drive_sharded(&fixes, s, 30 * MINUTE)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
