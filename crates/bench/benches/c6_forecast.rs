//! Criterion bench: predictor kernels (C6).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_forecast::kinematic::{ConstantTurnPredictor, DeadReckoningPredictor};
use mda_forecast::routenet::{RouteNetPredictor, RouteNetwork};
use mda_forecast::Predictor;
use mda_geo::{BoundingBox, Fix, Position, Timestamp};

fn history() -> Vec<Fix> {
    let f0 = Fix::new(1, Timestamp::from_secs(0), Position::new(43.0, 4.5), 12.0, 80.0);
    (0..30)
        .map(|i| {
            let t = Timestamp::from_secs(i * 60);
            Fix { t, pos: f0.dead_reckon(t), ..f0 }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let h = history();
    let at = h.last().unwrap().t + 30 * mda_geo::time::MINUTE;
    c.bench_function("c6_dead_reckoning_30min", |b| {
        b.iter(|| DeadReckoningPredictor.predict(std::hint::black_box(&h), at))
    });
    c.bench_function("c6_constant_turn_30min", |b| {
        b.iter(|| ConstantTurnPredictor::default().predict(std::hint::black_box(&h), at))
    });
    let mut net = RouteNetwork::new(BoundingBox::new(42.0, 3.0, 44.0, 6.5), 0.02);
    net.learn_all(&h);
    let rn = RouteNetPredictor::new(net);
    c.bench_function("c6_route_network_30min", |b| {
        b.iter(|| rn.predict(std::hint::black_box(&h), at))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
