//! Criterion bench: adaptive control vs static knobs (C17).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mda_bench::c17_adaptive::{drive, wave_fixes};
use mda_core::PipelineConfig;
use mda_geo::time::MINUTE;
use mda_geo::BoundingBox;

fn bench(c: &mut Criterion) {
    // A CI-sized slice of the standard workload: one quiet phase plus
    // one full satellite wave (2 h).
    let fixes = wave_fixes(2, 11);
    let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.5);
    let static_config = {
        let mut config = PipelineConfig::regional(bounds);
        config.watermark_delay = 40 * MINUTE;
        config
    };
    let mut group = c.benchmark_group("c17_adaptive");
    group.throughput(Throughput::Elements(fixes.len() as u64));
    group.sample_size(10);
    group.bench_function("static_40m", |b| {
        b.iter(|| std::hint::black_box(drive(&fixes, static_config.clone(), 4)))
    });
    group.bench_function("adaptive", |b| {
        b.iter(|| std::hint::black_box(drive(&fixes, PipelineConfig::adaptive(bounds), 4)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
