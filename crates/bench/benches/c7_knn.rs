//! Criterion bench: grid kNN vs scan baseline (C7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mda_bench::c7_knn::{engine_with_fleet, queries};
use mda_geo::Timestamp;

fn bench(c: &mut Criterion) {
    let t = Timestamp::from_mins(12);
    let qs = queries(64, 9);
    let mut group = c.benchmark_group("c7_knn");
    for n in [1_000usize, 10_000] {
        let e = engine_with_fleet(n, 3);
        group.bench_with_input(BenchmarkId::new("ring", n), &e, |b, e| {
            b.iter(|| {
                for q in &qs {
                    std::hint::black_box(e.knn(*q, t, 10));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &e, |b, e| {
            b.iter(|| {
                for q in &qs {
                    std::hint::black_box(e.knn_scan(*q, t, 10));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
