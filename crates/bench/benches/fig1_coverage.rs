//! Criterion bench: AIVDM wire-codec throughput (Figure 1 ingest path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mda_ais::codec::{decode_payload, encode_payload};
use mda_ais::messages::{AisMessage, NavigationalStatus, PositionReport};
use mda_geo::Position;

fn sample() -> AisMessage {
    AisMessage::Position(PositionReport {
        msg_type: 1,
        repeat: 0,
        mmsi: 227_006_760,
        status: NavigationalStatus::UnderWayUsingEngine,
        rot_deg_min: None,
        sog_kn: Some(12.3),
        position_accuracy: true,
        pos: Some(Position::new(43.2965, 5.3698)),
        cog_deg: Some(211.9),
        heading_deg: Some(210),
        utc_second: 40,
    })
}

fn bench(c: &mut Criterion) {
    let msg = sample();
    let (bits, _) = encode_payload(&msg);
    let mut group = c.benchmark_group("fig1_codec");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_position", |b| {
        b.iter(|| encode_payload(std::hint::black_box(&msg)))
    });
    group.bench_function("decode_position", |b| {
        b.iter(|| decode_payload(std::hint::black_box(&bits)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
