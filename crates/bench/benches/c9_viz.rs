//! Criterion bench: pyramid build and drill-down query (C9).

use criterion::{criterion_group, criterion_main, Criterion};
use mda_bench::c9_viz::positions;
use mda_geo::BoundingBox;
use mda_viz::pyramid::AggregationPyramid;
use mda_viz::raster::DensityRaster;

fn bench(c: &mut Criterion) {
    let bounds = BoundingBox::new(42.0, 3.0, 43.9, 6.5);
    let pts = positions(100_000, 5);
    c.bench_function("c9_pyramid_build_100k", |b| {
        b.iter(|| {
            let mut base = DensityRaster::new(bounds, 256, 256);
            for p in &pts {
                base.add(*p);
            }
            AggregationPyramid::from_base(base)
        })
    });
    let mut base = DensityRaster::new(bounds, 256, 256);
    for p in &pts {
        base.add(*p);
    }
    let pyramid = AggregationPyramid::from_base(base);
    let window = BoundingBox::new(42.8, 4.4, 43.2, 5.1);
    c.bench_function("c9_drilldown_query_l0", |b| {
        b.iter(|| std::hint::black_box(pyramid.region_sum(0, &window)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
