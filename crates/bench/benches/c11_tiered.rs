//! Criterion bench: tiered storage — seal throughput plus hot vs cold
//! query latency (C11).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mda_bench::c11_tiered::{archive_store, sealed_store, smooth_fleet, window_queries, WORKLOAD};
use mda_core::config::RetentionPolicy;
use mda_geo::time::HOUR;
use mda_geo::Position;

fn bench(c: &mut Criterion) {
    let tolerance = RetentionPolicy::default().cold_tolerance_m;
    let fixes = smooth_fleet(WORKLOAD, 200, 42);
    let t_hi = fixes.iter().map(|f| f.t).max().unwrap();
    let hot = archive_store(tolerance);
    hot.append_batch(fixes.clone());
    let (sealed, _) = sealed_store(&fixes, tolerance);

    // The headline density number, printed once so the bench log always
    // carries it next to the timings.
    let (h, s) = (hot.tier_stats(), sealed.tier_stats());
    eprintln!(
        "c11_tiered: hot {:.1} bytes/fix, sealed {:.1} bytes/ingested-fix ({:.1}x smaller, {} segments)",
        h.hot_bytes as f64 / WORKLOAD as f64,
        s.cold_bytes as f64 / WORKLOAD as f64,
        h.hot_bytes as f64 / s.cold_bytes as f64,
        s.cold_segments,
    );

    let mut group = c.benchmark_group("c11_tiered");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WORKLOAD as u64));
    // Time the seal sweep alone: the populated (unsealed) store is
    // rebuilt in setup, outside the measurement.
    group.bench_function("seal_100k", |b| {
        b.iter_batched(
            || {
                let store = archive_store(tolerance);
                store.append_batch(fixes.clone());
                store
            },
            |store| std::hint::black_box(store.seal_before(t_hi + HOUR)),
            BatchSize::LargeInput,
        )
    });

    let queries = window_queries(t_hi);
    group.bench_function("window_hot", |b| {
        b.iter(|| {
            for (area, from, to) in &queries {
                std::hint::black_box(hot.window(area, *from, *to));
            }
        })
    });
    group.bench_function("window_cold", |b| {
        b.iter(|| {
            for (area, from, to) in &queries {
                std::hint::black_box(sealed.window(area, *from, *to));
            }
        })
    });
    group.bench_function("knn_hot", |b| {
        b.iter(|| std::hint::black_box(hot.knn(Position::new(43.0, 4.5), t_hi, 10)))
    });
    group.bench_function("knn_cold", |b| {
        b.iter(|| std::hint::black_box(sealed.knn(Position::new(43.0, 4.5), t_hi, 10)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
