//! Fixture battery: one bad + one clean counterpart per rule. Files
//! under `tests/fixtures/` are never compiled (and the workspace
//! walker skips `fixtures` directories) — they exist purely as lint
//! inputs, loaded here as strings.

use mda_lint::model::crate_model;
use mda_lint::report::Finding;
use mda_lint::{scan_manifest, scan_source};

/// Scan `src` as if it were `rel` inside crate `name`.
fn scan(name: &str, rel: &str, src: &str) -> Vec<Finding> {
    scan_source(crate_model(name).expect("crate in model"), rel, src)
}

/// The bad fixture must trip its rule; the clean one must be silent.
fn assert_pair(rule: &str, bad: Vec<Finding>, clean: Vec<Finding>) {
    assert!(
        bad.iter().any(|f| f.id == rule),
        "bad fixture for {rule} produced no {rule} finding: {bad:?}"
    );
    assert!(clean.is_empty(), "clean fixture for {rule} is not clean: {clean:?}");
}

#[test]
fn l0_allow_audit_pair() {
    let path = "crates/core/src/metrics.rs";
    let bad = scan("mda-core", path, include_str!("fixtures/l0_bad.rs"));
    assert_eq!(bad.len(), 2, "missing reason AND unknown id: {bad:?}");
    let clean = scan("mda-core", path, include_str!("fixtures/l0_clean.rs"));
    assert_pair("allow-audit", bad, clean);
}

#[test]
fn l1_crate_dag_source_pair() {
    let bad = scan("mda-geo", "crates/geo/src/bad.rs", include_str!("fixtures/l1_bad.rs"));
    let clean = scan("mda-ais", "crates/ais/src/clean.rs", include_str!("fixtures/l1_clean.rs"));
    assert_pair("crate-dag", bad, clean);
}

#[test]
fn l1_crate_dag_manifest_pair() {
    let geo = crate_model("mda-geo").unwrap();
    let ais = crate_model("mda-ais").unwrap();
    let bad = scan_manifest(geo, "crates/geo/Cargo.toml", include_str!("fixtures/l1_bad.toml"));
    let clean = scan_manifest(ais, "crates/ais/Cargo.toml", include_str!("fixtures/l1_clean.toml"));
    assert_pair("crate-dag", bad, clean);
}

#[test]
fn l2_panic_free_decode_pair() {
    // The path must be one the model lists as decode surface.
    let path = "crates/store/src/frame.rs";
    let bad = scan("mda-store", path, include_str!("fixtures/l2_bad.rs"));
    assert!(bad.len() >= 4, "unwrap, expect, panic! and slicing: {bad:?}");
    let clean = scan("mda-store", path, include_str!("fixtures/l2_clean.rs"));
    assert_pair("panic-free-decode", bad, clean);
}

#[test]
fn l3_deterministic_iteration_pair() {
    let path = "crates/events/src/engine.rs";
    let bad = scan("mda-events", path, include_str!("fixtures/l3_bad.rs"));
    let clean = scan("mda-events", path, include_str!("fixtures/l3_clean.rs"));
    assert_pair("deterministic-iteration", bad, clean);
}

#[test]
fn l4_wall_clock_pair() {
    let path = "crates/stream/src/clock.rs";
    let bad = scan("mda-stream", path, include_str!("fixtures/l4_bad.rs"));
    let clean = scan("mda-stream", path, include_str!("fixtures/l4_clean.rs"));
    assert_pair("wall-clock", bad, clean);

    // The same wall-clock read is fine inside the bench harness.
    let bench =
        scan("mda-bench", "crates/bench/src/harness.rs", include_str!("fixtures/l4_bad.rs"));
    assert!(bench.is_empty(), "mda-bench is exempt from L4: {bench:?}");
}

#[test]
fn l5_lock_order_pair() {
    let path = "crates/core/src/barrier.rs";
    let bad = scan("mda-core", path, include_str!("fixtures/l5_bad.rs"));
    let clean = scan("mda-core", path, include_str!("fixtures/l5_clean.rs"));
    assert_pair("lock-order", bad, clean);
}

#[test]
fn an_allow_with_reason_suppresses_the_finding() {
    let path = "crates/stream/src/clock.rs";
    let direct = "pub fn stamp() -> std::time::Instant {\n\
               // lint:allow(wall-clock): fixture exercising the escape\n\
               std::time::Instant::now()\n}\n";
    let with_blank = "pub fn stamp() -> std::time::Instant {\n\
               // lint:allow(wall-clock): fixture exercising the escape\n\
               \n    std::time::Instant::now()\n}\n";
    assert!(scan("mda-stream", path, direct).is_empty());
    assert!(scan("mda-stream", path, with_blank).is_empty(), "blank lines are skipped");
}

/// End-to-end: the binary must exit non-zero when a synthetic tree
/// contains a bad fixture, and report it on stdout.
#[test]
fn cli_exits_nonzero_on_a_bad_tree() {
    let root = std::env::temp_dir().join(format!("mda-lint-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/store/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(src_dir.join("frame.rs"), include_str!("fixtures/l2_bad.rs")).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mda-lint"))
        .args(["--root", root.to_str().unwrap(), "--format", "json"])
        .output()
        .expect("run mda-lint");
    std::fs::remove_dir_all(&root).ok();

    assert_eq!(out.status.code(), Some(1), "findings must exit 1: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"rule\":\"panic-free-decode\""),
        "machine-readable report names the rule: {stdout}"
    );
}
