// Bad: escapes that break the escape discipline itself.

// lint:allow(panic-free-decode)
pub fn missing_reason() {}

// lint:allow(no-such-rule): a reason does not save an unknown rule id
pub fn unknown_rule() {}
