// Bad: scanned as an emission-surface file — the emitted order is
// whatever the hash seed gives this run.

use std::collections::HashMap;

pub struct Emitter {
    latest: HashMap<u32, u64>,
}

impl Emitter {
    pub fn emit(&self, out: &mut Vec<u64>) {
        for v in self.latest.values() {
            out.push(*v);
        }
    }
}
