// Bad: scanned as a decode-surface file — every one of these can
// panic on bytes read off disk.

pub fn decode(buf: &[u8]) -> u32 {
    let len = usize::from(buf[0]);
    let body = &buf[1..len];
    if body.is_empty() {
        panic!("empty body");
    }
    u32::from_le_bytes(body.try_into().unwrap())
}

pub fn header(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[..4].try_into().expect("sized"))
}
