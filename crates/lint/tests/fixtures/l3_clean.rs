// Clean: the iteration is immediately sorted, so the emitted order
// is a pure function of the map's contents.

use std::collections::HashMap;

pub struct Emitter {
    latest: HashMap<u32, u64>,
}

impl Emitter {
    pub fn emit(&self, out: &mut Vec<u64>) {
        let mut vals: Vec<u64> = self.latest.values().copied().collect();
        vals.sort_unstable();
        out.extend(vals);
    }
}
