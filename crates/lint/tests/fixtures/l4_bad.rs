// Bad: a wall-clock read outside mda-bench — replaying the same
// stream twice gives two different answers.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
