// Bad: the second lock is taken while the first guard is still held
// — two threads doing this in opposite order deadlock.

use std::sync::Mutex;

pub struct Two {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Two {
    pub fn sum(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }
}
