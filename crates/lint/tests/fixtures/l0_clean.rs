// Clean: a known rule id with a justification.

// lint:allow(wall-clock): metrics-only timing, never event-time logic
pub fn justified() {}
