// Clean: time comes from the event stream, never from the host.

pub fn stamp(event_ms: i64) -> i64 {
    event_ms
}
