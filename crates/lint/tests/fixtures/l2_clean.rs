// Clean: the same reads, every one fallible — truncation is `None`,
// never a panic.

pub fn decode(buf: &[u8]) -> Option<u32> {
    let len = usize::from(*buf.first()?);
    let body = buf.get(1..len)?;
    Some(u32::from_le_bytes(body.try_into().ok()?))
}

pub fn header(buf: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(*buf.first_chunk::<4>()?))
}
