// Bad: scanned as a file of mda-geo, which must stay leaf-side of
// the store — importing upward inverts the crate DAG.

use mda_store::tier::TieredStore;

pub fn peek(store: &TieredStore) -> usize {
    store.len()
}
