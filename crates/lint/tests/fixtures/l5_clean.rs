// Clean: each guard is dropped inside its own scope before the next
// lock is taken.

use std::sync::Mutex;

pub struct Two {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Two {
    pub fn sum(&self) -> u32 {
        let a = { *self.a.lock().unwrap() };
        let b = { *self.b.lock().unwrap() };
        a + b
    }
}
