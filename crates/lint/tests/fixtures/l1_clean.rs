// Clean: scanned as a file of mda-ais, whose model allows mda-geo.

use mda_geo::Position;

pub fn origin() -> Position {
    Position::new(0.0, 0.0)
}
