//! Self-test: the workspace at HEAD must be lint-clean. This is the
//! same gate CI runs — a PR that introduces a violation without a
//! justified `lint:allow` fails here first.

use std::path::Path;

#[test]
fn workspace_is_lint_clean_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = mda_lint::scan_workspace(&root, None).expect("scan workspace");
    assert!(
        outcome.findings.is_empty(),
        "workspace has lint findings:\n{}",
        outcome
            .findings
            .iter()
            .map(mda_lint::report::Finding::human)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Guard against the walker silently scanning nothing: the
    // workspace has well over a hundred Rust files.
    assert!(
        outcome.files_scanned > 100,
        "walker found only {} files — did the crate layout move?",
        outcome.files_scanned
    );
}

#[test]
fn every_rule_is_documented_in_architecture_md() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md");
    for rule in mda_lint::rules::RULES {
        assert!(
            arch.contains(rule.id),
            "ARCHITECTURE.md §10 must document rule {} ({})",
            rule.code,
            rule.id
        );
    }
}
