//! Source scrubbing: the hand-rolled lexical front end of the linter.
//!
//! Rules never look at raw source. [`Scrub::new`] runs a single-pass
//! state machine over the bytes that blanks out every comment, string
//! literal (plain, raw with any `#` count, byte, and char literals —
//! lifetimes are told apart from char literals) while preserving byte
//! offsets and line structure exactly. On the way it:
//!
//! - collects `// lint:allow(<rule-id>): <reason>` escape directives
//!   with their line numbers and whether a justification follows;
//! - marks every line that belongs to a `#[cfg(test)]` or `#[test]`
//!   item, so rules can skip test code (test batteries may `unwrap`
//!   known-good data; the disciplines govern production paths).
//!
//! The scrubbed text is what the rules pattern-match against: inside
//! it, a `[` is always a real bracket and `panic!` is always a real
//! macro invocation, never part of a string or a doc comment.

/// One `lint:allow` escape directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the directive's comment starts on.
    pub line: usize,
    /// The rule id named inside `lint:allow(...)`.
    pub rule: String,
    /// True when a non-empty `: <reason>` justification follows.
    pub has_reason: bool,
}

/// A comment/string-blanked view of one source file (see module docs).
#[derive(Debug)]
pub struct Scrub {
    /// The blanked source: same byte length and line structure as the
    /// input, with every comment/string byte replaced by a space.
    pub text: String,
    /// Byte offset of the start of each (1-based) line.
    line_starts: Vec<usize>,
    /// Per (1-based) line: inside a `#[cfg(test)]` / `#[test]` item.
    test_lines: Vec<bool>,
    /// Every `lint:allow` directive found in the comments.
    pub allows: Vec<Allow>,
}

/// True for bytes that can continue a Rust identifier.
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl Scrub {
    /// Scrub `src` (see module docs for what gets blanked and what
    /// gets collected).
    pub fn new(src: &str) -> Self {
        let bytes = src.as_bytes();
        let mut out = bytes.to_vec();
        let mut allows = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'\n' {
                        out[i] = b' ';
                        i += 1;
                    }
                    parse_allow(src, start, i, &mut allows);
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    let mut depth = 1usize;
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                            depth += 1;
                            out[i] = b' ';
                            out[i + 1] = b' ';
                            i += 2;
                        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                            depth -= 1;
                            out[i] = b' ';
                            out[i + 1] = b' ';
                            i += 2;
                        } else {
                            if bytes[i] != b'\n' {
                                out[i] = b' ';
                            }
                            i += 1;
                        }
                    }
                }
                // Raw (and raw byte) strings: r"..", r#".."#, br##".."##.
                b'r' | b'b' if !prev_is_ident(bytes, i) => {
                    let mut j = i;
                    if bytes[j] == b'b' && bytes.get(j + 1) == Some(&b'r') {
                        j += 1;
                    }
                    if bytes[j] == b'r' {
                        let mut hashes = 0usize;
                        let mut k = j + 1;
                        while bytes.get(k) == Some(&b'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if bytes.get(k) == Some(&b'"') {
                            i = blank_raw_string(bytes, &mut out, k + 1, hashes);
                            continue;
                        }
                    }
                    // `b"..."` byte string: normal escape rules.
                    if bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        i = blank_string(bytes, &mut out, i + 2);
                        continue;
                    }
                    i += 1;
                }
                b'"' => {
                    i = blank_string(bytes, &mut out, i + 1);
                }
                b'\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let next = bytes.get(i + 1).copied().unwrap_or(b' ');
                    let lifetime = (next.is_ascii_alphabetic() || next == b'_')
                        && bytes.get(i + 2) != Some(&b'\'');
                    if lifetime {
                        i += 2;
                        while i < bytes.len() && is_ident(bytes[i]) {
                            i += 1;
                        }
                    } else {
                        out[i] = b' ';
                        i += 1;
                        while i < bytes.len() {
                            match bytes[i] {
                                b'\\' => {
                                    out[i] = b' ';
                                    if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                        out[i + 1] = b' ';
                                    }
                                    i += 2;
                                }
                                b'\'' => {
                                    out[i] = b' ';
                                    i += 1;
                                    break;
                                }
                                b'\n' => break,
                                _ => {
                                    out[i] = b' ';
                                    i += 1;
                                }
                            }
                        }
                    }
                }
                _ => i += 1,
            }
        }

        // Any multi-byte characters left in code position (there are
        // none in this workspace, but fixtures may) are blanked so the
        // scrubbed buffer is valid single-byte ASCII for the rules.
        for b in &mut out {
            if !b.is_ascii() {
                *b = b' ';
            }
        }
        let text = String::from_utf8(out).unwrap_or_default();

        let mut line_starts = vec![0usize];
        for (at, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(at + 1);
            }
        }
        let mut scrub = Self { text, line_starts, test_lines: Vec::new(), allows };
        scrub.test_lines = scrub.mark_test_lines();
        scrub
    }

    /// 1-based line number of a byte offset into the scrubbed text.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// True when the (1-based) line belongs to a `#[cfg(test)]` or
    /// `#[test]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line.saturating_sub(1)).copied().unwrap_or(false)
    }

    /// True when an allow directive naming `rule` covers `line`: the
    /// directive sits on the flagged line itself (trailing comment) or
    /// in the comment directly above it — wrapped comment lines and
    /// blank lines between the directive and the code are skipped, so
    /// a multi-line justification still covers the next code line.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && (a.line == line
                    || (a.line < line && self.first_code_line_after(a.line) == Some(line)))
        })
    }

    /// The first line after `line` with any non-blank scrubbed content
    /// (comments and strings are blanked, so comment-only lines are
    /// skipped).
    fn first_code_line_after(&self, line: usize) -> Option<usize> {
        (line + 1..=self.line_starts.len()).find(|&l| {
            let start = self.line_starts[l - 1];
            let end = self.line_starts.get(l).copied().unwrap_or(self.text.len());
            self.text[start..end].bytes().any(|b| !b.is_ascii_whitespace())
        })
    }

    /// Mark the line span of every `#[cfg(test)]` / `#[test]` item.
    fn mark_test_lines(&self) -> Vec<bool> {
        let mut mask = vec![false; self.line_starts.len()];
        let b = self.text.as_bytes();
        for attr in ["#[cfg(test)]", "#[test]"] {
            let mut from = 0;
            while let Some(rel) = self.text.get(from..).and_then(|t| t.find(attr)) {
                let start = from + rel;
                from = start + attr.len();
                let end = self.item_end(start + attr.len());
                let (l0, l1) = (self.line_of(start), self.line_of(end.min(b.len().max(1) - 1)));
                for line in l0..=l1 {
                    if let Some(m) = mask.get_mut(line - 1) {
                        *m = true;
                    }
                }
            }
        }
        mask
    }

    /// Byte offset of the end of the item that starts after an
    /// attribute at `from`: further attributes are skipped, then the
    /// item runs to its matching close brace (or to the `;` of a
    /// braceless item).
    fn item_end(&self, mut from: usize) -> usize {
        let b = self.text.as_bytes();
        loop {
            while from < b.len() && (b[from] as char).is_whitespace() {
                from += 1;
            }
            if from < b.len() && b[from] == b'#' {
                // Another attribute: skip its bracketed body.
                let mut depth = 0usize;
                while from < b.len() {
                    match b[from] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                from += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    from += 1;
                }
                continue;
            }
            break;
        }
        // The item body: first `{` wins unless a `;` ends it earlier.
        while from < b.len() && b[from] != b'{' && b[from] != b';' {
            from += 1;
        }
        if from >= b.len() || b[from] == b';' {
            return from.min(b.len().saturating_sub(1));
        }
        let mut depth = 0usize;
        while from < b.len() {
            match b[from] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return from;
                    }
                }
                _ => {}
            }
            from += 1;
        }
        b.len().saturating_sub(1)
    }
}

/// True when the byte before `i` can continue an identifier (so the
/// byte at `i` is not the start of a token).
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident(bytes[i - 1])
}

/// Blank a plain/byte string starting just past its opening quote;
/// returns the offset just past the closing quote.
fn blank_string(bytes: &[u8], out: &mut [u8], mut i: usize) -> usize {
    if let Some(q) = out.get_mut(i - 1) {
        *q = b' ';
    }
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                out[i] = b' ';
                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                    out[i + 1] = b' ';
                }
                i += 2;
            }
            b'"' => {
                out[i] = b' ';
                return i + 1;
            }
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Blank a raw string with `hashes` trailing `#`s starting just past
/// its opening quote; returns the offset just past the terminator.
fn blank_raw_string(bytes: &[u8], out: &mut [u8], mut i: usize, hashes: usize) -> usize {
    if let Some(q) = out.get_mut(i - 1) {
        *q = b' ';
    }
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            for o in out.iter_mut().skip(i).take(1 + hashes) {
                *o = b' ';
            }
            return i + 1 + hashes;
        }
        if bytes[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
    }
    i
}

/// Parse an allow directive — rule id in parens, `: reason` after —
/// out of one comment.
fn parse_allow(src: &str, start: usize, end: usize, allows: &mut Vec<Allow>) {
    let comment = &src[start..end.min(src.len())];
    let Some(at) = comment.find("lint:allow(") else { return };
    let rest = &comment[at + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else { return };
    let rule = rest[..close].trim().to_string();
    // Only kebab-case ids are directives; prose like `lint:allow(...)`
    // in documentation is not.
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
        return;
    }
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
    let line = src[..start].bytes().filter(|&b| b == b'\n').count() + 1;
    allows.push(Allow { line, rule, has_reason });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = Scrub::new("let x = \"a.unwrap()\"; // c.unwrap()\nlet y = 1;");
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.contains("let x ="));
        assert!(s.text.contains("let y = 1;"));
        assert_eq!(s.text.len(), "let x = \"a.unwrap()\"; // c.unwrap()\nlet y = 1;".len());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_survive() {
        let s = Scrub::new("let r = r#\"x.unwrap()\"#; let c = '['; fn f<'a>(x: &'a u8) {}");
        assert!(!s.text.contains("unwrap"));
        assert!(!s.text.contains('['), "char literal content leaked: {}", s.text);
        assert!(s.text.contains("<'a>"));
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let s = Scrub::new("/* outer /* inner */ still */ let z = 2;");
        assert!(s.text.contains("let z = 2;"));
        assert!(!s.text.contains("outer"));
    }

    #[test]
    fn allows_are_collected_with_reasons() {
        let src = "// lint:allow(panic-free-decode): provably sized\nlet a = 1;\n// lint:allow(wall-clock)\nlet b = 2;\n";
        let s = Scrub::new(src);
        assert_eq!(s.allows.len(), 2);
        assert!(s.allows[0].has_reason && s.allows[0].rule == "panic-free-decode");
        assert!(!s.allows[1].has_reason && s.allows[1].rule == "wall-clock");
        assert!(s.allowed("panic-free-decode", 1));
        assert!(s.allowed("panic-free-decode", 2), "directive covers the next line");
        assert!(!s.allowed("panic-free-decode", 3));
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let s = Scrub::new(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2) && s.is_test_line(3) && s.is_test_line(4) && s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn test_attribute_functions_are_masked() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    boom();\n}\nfn b() {}\n";
        let s = Scrub::new(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(3) && s.is_test_line(4));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn line_of_is_one_based() {
        let s = Scrub::new("a\nb\nc\n");
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(4), 3);
    }
}
