//! `mda-lint` — a workspace-aware static analysis pass that enforces
//! the invariant disciplines at compile-review time.
//!
//! The datAcron architecture (EDBT'17) makes promises the Rust type
//! system cannot state: the crate DAG stays layered, decode paths
//! never panic on disk bytes, emission order is a pure function of the
//! event-time stream, nothing reads the wall clock, and locks nest in
//! shard order. Each promise lives in ARCHITECTURE.md as prose; this
//! crate makes them lexical. It is deliberately dependency-free — a
//! hand-rolled scrubbing lexer (comments, strings, raw strings,
//! char-vs-lifetime) plus per-rule pattern passes over the scrubbed
//! text — so it builds offline before anything else is trusted.
//!
//! Run it with `cargo run -p mda-lint -- --workspace` (or the
//! `cargo lint` alias). Findings are suppressed per line with
//! `// lint:allow(<rule-id>): <reason>` — the reason is mandatory and
//! audited by the `L0` meta-rule.

pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::Scrub;
use model::CrateModel;
use report::Finding;

/// Result of a workspace scan: the findings plus how many source
/// files were actually read (so self-tests can assert the walker did
/// not silently skip the world).
#[derive(Debug)]
pub struct ScanOutcome {
    /// All findings, sorted by (file, line, code).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Run every rule over one source file. `rel` is the workspace-
/// relative path with forward slashes; `krate` is the owning crate's
/// model (rules L2–L4 key off the path, L1 off the crate).
pub fn scan_source(krate: &CrateModel, rel: &str, src: &str) -> Vec<Finding> {
    let scrub = Scrub::new(src);
    let mut out = rules::check_allows(rel, &scrub);
    out.extend(rules::check_imports(krate, rel, &scrub));
    if model::DECODE_SURFACE.contains(&rel) {
        out.extend(rules::check_decode_surface(rel, &scrub));
    }
    if model::EMISSION_SURFACE.contains(&rel) {
        out.extend(rules::check_emission_surface(rel, &scrub));
    }
    out.extend(rules::check_wall_clock(rel, &scrub));
    out.extend(rules::check_lock_order(rel, &scrub));
    out
}

/// Run the manifest rule (L1) over one crate's `Cargo.toml` text.
pub fn scan_manifest(krate: &CrateModel, rel: &str, toml: &str) -> Vec<Finding> {
    rules::check_manifest(krate, toml, rel)
}

/// Collect `.rs` files under `dir` (recursively), sorted for
/// deterministic reports. Missing directories are fine (not every
/// crate has `tests/`); fixture trees are skipped — they are lint
/// counter-examples by design.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else { return Ok(()) };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan the crates listed in the workspace model (all of them, or the
/// single crate named by `only`) — manifests and every `.rs` file
/// under `src/`, `tests/`, `benches/` and `examples/`.
pub fn scan_workspace(root: &Path, only: Option<&str>) -> io::Result<ScanOutcome> {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for krate in model::CRATES {
        if only.is_some_and(|name| name != krate.name) {
            continue;
        }
        let dir = if krate.dir == "." { root.to_path_buf() } else { root.join(krate.dir) };
        let manifest = dir.join("Cargo.toml");
        if let Ok(toml) = fs::read_to_string(&manifest) {
            let rel = rel_path(root, &manifest);
            findings.extend(scan_manifest(krate, &rel, &toml));
        }
        let mut files = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(&dir.join(sub), &mut files)?;
        }
        for path in files {
            let rel = rel_path(root, &path);
            // The root facade's walk must not re-scan crates/* files.
            if krate.dir == "." && rel.starts_with("crates/") {
                continue;
            }
            let src = fs::read_to_string(&path)?;
            files_scanned += 1;
            findings.extend(scan_source(krate, &rel, &src));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    Ok(ScanOutcome { findings, files_scanned })
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_routes_by_surface() {
        let krate = model::crate_model("mda-store").unwrap();
        // In the decode surface: unwrap is a finding.
        let f = scan_source(krate, "crates/store/src/frame.rs", "fn f() { x.unwrap(); }\n");
        assert!(f.iter().any(|f| f.id == "panic-free-decode"), "{f:?}");
        // Outside it: the same text is clean.
        let f = scan_source(krate, "crates/store/src/lib.rs", "fn f() { x.unwrap(); }\n");
        assert!(f.iter().all(|f| f.id != "panic-free-decode"), "{f:?}");
    }

    #[test]
    fn rel_path_uses_forward_slashes() {
        let root = Path::new("/w");
        assert_eq!(rel_path(root, Path::new("/w/crates/geo/src/lib.rs")), "crates/geo/src/lib.rs");
    }
}
