//! CLI entry point for `mda-lint`.
//!
//! ```text
//! cargo run -p mda-lint -- --workspace            # scan everything (default)
//! cargo run -p mda-lint -- --crate mda-store      # one crate only
//! cargo run -p mda-lint -- --format json          # machine-readable report
//! cargo run -p mda-lint -- --list-rules           # rule table
//! ```
//!
//! Exit status is 1 when findings exist, 2 on usage/IO errors, 0 when
//! the scanned surface is clean.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "mda-lint: workspace-aware invariant-discipline linter\n\
     \n\
     USAGE: mda-lint [--workspace | --crate <name>] [--format human|json]\n\
     \t[--root <dir>] [--list-rules]\n\
     \n\
     \t--workspace      scan every crate in the model (default)\n\
     \t--crate <name>   scan a single crate (e.g. mda-store)\n\
     \t--format <fmt>   human (default) or json (one object per line)\n\
     \t--root <dir>     workspace root (default: walk up from cwd)\n\
     \t--list-rules     print the rule table and exit\n\
     \n\
     Suppress one finding with `// lint:allow(<rule-id>): <reason>` on\n\
     the offending line or the line above; reasons are mandatory (L0)."
}

fn main() -> ExitCode {
    let mut format_json = false;
    let mut only: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => only = None,
            "--crate" => match args.next() {
                Some(name) => only = Some(name),
                None => return fail("--crate needs a crate name"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format_json = false,
                Some("json") => format_json = true,
                _ => return fail("--format must be `human` or `json`"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return fail("--root needs a directory"),
            },
            "--list-rules" => {
                for r in mda_lint::rules::RULES {
                    println!("{}  {:<26} {}", r.code, r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}` (try --help)")),
        }
    }

    if let Some(name) = &only {
        if mda_lint::model::crate_model(name).is_none() {
            return fail(&format!("unknown crate `{name}` — not in the workspace model"));
        }
    }

    let root = match root
        .or_else(|| std::env::current_dir().ok().and_then(|d| mda_lint::find_workspace_root(&d)))
    {
        Some(r) => r,
        None => return fail("could not locate the workspace root (try --root <dir>)"),
    };

    let outcome = match mda_lint::scan_workspace(&root, only.as_deref()) {
        Ok(o) => o,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };

    for f in &outcome.findings {
        if format_json {
            println!("{}", f.json());
        } else {
            println!("{}", f.human());
        }
    }
    if !format_json {
        println!(
            "mda-lint: {} finding(s) across {} file(s)",
            outcome.findings.len(),
            outcome.files_scanned
        );
    }
    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("mda-lint: {msg}");
    ExitCode::from(2)
}
