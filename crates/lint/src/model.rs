//! The workspace model: the crate DAG and the per-rule surfaces,
//! encoded once as data (the CRTS idea — recommendations become a
//! machine-checked representation, not prose in a document).
//!
//! ARCHITECTURE.md's crate-DAG diagram is *derived from* this table;
//! when a layering decision changes, this file is the thing a PR
//! edits, and the change is visible in review as a one-line diff.

/// One workspace crate and the `mda-*` crates it may depend on.
#[derive(Debug, Clone, Copy)]
pub struct CrateModel {
    /// Package name (`mda-geo`, ...; `maritime` is the root facade).
    pub name: &'static str,
    /// Directory relative to the workspace root.
    pub dir: &'static str,
    /// The full set of `mda-*` dependencies this crate may use, in
    /// `[dependencies]`, `[dev-dependencies]` or source imports.
    pub deps: &'static [&'static str],
}

/// Every crate in the documented DAG, bottom-up. `mda-geo` is the
/// shared vocabulary at the bottom and must stay leaf-side of
/// everything; `mda-core` integrates the twelve library crates;
/// `mda-bench` may additionally see `mda-core`; `mda-lint` sees
/// nothing (it lints the others and must not be entangled with them).
pub const CRATES: &[CrateModel] = &[
    CrateModel { name: "mda-geo", dir: "crates/geo", deps: &[] },
    CrateModel { name: "mda-uncertainty", dir: "crates/uncertainty", deps: &[] },
    CrateModel { name: "mda-ais", dir: "crates/ais", deps: &["mda-geo"] },
    CrateModel { name: "mda-sim", dir: "crates/sim", deps: &["mda-geo", "mda-ais"] },
    CrateModel { name: "mda-stream", dir: "crates/stream", deps: &["mda-geo"] },
    CrateModel { name: "mda-synopses", dir: "crates/synopses", deps: &["mda-geo"] },
    CrateModel { name: "mda-track", dir: "crates/track", deps: &["mda-geo"] },
    CrateModel { name: "mda-forecast", dir: "crates/forecast", deps: &["mda-geo"] },
    CrateModel { name: "mda-viz", dir: "crates/viz", deps: &["mda-geo"] },
    CrateModel { name: "mda-events", dir: "crates/events", deps: &["mda-geo", "mda-stream"] },
    CrateModel { name: "mda-semantics", dir: "crates/semantics", deps: &["mda-geo", "mda-ais"] },
    CrateModel { name: "mda-store", dir: "crates/store", deps: &["mda-geo", "mda-synopses"] },
    CrateModel {
        name: "mda-core",
        dir: "crates/core",
        deps: &[
            "mda-geo",
            "mda-ais",
            "mda-sim",
            "mda-stream",
            "mda-synopses",
            "mda-track",
            "mda-uncertainty",
            "mda-events",
            "mda-semantics",
            "mda-store",
            "mda-forecast",
            "mda-viz",
        ],
    },
    CrateModel {
        name: "mda-serve",
        dir: "crates/serve",
        deps: &["mda-geo", "mda-sim", "mda-events", "mda-store", "mda-forecast", "mda-core"],
    },
    CrateModel {
        name: "mda-bench",
        dir: "crates/bench",
        deps: &[
            "mda-geo",
            "mda-ais",
            "mda-sim",
            "mda-stream",
            "mda-synopses",
            "mda-track",
            "mda-uncertainty",
            "mda-events",
            "mda-semantics",
            "mda-store",
            "mda-forecast",
            "mda-viz",
            "mda-core",
            "mda-serve",
        ],
    },
    CrateModel { name: "mda-lint", dir: "crates/lint", deps: &[] },
    CrateModel {
        name: "maritime",
        dir: ".",
        deps: &[
            "mda-geo",
            "mda-ais",
            "mda-sim",
            "mda-stream",
            "mda-synopses",
            "mda-track",
            "mda-uncertainty",
            "mda-events",
            "mda-semantics",
            "mda-store",
            "mda-forecast",
            "mda-viz",
            "mda-core",
            "mda-serve",
        ],
    },
];

/// Look a crate's model up by package name.
pub fn crate_model(name: &str) -> Option<&'static CrateModel> {
    CRATES.iter().find(|c| c.name == name)
}

/// The fallible decode surface of rule L2 (`panic-free-decode`):
/// every module whose input can be raw bytes off disk or off a
/// socket. The corruption batteries (PR 7 for disk, PR 10 for the
/// wire) promise no panic is reachable from untrusted bytes; these are
/// the files those promises rest on.
pub const DECODE_SURFACE: &[&str] = &[
    "crates/store/src/segment.rs",
    "crates/store/src/frame.rs",
    "crates/store/src/bytes.rs",
    "crates/store/src/wal.rs",
    "crates/store/src/manifest.rs",
    "crates/store/src/durable.rs",
    "crates/geo/src/codec.rs",
    "crates/serve/src/frame.rs",
    "crates/serve/src/wire.rs",
];

/// The emission/merge surface of rule L3 (`deterministic-iteration`):
/// modules whose output order is an observable (event emission, cross-
/// shard merges, snapshot publication, triple-store answers). Direct
/// `HashMap`/`HashSet` iteration here must be immediately sorted, fed
/// through `canonical_sort`, or into an order-insensitive sink.
pub const EMISSION_SURFACE: &[&str] = &[
    "crates/events/src/engine.rs",
    "crates/events/src/proximity.rs",
    "crates/events/src/ring.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/multi.rs",
    "crates/core/src/query.rs",
    "crates/semantics/src/store.rs",
    "crates/semantics/src/query.rs",
    "crates/semantics/src/link.rs",
];

/// Path prefixes exempt from rule L4 (`wall-clock`): the bench
/// harness and its CI drivers time wall-clock by design. Everything
/// else must be a pure function of event time.
pub const WALL_CLOCK_EXEMPT: &[&str] = &["crates/bench/"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_is_acyclic_and_closed() {
        // Every named dependency exists, and following edges from any
        // crate terminates (the table is listed bottom-up, so a simple
        // index check proves acyclicity).
        for (i, c) in CRATES.iter().enumerate() {
            for d in c.deps {
                let j = CRATES.iter().position(|x| x.name == *d);
                let j = j.unwrap_or_else(|| panic!("{} depends on unknown {d}", c.name));
                assert!(j < i, "{} must be listed after its dependency {d}", c.name);
            }
        }
    }

    #[test]
    fn geo_is_leaf_side_of_store() {
        assert!(crate_model("mda-geo").unwrap().deps.is_empty());
        assert!(crate_model("mda-store").unwrap().deps.contains(&"mda-geo"));
    }
}
