//! Findings and their human/machine renderings.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Short rule code (`L1`..`L5`, `L0` for the allow meta-rule).
    pub code: &'static str,
    /// Stable kebab-case rule id (what `lint:allow(...)` names).
    pub id: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what the discipline demands instead.
    pub msg: String,
}

impl Finding {
    /// `path:line: [L2 panic-free-decode] message` — the clickable
    /// human rendering.
    pub fn human(&self) -> String {
        format!("{}:{}: [{} {}] {}", self.file, self.line, self.code, self.id, self.msg)
    }

    /// One self-contained JSON object (the machine-readable report is
    /// one such object per line).
    pub fn json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\"}}",
            esc(self.code),
            esc(self.id),
            esc(&self.file),
            self.line,
            esc(&self.msg)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_are_stable() {
        let f = Finding {
            code: "L2",
            id: "panic-free-decode",
            file: "crates/store/src/wal.rs".into(),
            line: 7,
            msg: "\"unwrap\" in the fallible decode surface".into(),
        };
        assert_eq!(
            f.human(),
            "crates/store/src/wal.rs:7: [L2 panic-free-decode] \"unwrap\" in the fallible decode surface"
        );
        assert!(f.json().starts_with("{\"code\":\"L2\""));
        assert!(f.json().contains("\\\"unwrap\\\""), "quotes must be escaped: {}", f.json());
    }
}
