//! The five invariant-discipline rules (plus the `L0` meta-rule that
//! audits `lint:allow` escapes themselves).
//!
//! Every rule works on a [`Scrub`]bed file: comments and strings are
//! already blanked, `#[cfg(test)]` / `#[test]` items are masked (test
//! batteries may panic on known-good data), and per-line
//! `lint:allow(<id>): <reason>` escapes suppress a finding on their
//! own line or the line directly below.

use crate::lexer::Scrub;
use crate::model::{self, CrateModel};
use crate::report::Finding;

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Short code (`L0`..`L5`).
    pub code: &'static str,
    /// Stable kebab-case id — what `lint:allow(...)` must name.
    pub id: &'static str,
    /// One-line summary of the discipline the rule enforces.
    pub summary: &'static str,
}

/// Every rule the pass runs, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "L0",
        id: "allow-audit",
        summary: "every lint:allow names a known rule and carries a `: <reason>` justification",
    },
    RuleInfo {
        code: "L1",
        id: "crate-dag",
        summary: "Cargo.toml dependencies and `use mda_*` imports must follow the documented DAG",
    },
    RuleInfo {
        code: "L2",
        id: "panic-free-decode",
        summary:
            "no unwrap/expect/panic!/assert!/non-literal indexing in the fallible decode surface",
    },
    RuleInfo {
        code: "L3",
        id: "deterministic-iteration",
        summary:
            "no raw HashMap/HashSet iteration in emission/merge paths unless immediately sorted",
    },
    RuleInfo {
        code: "L4",
        id: "wall-clock",
        summary: "Instant::now/SystemTime::now banned outside mda-bench (event-time purity)",
    },
    RuleInfo {
        code: "L5",
        id: "lock-order",
        summary: "no lock acquisition while another guard is lexically held, unless shard-ordered",
    },
];

/// True for bytes that can continue a Rust identifier.
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Push a finding unless its line is test code or carries an allow.
fn push(
    out: &mut Vec<Finding>,
    scrub: &Scrub,
    code: &'static str,
    id: &'static str,
    file: &str,
    line: usize,
    msg: String,
) {
    if scrub.is_test_line(line) || scrub.allowed(id, line) {
        return;
    }
    out.push(Finding { code, id, file: file.to_string(), line, msg });
}

/// Iterate the byte offsets where `needle` occurs in `text` as a whole
/// token (not embedded in a longer identifier on either side).
fn token_positions<'a>(text: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = text.as_bytes();
    let first = needle.as_bytes().first().copied().unwrap_or(b' ');
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(rel) = text.get(from..).and_then(|t| t.find(needle)) {
            let at = from + rel;
            from = at + 1;
            let lead = first;
            let prev_ok = at == 0 || !(is_ident(bytes[at - 1]) && is_ident(lead));
            let end = at + needle.len();
            let next_ok = end >= bytes.len() || !is_ident(bytes[end]) || !is_ident(bytes[end - 1]);
            if prev_ok && next_ok {
                return Some(at);
            }
        }
        None
    })
}

// ---------------------------------------------------------------------------
// L0 — allow audit

/// Audit the file's `lint:allow` directives: unknown rule ids and
/// missing justifications are findings themselves (an escape without a
/// reason is a violation of the escape discipline).
pub fn check_allows(file: &str, scrub: &Scrub) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in &scrub.allows {
        if !RULES.iter().any(|r| r.id == a.rule) {
            out.push(Finding {
                code: "L0",
                id: "allow-audit",
                file: file.to_string(),
                line: a.line,
                msg: format!("lint:allow names unknown rule id `{}`", a.rule),
            });
        } else if !a.has_reason {
            out.push(Finding {
                code: "L0",
                id: "allow-audit",
                file: file.to_string(),
                line: a.line,
                msg: format!(
                    "lint:allow({}) without a `: <reason>` justification (allows must say why)",
                    a.rule
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L1 — crate-DAG layering

/// Check one crate's `Cargo.toml` for `mda-*` dependency edges that
/// are not in the documented DAG.
pub fn check_manifest(krate: &CrateModel, toml: &str, file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]" || line == "[dev-dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(name) = line.split(['=', ' ', '\t']).next() else { continue };
        if name.starts_with("mda-") && name != krate.name && !krate.deps.contains(&name) {
            out.push(Finding {
                code: "L1",
                id: "crate-dag",
                file: file.to_string(),
                line: idx + 1,
                msg: format!(
                    "`{}` may not depend on `{name}`: the documented crate DAG keeps {} {}",
                    krate.name, name, "leaf-side of it (see ARCHITECTURE.md and mda-lint's model)"
                ),
            });
        }
    }
    out
}

/// Check one source file for `mda_*` imports outside the crate's
/// allowed dependency set.
pub fn check_imports(krate: &CrateModel, file: &str, scrub: &Scrub) -> Vec<Finding> {
    let mut out = Vec::new();
    let text = &scrub.text;
    let bytes = text.as_bytes();
    // Prefix search: `mda_` must start an identifier but the crate
    // name continues past it, so token_positions (whole-token only)
    // does not apply here.
    let mut from = 0usize;
    while let Some(rel) = text.get(from..).and_then(|t| t.find("mda_")) {
        let at = from + rel;
        from = at + 4;
        if at > 0 && is_ident(bytes[at - 1]) {
            continue;
        }
        let mut end = at + 4;
        while end < bytes.len() && is_ident(bytes[end]) {
            end += 1;
        }
        // Only crate *paths* count (`mda_geo::...`); a local symbol
        // that merely starts with `mda_` is not an import.
        if !text[end..].starts_with("::") {
            continue;
        }
        let dep = format!("mda-{}", &text[at + 4..end].replace('_', "-"));
        if dep == krate.name || dep == "mda-" {
            continue;
        }
        if !krate.deps.contains(&dep.as_str()) {
            let line = scrub.line_of(at);
            push(
                &mut out,
                scrub,
                "L1",
                "crate-dag",
                file,
                line,
                format!(
                    "`{}` imports `{dep}` but the documented crate DAG allows only {:?}",
                    krate.name, krate.deps
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L2 — panic-free decode surface

/// Rust keywords that can directly precede a non-indexing `[` (slice
/// patterns, array literals after `=`/`in`, etc.).
const KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break", "continue",
    "where", "dyn", "impl", "for", "loop", "while", "static", "const", "enum", "struct", "fn",
    "pub", "use", "crate", "self", "super", "type", "box", "yield",
];

/// Check a decode-surface file: no `unwrap`/`expect`, no panicking
/// macros, no slice/array indexing with a non-literal index. Decoding
/// untrusted disk bytes must surface `CodecError`/`Option`, never a
/// panic (the PR 7 corruption battery's promise, made lexical).
pub fn check_decode_surface(file: &str, scrub: &Scrub) -> Vec<Finding> {
    let mut out = Vec::new();
    let text = &scrub.text;
    let bytes = text.as_bytes();
    const ID: &str = "panic-free-decode";

    for method in ["unwrap", "expect"] {
        for at in token_positions(text, method) {
            if at == 0 || bytes[at - 1] != b'.' {
                continue;
            }
            let mut k = at + method.len();
            while k < bytes.len() && bytes[k] == b' ' {
                k += 1;
            }
            if bytes.get(k) != Some(&b'(') {
                continue;
            }
            let line = scrub.line_of(at);
            push(
                &mut out,
                scrub,
                "L2",
                ID,
                file,
                line,
                format!("`.{method}()` in the fallible decode surface — return a CodecError (or justify infallibility with lint:allow)"),
            );
        }
    }

    for mac in
        ["panic!", "unreachable!", "todo!", "unimplemented!", "assert!", "assert_eq!", "assert_ne!"]
    {
        for at in token_positions(text, mac) {
            let line = scrub.line_of(at);
            push(
                &mut out,
                scrub,
                "L2",
                ID,
                file,
                line,
                format!("`{mac}` can panic on disk bytes — decode paths must degrade to an error (debug_assert! is exempt)"),
            );
        }
    }

    // Non-literal indexing: `expr[...]` where the index is not a pure
    // numeric literal or literal range. `buf.get(..)` is the
    // panic-free alternative; provably-in-bounds sites take an allow.
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'[' {
            i += 1;
            continue;
        }
        let open = i;
        i += 1;
        let mut j = open;
        while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b'\n') {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let p = bytes[j - 1];
        if !(is_ident(p) || p == b')' || p == b']') {
            continue;
        }
        if is_ident(p) {
            let mut w = j - 1;
            while w > 0 && is_ident(bytes[w - 1]) {
                w -= 1;
            }
            if KEYWORDS.contains(&&text[w..j]) {
                continue;
            }
            // A lifetime before a slice type (`&'a [u8]`) is not an
            // indexing expression.
            if w > 0 && bytes[w - 1] == b'\'' {
                continue;
            }
        }
        let mut depth = 1usize;
        let mut k = open + 1;
        while k < bytes.len() && depth > 0 {
            match bytes[k] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let content = &text[open + 1..k.saturating_sub(1).max(open + 1)];
        let literal_only = !content.trim().is_empty()
            && content.bytes().all(|c| matches!(c, b'0'..=b'9' | b'.' | b'_' | b' ' | b'\n'))
            || content.trim().chars().all(|c| c == '.') && !content.trim().is_empty();
        if literal_only {
            continue;
        }
        let line = scrub.line_of(open);
        push(
            &mut out,
            scrub,
            "L2",
            ID,
            file,
            line,
            format!(
                "non-literal indexing `[{}]` in the decode surface — use .get(..) or justify bounds with lint:allow",
                content.trim()
            ),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// L3 — deterministic iteration in emission/merge paths

/// Sinks that make raw map iteration order-insensitive: the result is
/// sorted (or canonically sorted) right away, reduced commutatively,
/// or collected back into an unordered container.
const ORDER_SINKS: &[&str] = &[
    "sort", // sort_unstable / sort_by / canonical_sort all contain it
    ".sum",
    ".count()",
    ".len()",
    ".min",
    ".max",
    ".any(",
    ".all(",
    ".contains",
    ".is_empty",
    "collect::<HashSet",
    "collect::<HashMap",
    "BTree",
];

/// How far past the iteration call the rule looks for an
/// order-restoring sink ("immediately sorted" ≈ the same or the next
/// statement).
const SINK_WINDOW: usize = 300;

/// Identify names declared as `HashMap`/`HashSet` in this file
/// (bindings, struct fields, fn params, type aliases), sorted.
fn map_names(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut names = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for at in token_positions(text, ty) {
            // Walk back over whitespace, `&`, and `mut` to the
            // declaration punctuation.
            let mut j = at;
            loop {
                while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b'\n') {
                    j -= 1;
                }
                if j >= 1 && bytes[j - 1] == b'&' {
                    j -= 1;
                    continue;
                }
                if j >= 3 && &text[j - 3..j] == "mut" && (j == 3 || !is_ident(bytes[j - 4])) {
                    j -= 3;
                    continue;
                }
                break;
            }
            if j == 0 {
                continue;
            }
            let punct = bytes[j - 1];
            if punct != b':' && punct != b'=' {
                continue;
            }
            let mut w = j - 1;
            // `::` path position (e.g. `std::collections::HashMap`) is
            // not a declaration.
            if punct == b':' && w >= 1 && bytes[w - 1] == b':' {
                continue;
            }
            while w > 0 && (bytes[w - 1] == b' ' || bytes[w - 1] == b'\n') {
                w -= 1;
            }
            // `-> HashMap` / `>= HashMap` / `== HashMap`: no name.
            if punct == b'=' && w >= 1 && matches!(bytes[w - 1], b'>' | b'<' | b'=' | b'!') {
                continue;
            }
            let end = w;
            while w > 0 && is_ident(bytes[w - 1]) {
                w -= 1;
            }
            let name = &text[w..end];
            if !name.is_empty() && !KEYWORDS.contains(&name) {
                names.push(name.to_string());
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Last path segment of the dotted receiver ending at `end`
/// (exclusive): for `self.latest.` this is `latest`.
fn receiver_last_segment(text: &str, end: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut start = end;
    while start > 0 && (is_ident(bytes[start - 1]) || bytes[start - 1] == b'.') {
        start -= 1;
    }
    let path = &text[start..end];
    let last = path.rsplit('.').next().unwrap_or("");
    (!last.is_empty() && last.bytes().all(is_ident)).then_some(last)
}

/// True when an order-restoring sink appears shortly after `at`.
fn sink_follows(text: &str, at: usize) -> bool {
    let window = &text[at..text.len().min(at + SINK_WINDOW)];
    ORDER_SINKS.iter().any(|s| window.contains(s))
}

/// Check an emission/merge file: direct `HashMap`/`HashSet` iteration
/// must be immediately sorted or fed to an order-insensitive sink —
/// the `LiveIndex::neighbours` bug class (PR 2) made lexical.
pub fn check_emission_surface(file: &str, scrub: &Scrub) -> Vec<Finding> {
    let mut out = Vec::new();
    let text = &scrub.text;
    let bytes = text.as_bytes();
    const ID: &str = "deterministic-iteration";
    let names = map_names(text);
    if names.is_empty() {
        return out;
    }
    let named = |s: &str| names.iter().any(|n| n == s);

    const ITERS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
        "into_keys",
        "into_values",
    ];
    for method in ITERS {
        for at in token_positions(text, method) {
            if at == 0 || bytes[at - 1] != b'.' {
                continue;
            }
            let mut k = at + method.len();
            while k < bytes.len() && bytes[k] == b' ' {
                k += 1;
            }
            if bytes.get(k) != Some(&b'(') {
                continue;
            }
            let Some(recv) = receiver_last_segment(text, at - 1) else { continue };
            if !named(recv) || sink_follows(text, at) {
                continue;
            }
            let line = scrub.line_of(at);
            push(
                &mut out,
                scrub,
                "L3",
                ID,
                file,
                line,
                format!(
                    "`{recv}.{method}()` iterates a HashMap/HashSet in an emission/merge path without an immediate sort — emission order must be a pure function of the event-time stream"
                ),
            );
        }
    }

    // `for x in &map { ... }` consuming/borrowing loops.
    for at in token_positions(text, "in") {
        // Must be a `for ... in` (not `impl`, generics, etc.).
        let stmt_start = text[..at].rfind(['{', '}', ';']).map_or(0, |p| p + 1);
        if !token_positions(&text[stmt_start..at], "for").any(|_| true) {
            continue;
        }
        let mut k = at + 2;
        while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\n') {
            k += 1;
        }
        while k < bytes.len() && (bytes[k] == b'&' || bytes[k] == b' ') {
            k += 1;
        }
        if text[k..].starts_with("mut ") {
            k += 4;
        }
        let expr_start = k;
        while k < bytes.len() && (is_ident(bytes[k]) || bytes[k] == b'.') {
            k += 1;
        }
        // A pure path expression only (method calls are handled above).
        let mut w = k;
        while w < bytes.len() && bytes[w] == b' ' {
            w += 1;
        }
        if bytes.get(w) != Some(&b'{') {
            continue;
        }
        let Some(recv) = receiver_last_segment(text, k) else { continue };
        let _ = expr_start;
        if !named(recv) || sink_follows(text, k) {
            continue;
        }
        let line = scrub.line_of(at);
        push(
            &mut out,
            scrub,
            "L3",
            ID,
            file,
            line,
            format!(
                "`for … in {recv}` iterates a HashMap/HashSet in an emission/merge path without an immediate sort"
            ),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// L4 — no wall clock in deterministic paths

/// Check any non-bench file for wall-clock reads: every pipeline
/// observable must be a pure function of event time, so
/// `Instant::now`/`SystemTime::now` are banned outside `mda-bench`
/// (metrics-only sites take a justified allow).
pub fn check_wall_clock(file: &str, scrub: &Scrub) -> Vec<Finding> {
    let mut out = Vec::new();
    if model::WALL_CLOCK_EXEMPT.iter().any(|p| file.starts_with(p)) {
        return out;
    }
    for tok in ["Instant::now", "SystemTime::now"] {
        for at in token_positions(&scrub.text, tok) {
            let line = scrub.line_of(at);
            push(
                &mut out,
                scrub,
                "L4",
                "wall-clock",
                file,
                line,
                format!(
                    "`{tok}` outside mda-bench — deterministic paths are pure functions of event time (metrics-only use needs lint:allow)"
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L5 — lock-order discipline

/// Check a file for nested lock acquisitions: taking `.lock()` /
/// `.read()` / `.write()` while an earlier guard is still lexically
/// held is the deadlock class the `TickBarrier` design exists to
/// avoid; shard-index-ordered acquisition takes a justified allow.
pub fn check_lock_order(file: &str, scrub: &Scrub) -> Vec<Finding> {
    let mut out = Vec::new();
    let text = &scrub.text;
    let bytes = text.as_bytes();
    const ID: &str = "lock-order";

    // Zero-argument acquisition sites, in order.
    let mut acquisitions: Vec<usize> = Vec::new();
    for method in ["lock", "read", "write"] {
        for at in token_positions(text, method) {
            if at == 0 || bytes[at - 1] != b'.' {
                continue;
            }
            let mut k = at + method.len();
            if bytes.get(k) != Some(&b'(') {
                continue;
            }
            k += 1;
            while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\n') {
                k += 1;
            }
            if bytes.get(k) == Some(&b')') {
                acquisitions.push(at);
            }
        }
    }
    acquisitions.sort_unstable();

    let mut ai = 0usize;
    let mut depth = 0usize;
    let mut let_guards: Vec<usize> = Vec::new();
    let mut temp_guard = false;
    let mut stmt_start = 0usize;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                temp_guard = false;
                stmt_start = i + 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                while let_guards.last().is_some_and(|&d| depth < d) {
                    let_guards.pop();
                }
                temp_guard = false;
                stmt_start = i + 1;
            }
            b';' => {
                temp_guard = false;
                stmt_start = i + 1;
            }
            _ => {}
        }
        if ai < acquisitions.len() && acquisitions[ai] == i {
            ai += 1;
            if !let_guards.is_empty() || temp_guard {
                let line = scrub.line_of(i);
                push(
                    &mut out,
                    scrub,
                    "L5",
                    ID,
                    file,
                    line,
                    "nested lock acquisition while an earlier guard is still held — order by shard index (and justify with lint:allow) or split the scopes".to_string(),
                );
            }
            let stmt = &text[stmt_start..i];
            if token_positions(stmt, "let").next().is_some() {
                let_guards.push(depth);
            } else {
                temp_guard = true;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrubbed(src: &str) -> Scrub {
        Scrub::new(src)
    }

    #[test]
    fn token_positions_respect_boundaries() {
        let hits: Vec<usize> = token_positions("unwrap unwrap_or x.unwrap()", "unwrap").collect();
        // `unwrap_or` must not match.
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn map_names_finds_fields_bindings_and_params() {
        let s = scrubbed(
            "struct S { counts: HashMap<u32, u64> }\nfn f(gone: &HashSet<u32>) { let mut cells: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        let names = map_names(&s.text);
        assert_eq!(names, vec!["cells", "counts", "gone"]);
    }

    #[test]
    fn use_statement_declares_no_names() {
        let s = scrubbed("use std::collections::{HashMap, HashSet};\n");
        assert!(map_names(&s.text).is_empty());
    }
}
