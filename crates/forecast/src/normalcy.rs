//! Pattern-of-life normalcy models and anomaly scoring.
//!
//! §4: "an explicit consideration of context provides an understanding
//! of normalcy as a reference for anomaly detection (i.e.
//! pattern-of-life)". The model learns per-cell speed statistics
//! (Welford mean/variance) and heading concentration from history;
//! scoring a live fix combines a speed z-score, a heading deviation
//! term, and an unvisited-cell penalty.

use mda_geo::units::heading_delta;
use mda_geo::{BoundingBox, Fix, Position};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-cell running statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct CellNorm {
    count: u64,
    mean_speed: f64,
    m2_speed: f64,
    sin_sum: f64,
    cos_sum: f64,
}

impl CellNorm {
    fn add(&mut self, sog_kn: f64, cog_deg: f64) {
        self.count += 1;
        let delta = sog_kn - self.mean_speed;
        self.mean_speed += delta / self.count as f64;
        self.m2_speed += delta * (sog_kn - self.mean_speed);
        self.sin_sum += cog_deg.to_radians().sin();
        self.cos_sum += cog_deg.to_radians().cos();
    }

    fn speed_std(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        (self.m2_speed / (self.count - 1) as f64).sqrt()
    }

    fn mean_course_deg(&self) -> f64 {
        mda_geo::units::norm_deg_360(self.sin_sum.atan2(self.cos_sum).to_degrees())
    }

    fn course_concentration(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sin_sum.hypot(self.cos_sum) / self.count as f64
    }
}

/// An anomaly assessment of one fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyScore {
    /// Combined score (0 ≈ normal; ≥ 1 clearly anomalous).
    pub score: f64,
    /// Speed deviation component (z-score based).
    pub speed_component: f64,
    /// Heading deviation component.
    pub heading_component: f64,
    /// True if the cell had no (or almost no) historical traffic.
    pub unseen_cell: bool,
}

/// A learned pattern-of-life model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormalcyModel {
    bounds: BoundingBox,
    cell_deg: f64,
    cells: HashMap<(i32, i32), CellNorm>,
    min_count: u64,
}

impl NormalcyModel {
    /// New empty model over `bounds`.
    pub fn new(bounds: BoundingBox, cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0);
        Self { bounds, cell_deg, cells: HashMap::new(), min_count: 10 }
    }

    fn cell_of(&self, p: Position) -> (i32, i32) {
        (
            ((p.lat - self.bounds.min_lat) / self.cell_deg).floor() as i32,
            ((p.lon - self.bounds.min_lon) / self.cell_deg).floor() as i32,
        )
    }

    /// Learn one fix.
    pub fn learn(&mut self, fix: &Fix) {
        self.cells.entry(self.cell_of(fix.pos)).or_default().add(fix.sog_kn, fix.cog_deg);
    }

    /// Learn a whole history.
    pub fn learn_all<'a>(&mut self, fixes: impl IntoIterator<Item = &'a Fix>) {
        for f in fixes {
            self.learn(f);
        }
    }

    /// Number of cells with history.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Score one fix against the learned normalcy.
    pub fn score(&self, fix: &Fix) -> AnomalyScore {
        let Some(cell) = self.cells.get(&self.cell_of(fix.pos)) else {
            return AnomalyScore {
                score: 1.5,
                speed_component: 0.0,
                heading_component: 0.0,
                unseen_cell: true,
            };
        };
        if cell.count < self.min_count {
            return AnomalyScore {
                score: 1.0,
                speed_component: 0.0,
                heading_component: 0.0,
                unseen_cell: true,
            };
        }
        // Speed z-score, squashed: z of 3 → component ~1.
        let std = cell.speed_std().max(0.5);
        let z = (fix.sog_kn - cell.mean_speed).abs() / std;
        let speed_component = (z / 3.0).min(2.0);
        // Heading deviation, weighted by how directional the cell is
        // (an anchorage has no meaningful mean course).
        let conc = cell.course_concentration();
        let dev = heading_delta(cell.mean_course_deg(), fix.cog_deg);
        let heading_component = conc * (dev / 90.0).min(2.0);
        AnomalyScore {
            score: 0.6 * speed_component + 0.4 * heading_component,
            speed_component,
            heading_component,
            unseen_cell: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::Timestamp;

    fn bounds() -> BoundingBox {
        BoundingBox::new(42.0, 4.0, 44.0, 6.0)
    }

    fn lane_traffic() -> Vec<Fix> {
        // Eastbound lane at ~12 kn along lat 43.0.
        let mut out = Vec::new();
        for v in 0..20u32 {
            for i in 0..50 {
                out.push(Fix::new(
                    v + 1,
                    Timestamp::from_mins(i),
                    Position::new(43.0 + (v % 3) as f64 * 0.01, 4.2 + i as f64 * 0.02),
                    11.0 + (v % 5) as f64 * 0.5,
                    90.0 + (i % 7) as f64 - 3.0,
                ));
            }
        }
        out
    }

    fn model() -> NormalcyModel {
        let mut m = NormalcyModel::new(bounds(), 0.05);
        m.learn_all(&lane_traffic());
        m
    }

    #[test]
    fn normal_traffic_scores_low() {
        let m = model();
        let f = Fix::new(99, Timestamp::from_mins(0), Position::new(43.0, 4.5), 12.0, 90.0);
        let s = m.score(&f);
        assert!(!s.unseen_cell);
        assert!(s.score < 0.3, "score {}", s.score);
    }

    #[test]
    fn wrong_way_traffic_scores_high() {
        let m = model();
        let f = Fix::new(99, Timestamp::from_mins(0), Position::new(43.0, 4.5), 12.0, 270.0);
        let s = m.score(&f);
        assert!(s.heading_component > 0.5, "heading {}", s.heading_component);
        assert!(s.score > 0.3, "score {}", s.score);
    }

    #[test]
    fn abnormal_speed_scores_high() {
        let m = model();
        let f = Fix::new(99, Timestamp::from_mins(0), Position::new(43.0, 4.5), 1.0, 90.0);
        let s = m.score(&f);
        assert!(s.speed_component > 0.8, "speed comp {}", s.speed_component);
        // A stopped vessel in a transit lane is exactly the §4 anomaly.
        assert!(s.score > 0.5);
    }

    #[test]
    fn unseen_cell_is_anomalous() {
        let m = model();
        let f = Fix::new(99, Timestamp::from_mins(0), Position::new(42.2, 5.8), 12.0, 90.0);
        let s = m.score(&f);
        assert!(s.unseen_cell);
        assert!(s.score >= 1.0);
    }

    #[test]
    fn ranking_separates_normal_from_anomalous() {
        let m = model();
        let normal = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 4.6), 11.5, 91.0);
        let odd = Fix::new(2, Timestamp::from_mins(0), Position::new(43.0, 4.6), 25.0, 200.0);
        assert!(m.score(&odd).score > m.score(&normal).score + 0.3);
    }

    #[test]
    fn cell_count_reflects_coverage() {
        let m = model();
        assert!(m.cell_count() > 10);
        let empty = NormalcyModel::new(bounds(), 0.05);
        assert_eq!(empty.cell_count(), 0);
    }
}
