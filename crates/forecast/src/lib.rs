//! Trajectory forecasting and normalcy models (paper §3.1 and §4).
//!
//! "Algorithms for the prediction of anticipated vessel trajectories at
//! different time scales ... is fundamental to achieve early warning
//! maritime monitoring." Three predictors of increasing knowledge are
//! implemented, plus the pattern-of-life normalcy model §4 calls "a
//! reference for anomaly detection":
//!
//! - [`kinematic`] — dead reckoning (constant velocity) and constant
//!   turn rate: no knowledge beyond the last fixes. Strong at short
//!   horizons, blind to route structure.
//! - [`routenet`] — a route network learned from historical traffic
//!   (per-cell course/speed statistics); prediction follows the learned
//!   flow, so it anticipates the turns lanes make. Wins at long
//!   horizons — the crossover is the C6 experiment.
//! - [`normalcy`] — per-cell speed/heading statistics with anomaly
//!   scoring: "an explicit consideration of context provides an
//!   understanding of normalcy as a reference for anomaly detection".
//! - [`eta`] — estimated time of arrival against a destination.
//!
//! ## Example
//!
//! ```
//! use mda_forecast::{DeadReckoningPredictor, Predictor};
//! use mda_geo::{Fix, Position, Timestamp};
//!
//! let history: Vec<Fix> = (0..3i64)
//!     .map(|i| {
//!         let t = Timestamp::from_mins(i * 10);
//!         Fix::new(1, t, Position::new(43.0, 5.0 + 0.02 * i as f64), 12.0, 90.0)
//!     })
//!     .collect();
//! let predicted = DeadReckoningPredictor.predict(&history, Timestamp::from_mins(30)).unwrap();
//! assert!(predicted.lon > history.last().unwrap().pos.lon, "keeps heading east");
//! ```

pub mod eta;
pub mod kinematic;
pub mod normalcy;
pub mod routenet;

pub use eta::EtaEstimate;
pub use kinematic::{ConstantTurnPredictor, DeadReckoningPredictor};
pub use normalcy::{AnomalyScore, NormalcyModel};
pub use routenet::{RouteNetPredictor, RouteNetwork};

use mda_geo::{Fix, Position, Timestamp};

/// A trajectory predictor: given per-vessel history (time-ordered),
/// predict the position at a future instant.
pub trait Predictor {
    /// Human-readable name for experiment tables.
    fn name(&self) -> &'static str;

    /// Predict the vessel position at `at`, given its history (the last
    /// element is the most recent fix). `None` when the history is too
    /// thin for this predictor.
    fn predict(&self, history: &[Fix], at: Timestamp) -> Option<Position>;
}
