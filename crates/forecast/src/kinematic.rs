//! Kinematic predictors: dead reckoning and constant turn rate.

use crate::Predictor;
use mda_geo::distance::destination;
use mda_geo::units::{knots_to_mps, norm_deg_180, norm_deg_360};
use mda_geo::{Fix, Position, Timestamp};

/// Constant-velocity (dead-reckoning) prediction from the last fix.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadReckoningPredictor;

impl Predictor for DeadReckoningPredictor {
    fn name(&self) -> &'static str {
        "dead-reckoning"
    }

    fn predict(&self, history: &[Fix], at: Timestamp) -> Option<Position> {
        let last = history.last()?;
        Some(last.dead_reckon(at))
    }
}

/// Constant-turn-rate prediction: estimates the turn rate from the last
/// two fixes and propagates along the circular arc.
#[derive(Debug, Clone, Copy)]
pub struct ConstantTurnPredictor {
    /// Integration step, seconds.
    pub step_s: f64,
    /// Turn rates below this (deg/s) collapse to dead reckoning.
    pub min_rate_deg_s: f64,
}

impl Default for ConstantTurnPredictor {
    fn default() -> Self {
        Self { step_s: 30.0, min_rate_deg_s: 0.005 }
    }
}

impl Predictor for ConstantTurnPredictor {
    fn name(&self) -> &'static str {
        "constant-turn"
    }

    fn predict(&self, history: &[Fix], at: Timestamp) -> Option<Position> {
        let last = history.last()?;
        if history.len() < 2 {
            return Some(last.dead_reckon(at));
        }
        let prev = &history[history.len() - 2];
        let dt_s = (last.t - prev.t) as f64 / 1_000.0;
        if dt_s <= 0.0 {
            return Some(last.dead_reckon(at));
        }
        let rate = norm_deg_180(last.cog_deg - prev.cog_deg) / dt_s; // deg/s
        if rate.abs() < self.min_rate_deg_s {
            return Some(last.dead_reckon(at));
        }
        // Integrate the arc in fixed steps.
        let horizon_s = ((at - last.t) as f64 / 1_000.0).max(0.0);
        let speed = knots_to_mps(last.sog_kn);
        let mut pos = last.pos;
        let mut cog = last.cog_deg;
        let mut remaining = horizon_s;
        while remaining > 0.0 {
            let step = remaining.min(self.step_s);
            pos = destination(pos, cog, speed * step);
            cog = norm_deg_360(cog + rate * step);
            remaining -= step;
        }
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::distance::haversine_m;
    use mda_geo::time::MINUTE;
    use mda_geo::units::nm_to_meters;

    fn straight_history() -> Vec<Fix> {
        let f0 = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 12.0, 90.0);
        (0..10)
            .map(|i| {
                let t = Timestamp::from_mins(i);
                Fix { t, pos: f0.dead_reckon(t), ..f0 }
            })
            .collect()
    }

    /// A vessel turning at a steady 0.5°/s.
    fn turning_history() -> Vec<Fix> {
        let mut fixes = Vec::new();
        let mut pos = Position::new(43.0, 5.0);
        let mut cog = 0.0f64;
        let speed = knots_to_mps(10.0);
        for i in 0..20 {
            fixes.push(Fix::new(2, Timestamp::from_secs(i * 30), pos, 10.0, cog));
            pos = destination(pos, cog, speed * 30.0);
            cog = norm_deg_360(cog + 0.5 * 30.0);
        }
        fixes
    }

    #[test]
    fn dead_reckoning_exact_on_straight_course() {
        let h = straight_history();
        let p = DeadReckoningPredictor.predict(&h, Timestamp::from_mins(39)).unwrap();
        // 12 kn for 30 more minutes = 6 NM beyond the last fix.
        let d = haversine_m(h.last().unwrap().pos, p);
        assert!((d - nm_to_meters(6.0)).abs() < 20.0, "d = {d}");
    }

    #[test]
    fn constant_turn_beats_dr_on_turning_vessel() {
        let h = turning_history();
        // Ground truth 5 minutes past the last fix.
        let speed = knots_to_mps(10.0);
        let (mut pos, mut cog) = (h.last().unwrap().pos, h.last().unwrap().cog_deg);
        for _ in 0..10 {
            pos = destination(pos, cog, speed * 30.0);
            cog = norm_deg_360(cog + 0.5 * 30.0);
        }
        let at = h.last().unwrap().t + 5 * MINUTE;
        let ct = ConstantTurnPredictor::default().predict(&h, at).unwrap();
        let dr = DeadReckoningPredictor.predict(&h, at).unwrap();
        let ct_err = haversine_m(ct, pos);
        let dr_err = haversine_m(dr, pos);
        assert!(
            ct_err < dr_err * 0.3,
            "constant-turn {ct_err:.0} m vs dead-reckoning {dr_err:.0} m"
        );
    }

    #[test]
    fn constant_turn_equals_dr_on_straight_course() {
        let h = straight_history();
        let at = Timestamp::from_mins(20);
        let ct = ConstantTurnPredictor::default().predict(&h, at).unwrap();
        let dr = DeadReckoningPredictor.predict(&h, at).unwrap();
        assert!(haversine_m(ct, dr) < 1.0);
    }

    #[test]
    fn single_fix_history_falls_back() {
        let h = vec![Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 10.0, 0.0)];
        assert!(ConstantTurnPredictor::default().predict(&h, Timestamp::from_mins(10)).is_some());
        assert!(DeadReckoningPredictor.predict(&[], Timestamp::from_mins(10)).is_none());
    }

    #[test]
    fn predictor_names() {
        assert_eq!(DeadReckoningPredictor.name(), "dead-reckoning");
        assert_eq!(ConstantTurnPredictor::default().name(), "constant-turn");
    }
}
