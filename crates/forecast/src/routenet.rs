//! Route networks learned from historical traffic.
//!
//! The archive is summarised into a grid of cells, each holding the
//! circular-mean course and mean speed of the traffic that crossed it.
//! Prediction *follows the learned flow*: starting from the vessel's
//! position, step along each cell's mean course at the cell's mean
//! speed. Unlike dead reckoning, this anticipates the turns that
//! shipping lanes make — the long-horizon advantage measured in C6.

use crate::Predictor;
use mda_geo::distance::destination;
use mda_geo::units::{knots_to_mps, norm_deg_360};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of course sectors per cell (45° each). Lanes are sailed in
/// both directions; separating courses by sector keeps the two flows
/// from cancelling in the mean.
pub const SECTORS: usize = 8;

/// Per-cell traffic statistics, separated into course sectors.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CellStats {
    /// Number of fixes observed in the cell.
    pub count: u64,
    /// Sum of course sines/cosines (for the aggregate circular mean).
    sin_sum: f64,
    cos_sum: f64,
    /// Sum of speeds (knots).
    speed_sum: f64,
    /// Per-sector fix counts.
    sector_count: [u64; SECTORS],
    /// Per-sector course sine/cosine sums.
    sector_sin: [f64; SECTORS],
    sector_cos: [f64; SECTORS],
    /// Per-sector speed sums (knots).
    sector_speed: [f64; SECTORS],
}

fn sector_of(cog_deg: f64) -> usize {
    let d = mda_geo::units::norm_deg_360(cog_deg);
    ((d / (360.0 / SECTORS as f64)) as usize).min(SECTORS - 1)
}

impl CellStats {
    fn add(&mut self, cog_deg: f64, sog_kn: f64) {
        self.count += 1;
        self.sin_sum += cog_deg.to_radians().sin();
        self.cos_sum += cog_deg.to_radians().cos();
        self.speed_sum += sog_kn;
        let s = sector_of(cog_deg);
        self.sector_count[s] += 1;
        self.sector_sin[s] += cog_deg.to_radians().sin();
        self.sector_cos[s] += cog_deg.to_radians().cos();
        self.sector_speed[s] += sog_kn;
    }

    /// The directional flow compatible with a vessel on course
    /// `cog_deg`: the best-populated sector (own plus both neighbours
    /// pooled) whose pooled circular-mean course is within 90° of the
    /// vessel's. Returns `(mean course, mean speed, samples)`.
    pub fn directional_flow(&self, cog_deg: f64) -> Option<(f64, f64, u64)> {
        let own = sector_of(cog_deg);
        let mut best: Option<(f64, f64, u64)> = None;
        for centre in 0..SECTORS {
            // Pool the sector with its neighbours to smooth boundaries.
            let mut n = 0u64;
            let mut sin = 0.0;
            let mut cos = 0.0;
            let mut speed = 0.0;
            for d in [SECTORS - 1, 0, 1] {
                let s = (centre + d) % SECTORS;
                n += self.sector_count[s];
                sin += self.sector_sin[s];
                cos += self.sector_cos[s];
                speed += self.sector_speed[s];
            }
            if n == 0 {
                continue;
            }
            let mean = norm_deg_360(sin.atan2(cos).to_degrees());
            if mda_geo::units::heading_delta(mean, cog_deg) > 90.0 {
                continue;
            }
            // Prefer sectors centred near the vessel's own course, then
            // by population.
            let centre_bias = if centre == own { 2 } else { 0 };
            let score = n + centre_bias;
            if best.map(|(_, _, bn)| score > bn).unwrap_or(true) {
                best = Some((mean, speed / n as f64, score));
            }
        }
        best
    }

    /// Circular mean course, degrees.
    pub fn mean_course_deg(&self) -> f64 {
        norm_deg_360(self.sin_sum.atan2(self.cos_sum).to_degrees())
    }

    /// Mean speed, knots.
    pub fn mean_speed_kn(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.speed_sum / self.count as f64
        }
    }

    /// Concentration of the course distribution in `[0,1]` (1 = all
    /// traffic on the same course). Low concentration means the cell is
    /// ambiguous (crossing lanes) and its flow should not be trusted.
    pub fn course_concentration(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.sin_sum.hypot(self.cos_sum)) / self.count as f64
    }
}

/// A learned route network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteNetwork {
    bounds: BoundingBox,
    cell_deg: f64,
    cells: HashMap<(i32, i32), CellStats>,
    total_fixes: u64,
}

impl RouteNetwork {
    /// New empty network over `bounds` with `cell_deg` cells.
    pub fn new(bounds: BoundingBox, cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0);
        Self { bounds, cell_deg, cells: HashMap::new(), total_fixes: 0 }
    }

    fn cell_of(&self, p: Position) -> (i32, i32) {
        (
            ((p.lat - self.bounds.min_lat) / self.cell_deg).floor() as i32,
            ((p.lon - self.bounds.min_lon) / self.cell_deg).floor() as i32,
        )
    }

    /// Learn from one fix (moving traffic only; stationary fixes carry
    /// no flow information).
    pub fn learn(&mut self, fix: &Fix) {
        if fix.sog_kn < 1.0 {
            return;
        }
        self.cells.entry(self.cell_of(fix.pos)).or_default().add(fix.cog_deg, fix.sog_kn);
        self.total_fixes += 1;
    }

    /// Learn from a whole history.
    pub fn learn_all<'a>(&mut self, fixes: impl IntoIterator<Item = &'a Fix>) {
        for f in fixes {
            self.learn(f);
        }
    }

    /// Statistics of the cell containing `p`, if any traffic crossed it.
    pub fn stats_at(&self, p: Position) -> Option<&CellStats> {
        self.cells.get(&self.cell_of(p))
    }

    /// Number of cells with traffic.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total fixes learned.
    pub fn total_fixes(&self) -> u64 {
        self.total_fixes
    }
}

/// Predictor following a learned [`RouteNetwork`].
#[derive(Debug, Clone)]
pub struct RouteNetPredictor {
    /// The learned network.
    pub network: RouteNetwork,
    /// Integration step, seconds.
    pub step_s: f64,
    /// Minimum (pooled-sector) sample count to trust the flow.
    pub min_count: u64,
    /// Fraction of the course difference to the flow applied per step
    /// (0 = ignore the network, 1 = snap to it).
    pub flow_gain: f64,
}

impl RouteNetPredictor {
    /// Wrap a learned network with default integration parameters.
    pub fn new(network: RouteNetwork) -> Self {
        Self { network, step_s: 60.0, min_count: 5, flow_gain: 0.5 }
    }
}

impl Predictor for RouteNetPredictor {
    fn name(&self) -> &'static str {
        "route-network"
    }

    fn predict(&self, history: &[Fix], at: Timestamp) -> Option<Position> {
        let last = history.last()?;
        let horizon_s = ((at - last.t) as f64 / 1_000.0).max(0.0);
        let mut pos = last.pos;
        let mut cog = last.cog_deg;
        let mut sog = last.sog_kn;
        let mut remaining = horizon_s;
        while remaining > 0.0 {
            let step = remaining.min(self.step_s);
            // Consult the learned flow; fall back to current kinematics
            // in unseen or ambiguous cells.
            if let Some(stats) = self.network.stats_at(pos) {
                if let Some((course, _speed, n)) = stats.directional_flow(cog) {
                    let delta = mda_geo::units::heading_delta(course, cog);
                    // directional_flow already restricts to ≤90°; the
                    // extra margin lets right-angle lane corners engage.
                    if n >= self.min_count && delta <= 90.0 {
                        // Steer gently toward the learned flow instead of
                        // snapping to it: straight legs stay untouched,
                        // lane turns pull the course around over a few
                        // steps. Speed stays the vessel's own — cell
                        // means mix vessel classes.
                        let turn = mda_geo::units::norm_deg_180(course - cog);
                        cog = norm_deg_360(cog + self.flow_gain * turn);
                    }
                }
            }
            let _ = &mut sog;
            pos = destination(pos, cog, knots_to_mps(sog) * step);
            remaining -= step;
        }
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinematic::DeadReckoningPredictor;
    use mda_geo::distance::{haversine_m, initial_bearing_deg};
    use mda_geo::time::MINUTE;

    fn bounds() -> BoundingBox {
        BoundingBox::new(42.0, 4.0, 44.0, 6.0)
    }

    /// Historical traffic along an L-shaped lane: east then north.
    fn l_lane_history(runs: usize) -> Vec<Fix> {
        let mut fixes = Vec::new();
        for r in 0..runs {
            let f0 = Fix::new(
                r as u32 + 1,
                Timestamp::from_mins(0),
                Position::new(43.01, 4.2),
                12.0,
                90.0,
            );
            let mut pos = f0.pos;
            let mut t = f0.t;
            // East leg to lon 5.0.
            while pos.lon < 5.0 {
                fixes.push(Fix { t, pos, ..f0 });
                pos = destination(pos, 90.0, knots_to_mps(12.0) * 60.0);
                t += MINUTE;
            }
            // North leg.
            for _ in 0..60 {
                fixes.push(Fix { t, pos, cog_deg: 0.0, ..f0 });
                pos = destination(pos, 0.0, knots_to_mps(12.0) * 60.0);
                t += MINUTE;
            }
        }
        fixes
    }

    #[test]
    fn cell_stats_circular_mean() {
        let mut s = CellStats::default();
        s.add(350.0, 10.0);
        s.add(10.0, 12.0);
        let mean = s.mean_course_deg();
        assert!(!(5.0..=355.0).contains(&mean), "wrap-around mean: {mean}");
        assert!((s.mean_speed_kn() - 11.0).abs() < 1e-9);
        assert!(s.course_concentration() > 0.9);
    }

    #[test]
    fn directional_flow_separates_opposing_lanes() {
        let mut s = CellStats::default();
        for _ in 0..10 {
            s.add(90.0, 12.0); // eastbound traffic
            s.add(270.0, 8.0); // westbound traffic
        }
        // Aggregate mean is meaningless (flows cancel)...
        assert!(s.course_concentration() < 0.1);
        // ...but the directional flow matches the asking vessel.
        let (course_e, speed_e, _) = s.directional_flow(85.0).expect("east flow");
        assert!((course_e - 90.0).abs() < 5.0);
        assert!((speed_e - 12.0).abs() < 0.5);
        let (course_w, speed_w, _) = s.directional_flow(265.0).expect("west flow");
        assert!((course_w - 270.0).abs() < 5.0);
        assert!((speed_w - 8.0).abs() < 0.5);
        // A vessel heading north finds no compatible flow here.
        assert!(
            s.directional_flow(0.0).is_none() || {
                let (c, _, _) = s.directional_flow(0.0).unwrap();
                mda_geo::units::heading_delta(c, 0.0) <= 90.0
            }
        );
    }

    #[test]
    fn ambiguous_cell_has_low_concentration() {
        let mut s = CellStats::default();
        s.add(0.0, 10.0);
        s.add(180.0, 10.0);
        assert!(s.course_concentration() < 0.05);
    }

    #[test]
    fn network_learns_lane_structure() {
        let mut net = RouteNetwork::new(bounds(), 0.05);
        net.learn_all(&l_lane_history(5));
        assert!(net.cell_count() > 20);
        // A cell on the east leg should point east.
        let east = net.stats_at(Position::new(43.01, 4.5)).expect("traffic there");
        assert!((east.mean_course_deg() - 90.0).abs() < 10.0);
        // Stationary fixes are ignored.
        let before = net.total_fixes();
        net.learn(&Fix::new(9, Timestamp::from_mins(0), Position::new(43.01, 4.5), 0.1, 0.0));
        assert_eq!(net.total_fixes(), before);
    }

    #[test]
    fn routenet_beats_dead_reckoning_past_the_corner() {
        let history = l_lane_history(8);
        let mut net = RouteNetwork::new(bounds(), 0.05);
        net.learn_all(&history);
        let predictor = RouteNetPredictor::new(net);

        // A new vessel is on the east leg, 20 minutes before the corner.
        let vessel = Fix::new(99, Timestamp::from_mins(0), Position::new(43.01, 4.93), 12.0, 90.0);
        // Ground truth 60 min ahead: reaches the corner in ~17 min, then
        // sails north for ~43 min.
        let corner = Position::new(43.01, 5.0);
        let t_corner_s = haversine_m(vessel.pos, corner) / knots_to_mps(12.0);
        let truth = destination(corner, 0.0, knots_to_mps(12.0) * (3_600.0 - t_corner_s));

        let at = vessel.t + 60 * MINUTE;
        let rn = predictor.predict(&[vessel], at).unwrap();
        let dr = DeadReckoningPredictor.predict(&[vessel], at).unwrap();
        let rn_err = haversine_m(rn, truth);
        let dr_err = haversine_m(dr, truth);
        assert!(rn_err < dr_err * 0.5, "route-net {rn_err:.0} m vs dead-reckoning {dr_err:.0} m");
        // Sanity: route-net went north of the corner.
        assert!(initial_bearing_deg(corner, rn) < 45.0 || initial_bearing_deg(corner, rn) > 315.0);
    }

    #[test]
    fn unseen_area_falls_back_to_dead_reckoning() {
        let net = RouteNetwork::new(bounds(), 0.05); // empty network
        let predictor = RouteNetPredictor::new(net);
        let vessel = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 4.5), 10.0, 45.0);
        let at = vessel.t + 30 * MINUTE;
        let rn = predictor.predict(&[vessel], at).unwrap();
        let dr = DeadReckoningPredictor.predict(&[vessel], at).unwrap();
        assert!(haversine_m(rn, dr) < 200.0, "{}", haversine_m(rn, dr));
    }

    #[test]
    fn empty_history_returns_none() {
        let net = RouteNetwork::new(bounds(), 0.05);
        assert!(RouteNetPredictor::new(net).predict(&[], Timestamp::from_mins(10)).is_none());
    }
}
