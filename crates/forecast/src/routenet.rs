//! Route networks learned from historical traffic.
//!
//! The archive is summarised into a grid of cells, each holding the
//! circular-mean course and mean speed of the traffic that crossed it.
//! Prediction *follows the learned flow*: starting from the vessel's
//! position, step along each cell's mean course at the cell's mean
//! speed. Unlike dead reckoning, this anticipates the turns that
//! shipping lanes make — the long-horizon advantage measured in C6.

use crate::Predictor;
use mda_geo::distance::destination;
use mda_geo::units::{knots_to_mps, norm_deg_360};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of course sectors per cell (45° each). Lanes are sailed in
/// both directions; separating courses by sector keeps the two flows
/// from cancelling in the mean.
pub const SECTORS: usize = 8;

/// Fixed-point scale for unit-range accumulators (course sines and
/// cosines): 2³², leaving 2³¹ fixes of headroom per cell in an `i64`.
const TRIG_SCALE: f64 = 4_294_967_296.0;
/// Fixed-point scale for speed sums (knots): 2²⁰ ≈ a micro-knot,
/// leaving tens of billions of ~100 kn fixes of headroom per cell.
const SPEED_SCALE: f64 = 1_048_576.0;

fn trig_q(v: f64) -> i64 {
    (v * TRIG_SCALE).round() as i64
}

fn speed_q(kn: f64) -> i64 {
    (kn * SPEED_SCALE).round() as i64
}

/// Per-cell traffic statistics, separated into course sectors.
///
/// All accumulators are **integer fixed-point** (courses quantized to
/// 2⁻³² of a unit vector, speeds to 2⁻²⁰ kn). Integer addition is
/// exact, associative and commutative, so a cell's sums are a pure
/// function of the fix *multiset* — independent of learn order, of how
/// the stream was partitioned across writer lanes, and of the order
/// lane parts are [merged](RouteNetwork::merge_from). That is what
/// lets a multi-writer pipeline publish bit-identical predictors to a
/// single-writer run; the quantization error (≪ 1e-9 per fix) is far
/// below the physical meaning of a course-over-ground reading.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CellStats {
    /// Number of fixes observed in the cell.
    pub count: u64,
    /// Sum of course sines/cosines (for the aggregate circular mean),
    /// fixed-point at [`TRIG_SCALE`].
    sin_sum: i64,
    cos_sum: i64,
    /// Sum of speeds, fixed-point at [`SPEED_SCALE`] (knots).
    speed_sum: i64,
    /// Per-sector fix counts.
    sector_count: [u64; SECTORS],
    /// Per-sector course sine/cosine sums, fixed-point.
    sector_sin: [i64; SECTORS],
    sector_cos: [i64; SECTORS],
    /// Per-sector speed sums, fixed-point (knots).
    sector_speed: [i64; SECTORS],
}

fn sector_of(cog_deg: f64) -> usize {
    let d = mda_geo::units::norm_deg_360(cog_deg);
    ((d / (360.0 / SECTORS as f64)) as usize).min(SECTORS - 1)
}

impl CellStats {
    fn add(&mut self, cog_deg: f64, sog_kn: f64) {
        let (sin, cos) = (trig_q(cog_deg.to_radians().sin()), trig_q(cog_deg.to_radians().cos()));
        let speed = speed_q(sog_kn);
        self.count += 1;
        self.sin_sum += sin;
        self.cos_sum += cos;
        self.speed_sum += speed;
        let s = sector_of(cog_deg);
        self.sector_count[s] += 1;
        self.sector_sin[s] += sin;
        self.sector_cos[s] += cos;
        self.sector_speed[s] += speed;
    }

    /// Fold another cell's sums into this one. Exact (integer adds):
    /// merging per-lane partial cells in any order equals having
    /// learned every fix in one cell.
    fn merge(&mut self, other: &CellStats) {
        self.count += other.count;
        self.sin_sum += other.sin_sum;
        self.cos_sum += other.cos_sum;
        self.speed_sum += other.speed_sum;
        for s in 0..SECTORS {
            self.sector_count[s] += other.sector_count[s];
            self.sector_sin[s] += other.sector_sin[s];
            self.sector_cos[s] += other.sector_cos[s];
            self.sector_speed[s] += other.sector_speed[s];
        }
    }

    /// The directional flow compatible with a vessel on course
    /// `cog_deg`: the best-populated sector (own plus both neighbours
    /// pooled) whose pooled circular-mean course is within 90° of the
    /// vessel's. Returns `(mean course, mean speed, samples)`.
    pub fn directional_flow(&self, cog_deg: f64) -> Option<(f64, f64, u64)> {
        let own = sector_of(cog_deg);
        let mut best: Option<(f64, f64, u64)> = None;
        for centre in 0..SECTORS {
            // Pool the sector with its neighbours to smooth boundaries.
            let mut n = 0u64;
            let mut sin = 0i64;
            let mut cos = 0i64;
            let mut speed = 0i64;
            for d in [SECTORS - 1, 0, 1] {
                let s = (centre + d) % SECTORS;
                n += self.sector_count[s];
                sin += self.sector_sin[s];
                cos += self.sector_cos[s];
                speed += self.sector_speed[s];
            }
            if n == 0 {
                continue;
            }
            let mean = norm_deg_360((sin as f64).atan2(cos as f64).to_degrees());
            if mda_geo::units::heading_delta(mean, cog_deg) > 90.0 {
                continue;
            }
            // Prefer sectors centred near the vessel's own course, then
            // by population.
            let centre_bias = if centre == own { 2 } else { 0 };
            let score = n + centre_bias;
            if best.map(|(_, _, bn)| score > bn).unwrap_or(true) {
                best = Some((mean, speed as f64 / SPEED_SCALE / n as f64, score));
            }
        }
        best
    }

    /// Circular mean course, degrees.
    pub fn mean_course_deg(&self) -> f64 {
        norm_deg_360((self.sin_sum as f64).atan2(self.cos_sum as f64).to_degrees())
    }

    /// Mean speed, knots.
    pub fn mean_speed_kn(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.speed_sum as f64 / SPEED_SCALE / self.count as f64
        }
    }

    /// Concentration of the course distribution in `[0,1]` (1 = all
    /// traffic on the same course). Low concentration means the cell is
    /// ambiguous (crossing lanes) and its flow should not be trusted.
    pub fn course_concentration(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.sin_sum as f64).hypot(self.cos_sum as f64) / TRIG_SCALE / self.count as f64
    }
}

/// A learned route network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteNetwork {
    bounds: BoundingBox,
    cell_deg: f64,
    cells: HashMap<(i32, i32), CellStats>,
    total_fixes: u64,
}

impl RouteNetwork {
    /// New empty network over `bounds` with `cell_deg` cells.
    pub fn new(bounds: BoundingBox, cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0);
        Self { bounds, cell_deg, cells: HashMap::new(), total_fixes: 0 }
    }

    fn cell_of(&self, p: Position) -> (i32, i32) {
        (
            ((p.lat - self.bounds.min_lat) / self.cell_deg).floor() as i32,
            ((p.lon - self.bounds.min_lon) / self.cell_deg).floor() as i32,
        )
    }

    /// Learn from one fix (moving traffic only; stationary fixes carry
    /// no flow information).
    pub fn learn(&mut self, fix: &Fix) {
        if fix.sog_kn < 1.0 {
            return;
        }
        self.cells.entry(self.cell_of(fix.pos)).or_default().add(fix.cog_deg, fix.sog_kn);
        self.total_fixes += 1;
    }

    /// Learn from a whole history.
    pub fn learn_all<'a>(&mut self, fixes: impl IntoIterator<Item = &'a Fix>) {
        for f in fixes {
            self.learn(f);
        }
    }

    /// Fold another network (same bounds and cell size) into this one.
    ///
    /// Cell sums are integer fixed-point, so the merge is **exact**:
    /// merging per-writer-lane partial networks in any order produces
    /// the same cells, bit for bit, as learning the whole stream into
    /// one network in any order. This is the cross-lane reduction the
    /// multi-writer pipeline's tick leader runs before publishing a
    /// predictor.
    pub fn merge_from(&mut self, other: &RouteNetwork) {
        assert!(
            self.cell_deg == other.cell_deg
                && self.bounds.min_lat == other.bounds.min_lat
                && self.bounds.min_lon == other.bounds.min_lon,
            "merging route networks with different grids"
        );
        for (cell, stats) in &other.cells {
            self.cells.entry(*cell).or_default().merge(stats);
        }
        self.total_fixes += other.total_fixes;
    }

    /// Statistics of the cell containing `p`, if any traffic crossed it.
    pub fn stats_at(&self, p: Position) -> Option<&CellStats> {
        self.cells.get(&self.cell_of(p))
    }

    /// Number of cells with traffic.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total fixes learned.
    pub fn total_fixes(&self) -> u64 {
        self.total_fixes
    }
}

/// Predictor following a learned [`RouteNetwork`].
#[derive(Debug, Clone)]
pub struct RouteNetPredictor {
    /// The learned network.
    pub network: RouteNetwork,
    /// Integration step, seconds.
    pub step_s: f64,
    /// Minimum (pooled-sector) sample count to trust the flow.
    pub min_count: u64,
    /// Fraction of the course difference to the flow applied per step
    /// (0 = ignore the network, 1 = snap to it).
    pub flow_gain: f64,
}

impl RouteNetPredictor {
    /// Wrap a learned network with default integration parameters.
    pub fn new(network: RouteNetwork) -> Self {
        Self { network, step_s: 60.0, min_count: 5, flow_gain: 0.5 }
    }
}

impl Predictor for RouteNetPredictor {
    fn name(&self) -> &'static str {
        "route-network"
    }

    fn predict(&self, history: &[Fix], at: Timestamp) -> Option<Position> {
        let last = history.last()?;
        let horizon_s = ((at - last.t) as f64 / 1_000.0).max(0.0);
        let mut pos = last.pos;
        let mut cog = last.cog_deg;
        let mut sog = last.sog_kn;
        let mut remaining = horizon_s;
        while remaining > 0.0 {
            let step = remaining.min(self.step_s);
            // Consult the learned flow; fall back to current kinematics
            // in unseen or ambiguous cells.
            if let Some(stats) = self.network.stats_at(pos) {
                if let Some((course, _speed, n)) = stats.directional_flow(cog) {
                    let delta = mda_geo::units::heading_delta(course, cog);
                    // directional_flow already restricts to ≤90°; the
                    // extra margin lets right-angle lane corners engage.
                    if n >= self.min_count && delta <= 90.0 {
                        // Steer gently toward the learned flow instead of
                        // snapping to it: straight legs stay untouched,
                        // lane turns pull the course around over a few
                        // steps. Speed stays the vessel's own — cell
                        // means mix vessel classes.
                        let turn = mda_geo::units::norm_deg_180(course - cog);
                        cog = norm_deg_360(cog + self.flow_gain * turn);
                    }
                }
            }
            let _ = &mut sog;
            pos = destination(pos, cog, knots_to_mps(sog) * step);
            remaining -= step;
        }
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinematic::DeadReckoningPredictor;
    use mda_geo::distance::{haversine_m, initial_bearing_deg};
    use mda_geo::time::MINUTE;

    fn bounds() -> BoundingBox {
        BoundingBox::new(42.0, 4.0, 44.0, 6.0)
    }

    /// Historical traffic along an L-shaped lane: east then north.
    fn l_lane_history(runs: usize) -> Vec<Fix> {
        let mut fixes = Vec::new();
        for r in 0..runs {
            let f0 = Fix::new(
                r as u32 + 1,
                Timestamp::from_mins(0),
                Position::new(43.01, 4.2),
                12.0,
                90.0,
            );
            let mut pos = f0.pos;
            let mut t = f0.t;
            // East leg to lon 5.0.
            while pos.lon < 5.0 {
                fixes.push(Fix { t, pos, ..f0 });
                pos = destination(pos, 90.0, knots_to_mps(12.0) * 60.0);
                t += MINUTE;
            }
            // North leg.
            for _ in 0..60 {
                fixes.push(Fix { t, pos, cog_deg: 0.0, ..f0 });
                pos = destination(pos, 0.0, knots_to_mps(12.0) * 60.0);
                t += MINUTE;
            }
        }
        fixes
    }

    #[test]
    fn cell_stats_circular_mean() {
        let mut s = CellStats::default();
        s.add(350.0, 10.0);
        s.add(10.0, 12.0);
        let mean = s.mean_course_deg();
        assert!(!(5.0..=355.0).contains(&mean), "wrap-around mean: {mean}");
        assert!((s.mean_speed_kn() - 11.0).abs() < 1e-9);
        assert!(s.course_concentration() > 0.9);
    }

    #[test]
    fn directional_flow_separates_opposing_lanes() {
        let mut s = CellStats::default();
        for _ in 0..10 {
            s.add(90.0, 12.0); // eastbound traffic
            s.add(270.0, 8.0); // westbound traffic
        }
        // Aggregate mean is meaningless (flows cancel)...
        assert!(s.course_concentration() < 0.1);
        // ...but the directional flow matches the asking vessel.
        let (course_e, speed_e, _) = s.directional_flow(85.0).expect("east flow");
        assert!((course_e - 90.0).abs() < 5.0);
        assert!((speed_e - 12.0).abs() < 0.5);
        let (course_w, speed_w, _) = s.directional_flow(265.0).expect("west flow");
        assert!((course_w - 270.0).abs() < 5.0);
        assert!((speed_w - 8.0).abs() < 0.5);
        // A vessel heading north finds no compatible flow here.
        assert!(
            s.directional_flow(0.0).is_none() || {
                let (c, _, _) = s.directional_flow(0.0).unwrap();
                mda_geo::units::heading_delta(c, 0.0) <= 90.0
            }
        );
    }

    #[test]
    fn ambiguous_cell_has_low_concentration() {
        let mut s = CellStats::default();
        s.add(0.0, 10.0);
        s.add(180.0, 10.0);
        assert!(s.course_concentration() < 0.05);
    }

    #[test]
    fn partitioned_learning_merges_exactly() {
        // Learn the same history (a) whole, in order; (b) whole, in
        // reverse; (c) split across 4 partial networks by vessel id and
        // merged in a scrambled order. All three must agree bit-for-bit
        // in every derived statistic — the invariant the multi-writer
        // pipeline's predictor publication rests on.
        let history = l_lane_history(6);
        let mut whole = RouteNetwork::new(bounds(), 0.05);
        whole.learn_all(&history);
        let mut reversed = RouteNetwork::new(bounds(), 0.05);
        reversed.learn_all(history.iter().rev());
        let mut parts: Vec<RouteNetwork> =
            (0..4).map(|_| RouteNetwork::new(bounds(), 0.05)).collect();
        for f in &history {
            parts[f.id as usize % 4].learn(f);
        }
        let mut merged = RouteNetwork::new(bounds(), 0.05);
        for p in [2usize, 0, 3, 1] {
            merged.merge_from(&parts[p]);
        }
        assert_eq!(whole.total_fixes(), merged.total_fixes());
        assert_eq!(whole.cell_count(), merged.cell_count());
        for probe in &history {
            let a = whole.stats_at(probe.pos).expect("learned cell");
            let b = merged.stats_at(probe.pos).expect("merged cell");
            let c = reversed.stats_at(probe.pos).expect("reversed cell");
            assert_eq!(a.count, b.count);
            for s in [a, c] {
                assert_eq!(s.mean_course_deg().to_bits(), b.mean_course_deg().to_bits());
                assert_eq!(s.mean_speed_kn().to_bits(), b.mean_speed_kn().to_bits());
                assert_eq!(s.course_concentration().to_bits(), b.course_concentration().to_bits());
                assert_eq!(
                    s.directional_flow(90.0).map(|(c, v, n)| (c.to_bits(), v.to_bits(), n)),
                    b.directional_flow(90.0).map(|(c, v, n)| (c.to_bits(), v.to_bits(), n))
                );
            }
        }
    }

    #[test]
    fn network_learns_lane_structure() {
        let mut net = RouteNetwork::new(bounds(), 0.05);
        net.learn_all(&l_lane_history(5));
        assert!(net.cell_count() > 20);
        // A cell on the east leg should point east.
        let east = net.stats_at(Position::new(43.01, 4.5)).expect("traffic there");
        assert!((east.mean_course_deg() - 90.0).abs() < 10.0);
        // Stationary fixes are ignored.
        let before = net.total_fixes();
        net.learn(&Fix::new(9, Timestamp::from_mins(0), Position::new(43.01, 4.5), 0.1, 0.0));
        assert_eq!(net.total_fixes(), before);
    }

    #[test]
    fn routenet_beats_dead_reckoning_past_the_corner() {
        let history = l_lane_history(8);
        let mut net = RouteNetwork::new(bounds(), 0.05);
        net.learn_all(&history);
        let predictor = RouteNetPredictor::new(net);

        // A new vessel is on the east leg, 20 minutes before the corner.
        let vessel = Fix::new(99, Timestamp::from_mins(0), Position::new(43.01, 4.93), 12.0, 90.0);
        // Ground truth 60 min ahead: reaches the corner in ~17 min, then
        // sails north for ~43 min.
        let corner = Position::new(43.01, 5.0);
        let t_corner_s = haversine_m(vessel.pos, corner) / knots_to_mps(12.0);
        let truth = destination(corner, 0.0, knots_to_mps(12.0) * (3_600.0 - t_corner_s));

        let at = vessel.t + 60 * MINUTE;
        let rn = predictor.predict(&[vessel], at).unwrap();
        let dr = DeadReckoningPredictor.predict(&[vessel], at).unwrap();
        let rn_err = haversine_m(rn, truth);
        let dr_err = haversine_m(dr, truth);
        assert!(rn_err < dr_err * 0.5, "route-net {rn_err:.0} m vs dead-reckoning {dr_err:.0} m");
        // Sanity: route-net went north of the corner.
        assert!(initial_bearing_deg(corner, rn) < 45.0 || initial_bearing_deg(corner, rn) > 315.0);
    }

    #[test]
    fn unseen_area_falls_back_to_dead_reckoning() {
        let net = RouteNetwork::new(bounds(), 0.05); // empty network
        let predictor = RouteNetPredictor::new(net);
        let vessel = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 4.5), 10.0, 45.0);
        let at = vessel.t + 30 * MINUTE;
        let rn = predictor.predict(&[vessel], at).unwrap();
        let dr = DeadReckoningPredictor.predict(&[vessel], at).unwrap();
        assert!(haversine_m(rn, dr) < 200.0, "{}", haversine_m(rn, dr));
    }

    #[test]
    fn empty_history_returns_none() {
        let net = RouteNetwork::new(bounds(), 0.05);
        assert!(RouteNetPredictor::new(net).predict(&[], Timestamp::from_mins(10)).is_none());
    }
}
