//! Estimated time of arrival.
//!
//! Two estimators: a straight-line great-circle ETA from current
//! kinematics, and a flow-aware ETA that integrates along a learned
//! route network (so an L-shaped lane yields the longer, correct time).

use crate::routenet::RouteNetwork;
use mda_geo::distance::{destination, haversine_m, initial_bearing_deg};
use mda_geo::units::knots_to_mps;
use mda_geo::{DurationMs, Fix, Position};

/// Both ETA answers for one (vessel, destination) question — the shape
/// the serving layer returns, so operators see the crow-flies bound
/// next to the flow-aware estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EtaEstimate {
    /// Straight-line great-circle ETA ([`eta_direct`]); `None` for a
    /// (near-)stationary vessel.
    pub direct: Option<DurationMs>,
    /// Flow-following ETA along the learned route network
    /// ([`eta_via_network`]); `None` when the vessel is stationary or
    /// the walk does not arrive within the step budget.
    pub via_network: Option<DurationMs>,
}

impl EtaEstimate {
    /// The better-informed answer: the network walk when it arrived,
    /// the straight line otherwise.
    pub fn best(&self) -> Option<DurationMs> {
        self.via_network.or(self.direct)
    }
}

/// Estimate both ETAs from the vessel's freshest fix against `dest`.
///
/// ```
/// use mda_forecast::eta::estimate;
/// use mda_forecast::RouteNetwork;
/// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
///
/// let net = RouteNetwork::new(BoundingBox::new(42.0, 4.0, 44.0, 6.0), 0.05);
/// let fix = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 4.5), 12.0, 90.0);
/// let eta = estimate(&fix, Position::new(43.0, 4.8), &net, 1_000.0, 600);
/// // An empty network still yields the direct bound, and the walk
/// // degenerates to the straight line.
/// assert!(eta.direct.is_some());
/// assert!(eta.best().is_some());
/// ```
pub fn estimate(
    fix: &Fix,
    dest: Position,
    network: &RouteNetwork,
    arrival_radius_m: f64,
    max_steps: usize,
) -> EtaEstimate {
    EtaEstimate {
        direct: eta_direct(fix, dest),
        via_network: eta_via_network(fix, dest, network, arrival_radius_m, max_steps),
    }
}

/// Straight-line ETA in milliseconds, `None` for a (near-)stationary
/// vessel.
pub fn eta_direct(fix: &Fix, dest: Position) -> Option<DurationMs> {
    if fix.sog_kn < 0.5 {
        return None;
    }
    let dist = haversine_m(fix.pos, dest);
    Some((dist / knots_to_mps(fix.sog_kn) * 1_000.0) as DurationMs)
}

/// Flow-following ETA: walk the learned route network from the vessel
/// toward `dest` (steering along cell flow when it roughly agrees with
/// the direction to the destination, directly otherwise) until within
/// `arrival_radius_m`. Returns `None` if the walk does not arrive
/// within `max_steps` integration steps.
pub fn eta_via_network(
    fix: &Fix,
    dest: Position,
    network: &RouteNetwork,
    arrival_radius_m: f64,
    max_steps: usize,
) -> Option<DurationMs> {
    if fix.sog_kn < 0.5 {
        return None;
    }
    let step_s = 60.0;
    let mut pos = fix.pos;
    let mut elapsed: f64 = 0.0;
    for _ in 0..max_steps {
        if haversine_m(pos, dest) <= arrival_radius_m {
            return Some((elapsed * 1_000.0) as DurationMs);
        }
        let direct = initial_bearing_deg(pos, dest);
        let (course, speed) = match network.stats_at(pos) {
            Some(stats)
                if stats.count >= 5
                    && stats.course_concentration() >= 0.5
                    && mda_geo::units::heading_delta(stats.mean_course_deg(), direct) < 100.0 =>
            {
                (stats.mean_course_deg(), stats.mean_speed_kn().max(1.0))
            }
            _ => (direct, fix.sog_kn),
        };
        pos = destination(pos, course, knots_to_mps(speed) * step_s);
        elapsed += step_s;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::{HOUR, MINUTE};
    use mda_geo::{BoundingBox, Timestamp};

    #[test]
    fn direct_eta_matches_kinematics() {
        // 12 NM at 12 kn = 1 hour.
        let dest = Position::new(43.0, 5.0);
        let start = destination(dest, 270.0, mda_geo::units::nm_to_meters(12.0));
        let fix = Fix::new(1, Timestamp::from_mins(0), start, 12.0, 90.0);
        let eta = eta_direct(&fix, dest).unwrap();
        assert!((eta - HOUR).abs() < MINUTE, "eta {eta}");
    }

    #[test]
    fn stationary_vessel_has_no_eta() {
        let fix = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 0.1, 0.0);
        assert!(eta_direct(&fix, Position::new(43.5, 5.0)).is_none());
    }

    #[test]
    fn network_eta_reflects_dog_leg_route() {
        // L-shaped flow: east along lat 43.0 to lon 5.0, then north.
        let bounds = BoundingBox::new(42.5, 4.0, 44.0, 6.0);
        let mut net = RouteNetwork::new(bounds, 0.05);
        for run in 0..6u32 {
            let mut pos = Position::new(43.01, 4.2);
            let mut t = Timestamp::from_mins(0);
            while pos.lon < 5.0 {
                net.learn(&Fix::new(run, t, pos, 12.0, 90.0));
                pos = destination(pos, 90.0, knots_to_mps(12.0) * 60.0);
                t += MINUTE;
            }
            for _ in 0..60 {
                net.learn(&Fix::new(run, t, pos, 12.0, 0.0));
                pos = destination(pos, 0.0, knots_to_mps(12.0) * 60.0);
                t += MINUTE;
            }
        }
        // Destination up the north leg.
        let dest = destination(Position::new(43.01, 5.0), 0.0, 20_000.0);
        let fix = Fix::new(9, Timestamp::from_mins(0), Position::new(43.01, 4.3), 12.0, 90.0);
        let via = eta_via_network(&fix, dest, &net, 2_000.0, 600).expect("arrives");
        let direct = eta_direct(&fix, dest).unwrap();
        // The route ETA must exceed the crow-flies ETA (the lane is
        // longer than the diagonal).
        assert!(via > direct + 10 * MINUTE, "via {via} direct {direct}");
        // And be consistent with the actual lane length (~77 km at 12 kn
        // ≈ 3.5 h), within integration slack.
        assert!(via < 6 * HOUR);
    }

    #[test]
    fn network_eta_gives_up_gracefully() {
        let net = RouteNetwork::new(BoundingBox::new(42.0, 4.0, 44.0, 6.0), 0.05);
        let fix = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 4.2), 10.0, 90.0);
        // Destination absurdly far with tiny step budget.
        let eta = eta_via_network(&fix, Position::new(43.0, 40.0), &net, 500.0, 10);
        assert!(eta.is_none());
    }
}
