//! String interning for compact graph terms.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A compact identifier for an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TermId(pub u32);

/// A bidirectional string ↔ id table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    by_name: HashMap<String, TermId>,
    names: Vec<String>,
}

impl Interner {
    /// New empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id (idempotent).
    pub fn intern(&mut self, name: &str) -> TermId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = TermId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned term.
    pub fn get(&self, name: &str) -> Option<TermId> {
        self.by_name.get(name).copied()
    }

    /// The string for an id.
    pub fn name(&self, id: TermId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern(":vessel/227000001");
        let b = i.intern(":vessel/227000001");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn round_trip() {
        let mut i = Interner::new();
        let id = i.intern(":inZone");
        assert_eq!(i.name(id), Some(":inZone"));
        assert_eq!(i.get(":inZone"), Some(id));
        assert_eq!(i.get(":missing"), None);
        assert_eq!(i.name(TermId(99)), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        let ids: Vec<TermId> = (0..10).map(|n| i.intern(&format!("t{n}"))).collect();
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(id.0 as usize, n);
        }
    }
}
