//! Synthetic vessel registries with realistic conflicts.
//!
//! §4's example: "ship information from the MarineTraffic database may
//! conflict with that from Lloyd's: the length may differ slightly, or
//! the flag may be different due to a lack of update in one source."
//! [`generate_registries`] produces two views of the same fleet with
//! exactly those discrepancy modes (plus name-formatting noise), and
//! [`find_conflicts`]/[`resolve`] implement the §4 recipe: detect,
//! then resolve using source-quality knowledge.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which registry a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceId {
    /// A crowd-sourced live database (MarineTraffic-like): fresher but
    /// noisier.
    CrowdSourced,
    /// An authoritative register (Lloyd's-like): cleaner but staler.
    Authoritative,
}

/// One registry record describing a vessel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryRecord {
    /// Producing source.
    pub source: SourceId,
    /// MMSI if the source knows it.
    pub mmsi: Option<u32>,
    /// IMO number if known.
    pub imo: Option<u32>,
    /// Ship name as this source spells it.
    pub name: String,
    /// Call sign if known.
    pub callsign: Option<String>,
    /// Length overall, metres.
    pub length_m: f64,
    /// Flag state.
    pub flag: String,
    /// Ground-truth fleet index (never used by the algorithms; only for
    /// scoring link discovery).
    pub truth_index: usize,
}

/// A detected conflict between two matched records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Conflict {
    /// Lengths differ by more than the tolerance (metres, absolute
    /// difference).
    Length(f64),
    /// Flags differ.
    Flag(String, String),
    /// Names differ beyond formatting.
    Name(String, String),
}

/// Generate two registry views of a synthetic fleet of `n` vessels.
///
/// The crowd-sourced view always has the MMSI but sometimes lacks the
/// IMO, spells names with extra spacing/abbreviation, and measures
/// length with ±2 m noise. The authoritative view always has the IMO,
/// sometimes lacks the MMSI, and its flag can be stale (changed
/// registration not yet recorded) with probability `stale_flag_rate`.
pub fn generate_registries(
    n: usize,
    stale_flag_rate: f64,
    rng: &mut impl Rng,
) -> (Vec<RegistryRecord>, Vec<RegistryRecord>) {
    let flags = ["FRANCE", "MALTA", "PANAMA", "LIBERIA", "GREECE"];
    let mut crowd = Vec::with_capacity(n);
    let mut auth = Vec::with_capacity(n);
    for i in 0..n {
        let mmsi = 227_000_001 + i as u32;
        let imo = mda_ais_imo(i as u32);
        let base_name = format!("{} {}", NAME_STEMS[i % NAME_STEMS.len()], i);
        let length = rng.gen_range(25.0..250.0f64);
        let flag = flags[i % flags.len()];

        let crowd_name = if rng.gen_bool(0.3) {
            // Formatting noise: double spaces / prefix.
            format!("MV  {base_name}")
        } else {
            base_name.clone()
        };
        crowd.push(RegistryRecord {
            source: SourceId::CrowdSourced,
            mmsi: Some(mmsi),
            imo: if rng.gen_bool(0.7) { Some(imo) } else { None },
            name: crowd_name,
            callsign: Some(format!("FC{i:04}")),
            length_m: (length + rng.gen_range(-2.0..2.0)).round(),
            flag: flag.to_string(),
            truth_index: i,
        });

        let stale = rng.gen_bool(stale_flag_rate);
        auth.push(RegistryRecord {
            source: SourceId::Authoritative,
            mmsi: if rng.gen_bool(0.8) { Some(mmsi) } else { None },
            imo: Some(imo),
            name: base_name,
            callsign: if rng.gen_bool(0.9) { Some(format!("FC{i:04}")) } else { None },
            length_m: length.round(),
            flag: if stale { flags[(i + 1) % flags.len()].to_string() } else { flag.to_string() },
            truth_index: i,
        });
    }
    (crowd, auth)
}

const NAME_STEMS: [&str; 16] = [
    "ASTER", "BOREAL", "CORMORAN", "DAUPHIN", "ETOILE", "FLAMANT", "GOELAND", "HERMINE", "IBIS",
    "JASON", "KRAKEN", "LIBECCIO", "MISTRAL", "NEPTUNE", "ORION", "PELICAN",
];

fn mda_ais_imo(stem: u32) -> u32 {
    mda_ais::quality::imo_from_stem(910_000 + stem)
}

/// Normalise a name for comparison: collapse whitespace, strip common
/// prefixes, upper-case.
pub fn normalise_name(name: &str) -> String {
    let upper = name.to_ascii_uppercase();
    let tokens: Vec<&str> =
        upper.split_whitespace().filter(|t| !matches!(*t, "MV" | "MS" | "MT" | "SS")).collect();
    tokens.join(" ")
}

/// Detect conflicts between two records assumed to denote one vessel.
pub fn find_conflicts(a: &RegistryRecord, b: &RegistryRecord) -> Vec<Conflict> {
    let mut out = Vec::new();
    let dl = (a.length_m - b.length_m).abs();
    if dl > 3.0 {
        out.push(Conflict::Length(dl));
    }
    if a.flag != b.flag {
        out.push(Conflict::Flag(a.flag.clone(), b.flag.clone()));
    }
    if normalise_name(&a.name) != normalise_name(&b.name) {
        out.push(Conflict::Name(a.name.clone(), b.name.clone()));
    }
    out
}

/// Resolve a matched pair into one record using source-quality rules:
/// identity fields from whichever source has them (preferring the
/// authoritative register), length from the authoritative register,
/// flag from the *crowd-sourced* source (fresher, per the staleness
/// model), names normalised.
pub fn resolve(crowd: &RegistryRecord, auth: &RegistryRecord) -> RegistryRecord {
    RegistryRecord {
        source: SourceId::Authoritative,
        mmsi: auth.mmsi.or(crowd.mmsi),
        imo: auth.imo.or(crowd.imo),
        name: normalise_name(&auth.name),
        callsign: auth.callsign.clone().or_else(|| crowd.callsign.clone()),
        length_m: auth.length_m,
        flag: crowd.flag.clone(),
        truth_index: auth.truth_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn registries_describe_same_fleet_differently() {
        let mut rng = StdRng::seed_from_u64(1);
        let (crowd, auth) = generate_registries(50, 0.1, &mut rng);
        assert_eq!(crowd.len(), 50);
        assert_eq!(auth.len(), 50);
        // Crowd always has MMSI; authoritative always has IMO.
        assert!(crowd.iter().all(|r| r.mmsi.is_some()));
        assert!(auth.iter().all(|r| r.imo.is_some()));
        // Some records differ in name formatting.
        let noisy = crowd.iter().filter(|r| r.name.starts_with("MV")).count();
        assert!(noisy > 5, "formatting noise expected, got {noisy}");
    }

    #[test]
    fn stale_flags_at_requested_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let (crowd, auth) = generate_registries(400, 0.15, &mut rng);
        let stale = crowd.iter().zip(&auth).filter(|(c, a)| c.flag != a.flag).count();
        let rate = stale as f64 / 400.0;
        assert!((0.10..0.20).contains(&rate), "stale rate {rate}");
    }

    #[test]
    fn name_normalisation() {
        assert_eq!(normalise_name("MV  ASTER 1"), "ASTER 1");
        assert_eq!(normalise_name("aster 1"), "ASTER 1");
        assert_eq!(normalise_name(" MT NEPTUNE  9 "), "NEPTUNE 9");
    }

    #[test]
    fn conflicts_detected_and_resolved() {
        let mut rng = StdRng::seed_from_u64(3);
        let (crowd, auth) = generate_registries(100, 0.2, &mut rng);
        let mut any_flag_conflict = false;
        for (c, a) in crowd.iter().zip(&auth) {
            let conflicts = find_conflicts(c, a);
            if conflicts.iter().any(|x| matches!(x, Conflict::Flag(_, _))) {
                any_flag_conflict = true;
            }
            let resolved = resolve(c, a);
            assert!(resolved.mmsi.is_some());
            assert!(resolved.imo.is_some());
            assert_eq!(resolved.flag, c.flag, "flag taken from the fresh source");
            assert_eq!(resolved.length_m, a.length_m, "length from the register");
            assert!(!resolved.name.starts_with("MV"));
        }
        assert!(any_flag_conflict);
    }

    #[test]
    fn identical_records_have_no_conflicts() {
        let r = RegistryRecord {
            source: SourceId::CrowdSourced,
            mmsi: Some(1),
            imo: Some(2),
            name: "ASTER 1".into(),
            callsign: None,
            length_m: 100.0,
            flag: "FRANCE".into(),
            truth_index: 0,
        };
        let mut b = r.clone();
        b.source = SourceId::Authoritative;
        assert!(find_conflicts(&r, &b).is_empty());
        // Small length differences are tolerated.
        b.length_m = 102.0;
        assert!(find_conflicts(&r, &b).is_empty());
        b.length_m = 110.0;
        assert_eq!(find_conflicts(&r, &b).len(), 1);
    }
}
