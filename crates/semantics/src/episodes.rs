//! Semantic trajectory segmentation: stops, moves and activity episodes.
//!
//! Following the semantic-trajectory model the paper builds on (Parent
//! et al., ref 34), a raw fix sequence becomes a sequence of
//! *episodes*: `Stop(at: MARSEILLE-ANCHORAGE)`, `Move(kind: Transit)`,
//! `Move(kind: Fishing)`. Episodes are what gets linked into the
//! knowledge graph and what queries reason over.

use mda_geo::{Fix, Polygon, Position, Timestamp};
use serde::{Deserialize, Serialize};

/// What a vessel was doing during an episode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpisodeKind {
    /// Stationary (speed below the stop threshold).
    Stop,
    /// Under way at transit speeds.
    Transit,
    /// Moving at fishing speeds.
    Fishing,
}

/// One homogeneous segment of a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Activity during the episode.
    pub kind: EpisodeKind,
    /// Start time.
    pub start: Timestamp,
    /// End time.
    pub end: Timestamp,
    /// Position at episode start.
    pub start_pos: Position,
    /// Position at episode end.
    pub end_pos: Position,
    /// Name of the zone containing the episode midpoint, if any.
    pub place: Option<String>,
}

impl Episode {
    /// Episode duration in minutes.
    pub fn minutes(&self) -> f64 {
        (self.end - self.start) as f64 / 60_000.0
    }
}

/// A segmented, annotated trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticTrajectory {
    /// The vessel.
    pub vessel: mda_geo::VesselId,
    /// Episodes in time order.
    pub episodes: Vec<Episode>,
}

/// Segmentation thresholds.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Below this the vessel is stopped, knots.
    pub stop_kn: f64,
    /// Between stop and this is fishing-like movement, knots.
    pub fishing_kn: f64,
    /// Ignore episodes shorter than this (smoothing), milliseconds.
    pub min_episode: mda_geo::DurationMs,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self { stop_kn: 0.7, fishing_kn: 5.5, min_episode: 5 * mda_geo::time::MINUTE }
    }
}

fn classify(sog_kn: f64, cfg: &SegmentConfig) -> EpisodeKind {
    if sog_kn < cfg.stop_kn {
        EpisodeKind::Stop
    } else if sog_kn <= cfg.fishing_kn {
        EpisodeKind::Fishing
    } else {
        EpisodeKind::Transit
    }
}

/// Segment a fix sequence (one vessel, time-ordered) into episodes,
/// labelling each with the named zone containing its midpoint.
pub fn segment(
    fixes: &[Fix],
    zones: &[(String, Polygon)],
    cfg: SegmentConfig,
) -> Option<SemanticTrajectory> {
    let first = fixes.first()?;
    let mut episodes: Vec<Episode> = Vec::new();
    let mut cur_kind = classify(first.sog_kn, &cfg);
    let mut cur_start = 0usize;
    for (idx, f) in fixes.iter().enumerate().skip(1) {
        let kind = classify(f.sog_kn, &cfg);
        if kind != cur_kind {
            push_episode(&mut episodes, fixes, cur_start, idx - 1, cur_kind.clone(), zones);
            cur_kind = kind;
            cur_start = idx;
        }
    }
    push_episode(&mut episodes, fixes, cur_start, fixes.len() - 1, cur_kind, zones);

    // Merge tiny episodes into their predecessor (threshold smoothing),
    // then coalesce same-kind neighbours the smoothing re-joined.
    let mut merged: Vec<Episode> = Vec::with_capacity(episodes.len());
    for e in episodes {
        let tiny = e.end - e.start < cfg.min_episode;
        match merged.last_mut() {
            Some(prev) if tiny || prev.kind == e.kind => {
                prev.end = e.end;
                prev.end_pos = e.end_pos;
            }
            _ => merged.push(e),
        }
    }
    Some(SemanticTrajectory { vessel: first.id, episodes: merged })
}

fn push_episode(
    episodes: &mut Vec<Episode>,
    fixes: &[Fix],
    start: usize,
    end: usize,
    kind: EpisodeKind,
    zones: &[(String, Polygon)],
) {
    let mid = &fixes[(start + end) / 2];
    let place = zones.iter().find(|(_, poly)| poly.contains(mid.pos)).map(|(name, _)| name.clone());
    episodes.push(Episode {
        kind,
        start: fixes[start].t,
        end: fixes[end].t,
        start_pos: fixes[start].pos,
        end_pos: fixes[end].pos,
        place,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::BoundingBox;

    fn fix(t_min: i64, lat: f64, lon: f64, sog: f64) -> Fix {
        Fix::new(7, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, 90.0)
    }

    fn port_zone() -> (String, Polygon) {
        ("PORT".to_string(), Polygon::rectangle(BoundingBox::new(42.95, 4.95, 43.05, 5.05)))
    }

    #[test]
    fn stop_move_stop_segmentation() {
        let mut fixes = Vec::new();
        for i in 0..30 {
            fixes.push(fix(i, 43.0, 5.0, 0.1)); // stopped in port
        }
        for i in 30..90 {
            fixes.push(fix(i, 43.0, 5.0 + (i - 30) as f64 * 0.005, 12.0)); // transit
        }
        for i in 90..120 {
            fixes.push(fix(i, 43.0, 5.3, 0.2)); // stopped again
        }
        let st = segment(&fixes, &[port_zone()], SegmentConfig::default()).unwrap();
        assert_eq!(st.episodes.len(), 3);
        assert_eq!(st.episodes[0].kind, EpisodeKind::Stop);
        assert_eq!(st.episodes[0].place.as_deref(), Some("PORT"));
        assert_eq!(st.episodes[1].kind, EpisodeKind::Transit);
        assert_eq!(st.episodes[2].kind, EpisodeKind::Stop);
        assert_eq!(st.episodes[2].place, None);
        assert!((st.episodes[0].minutes() - 29.0).abs() < 1.1);
    }

    #[test]
    fn fishing_band_detected() {
        let mut fixes = Vec::new();
        for i in 0..20 {
            fixes.push(fix(i, 42.7, 4.5 + i as f64 * 0.003, 9.0));
        }
        for i in 20..80 {
            fixes.push(fix(i, 42.7, 4.56 + ((i % 7) as f64) * 0.001, 3.0));
        }
        let st = segment(&fixes, &[], SegmentConfig::default()).unwrap();
        assert_eq!(st.episodes.len(), 2);
        assert_eq!(st.episodes[0].kind, EpisodeKind::Transit);
        assert_eq!(st.episodes[1].kind, EpisodeKind::Fishing);
    }

    #[test]
    fn tiny_flicker_is_smoothed() {
        let mut fixes = Vec::new();
        for i in 0..30 {
            // Transit with one 2-minute "stop" blip at minute 15.
            let sog = if (15..17).contains(&i) { 0.2 } else { 12.0 };
            fixes.push(fix(i, 43.0, 5.0 + i as f64 * 0.005, sog));
        }
        let st = segment(&fixes, &[], SegmentConfig::default()).unwrap();
        assert_eq!(st.episodes.len(), 1, "blip merged: {:?}", st.episodes);
        assert_eq!(st.episodes[0].kind, EpisodeKind::Transit);
    }

    #[test]
    fn empty_input() {
        assert!(segment(&[], &[], SegmentConfig::default()).is_none());
    }

    #[test]
    fn single_fix_trajectory() {
        let st = segment(&[fix(0, 43.0, 5.0, 10.0)], &[], SegmentConfig::default()).unwrap();
        assert_eq!(st.episodes.len(), 1);
        assert_eq!(st.episodes[0].start, st.episodes[0].end);
    }
}
