//! Streaming semantic enrichment: fixes → annotated triples.
//!
//! The "automatic, real-time semantic annotation and linking of
//! maritime data" challenge of §2.6: every incoming fix is joined with
//! its zone containment and the coarse weather product, and the results
//! are written into the live knowledge graph as annotated triples. The
//! C8 experiment measures this path's throughput (triples/second).

use crate::store::{Annotation, Triple, TripleStore};
use crate::term::{Interner, TermId};
use mda_geo::{Fix, Polygon};
use serde::{Deserialize, Serialize};

/// Well-known predicate terms, interned once.
#[derive(Debug, Clone, Copy)]
pub struct Vocabulary {
    /// `:inZone` — vessel is inside a zone.
    pub in_zone: TermId,
    /// `:weather` — weather regime at the vessel.
    pub weather: TermId,
    /// `:movingState` — stopped / fishing-speed / transit.
    pub moving_state: TermId,
}

impl Vocabulary {
    /// Intern the vocabulary.
    pub fn new(interner: &mut Interner) -> Self {
        Self {
            in_zone: interner.intern(":inZone"),
            weather: interner.intern(":weather"),
            moving_state: interner.intern(":movingState"),
        }
    }
}

/// Coarse weather regimes used as graph terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeatherRegime {
    /// Under 8 m/s wind.
    Calm,
    /// 8–14 m/s.
    Moderate,
    /// Above 14 m/s.
    Rough,
}

impl WeatherRegime {
    /// Classify a wind speed.
    pub fn from_wind(wind_mps: f64) -> Self {
        if wind_mps < 8.0 {
            WeatherRegime::Calm
        } else if wind_mps < 14.0 {
            WeatherRegime::Moderate
        } else {
            WeatherRegime::Rough
        }
    }

    /// Graph term name.
    pub fn term(&self) -> &'static str {
        match self {
            WeatherRegime::Calm => ":calm",
            WeatherRegime::Moderate => ":moderate",
            WeatherRegime::Rough => ":rough",
        }
    }
}

/// The streaming enricher.
pub struct Enricher {
    vocab: Vocabulary,
    zones: Vec<(String, TermId, Polygon)>,
    regime_terms: [TermId; 3],
    state_terms: [TermId; 3],
    triples_emitted: u64,
    fixes_seen: u64,
}

impl Enricher {
    /// Build an enricher over named zones.
    pub fn new(interner: &mut Interner, zones: Vec<(String, Polygon)>) -> Self {
        let vocab = Vocabulary::new(interner);
        let zones = zones
            .into_iter()
            .map(|(name, poly)| {
                let id = interner.intern(&format!(":zone/{name}"));
                (name, id, poly)
            })
            .collect();
        let regime_terms =
            [interner.intern(":calm"), interner.intern(":moderate"), interner.intern(":rough")];
        let state_terms = [
            interner.intern(":stopped"),
            interner.intern(":fishingSpeed"),
            interner.intern(":transit"),
        ];
        Self { vocab, zones, regime_terms, state_terms, triples_emitted: 0, fixes_seen: 0 }
    }

    /// Enrich one fix: writes triples into `store`, returns how many.
    ///
    /// `vessel_term` must be the interned term of the vessel; `wind_mps`
    /// comes from the weather join upstream.
    pub fn enrich(
        &mut self,
        store: &mut TripleStore,
        vessel_term: TermId,
        fix: &Fix,
        wind_mps: f64,
    ) -> usize {
        self.fixes_seen += 1;
        let ann = Annotation { t: fix.t, pos: Some(fix.pos) };
        let mut emitted = 0;

        for (_, zone_term, poly) in &self.zones {
            if poly.contains(fix.pos) {
                store.insert_annotated(
                    Triple { s: vessel_term, p: self.vocab.in_zone, o: *zone_term },
                    ann,
                );
                emitted += 1;
            }
        }

        let regime = match WeatherRegime::from_wind(wind_mps) {
            WeatherRegime::Calm => self.regime_terms[0],
            WeatherRegime::Moderate => self.regime_terms[1],
            WeatherRegime::Rough => self.regime_terms[2],
        };
        store.insert_annotated(Triple { s: vessel_term, p: self.vocab.weather, o: regime }, ann);
        emitted += 1;

        let state = if fix.sog_kn < 0.7 {
            self.state_terms[0]
        } else if fix.sog_kn <= 5.5 {
            self.state_terms[1]
        } else {
            self.state_terms[2]
        };
        store
            .insert_annotated(Triple { s: vessel_term, p: self.vocab.moving_state, o: state }, ann);
        emitted += 1;

        self.triples_emitted += emitted as u64;
        emitted
    }

    /// `(fixes processed, triples emitted)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.fixes_seen, self.triples_emitted)
    }

    /// The vocabulary terms (for building queries).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::{BoundingBox, Position, Timestamp};

    fn setup() -> (Interner, Enricher, TripleStore) {
        let mut interner = Interner::new();
        let zones = vec![(
            "RESERVE".to_string(),
            Polygon::rectangle(BoundingBox::new(42.5, 4.5, 42.7, 4.8)),
        )];
        let enricher = Enricher::new(&mut interner, zones);
        (interner, enricher, TripleStore::new())
    }

    fn fix(t_s: i64, lat: f64, lon: f64, sog: f64) -> Fix {
        Fix::new(9, Timestamp::from_secs(t_s), Position::new(lat, lon), sog, 0.0)
    }

    #[test]
    fn fix_inside_zone_emits_three_triples() {
        let (mut i, mut e, mut store) = setup();
        let v = i.intern(":vessel/9");
        let n = e.enrich(&mut store, v, &fix(0, 42.6, 4.6, 3.0), 5.0);
        assert_eq!(n, 3, "zone + weather + state");
        let zone = i.get(":zone/RESERVE").unwrap();
        let in_zone = i.get(":inZone").unwrap();
        assert_eq!(store.matching(Some(v), Some(in_zone), Some(zone)).len(), 1);
        // Annotation present.
        let t = store.matching(Some(v), Some(in_zone), None)[0];
        assert!(store.annotation(&t).is_some());
    }

    #[test]
    fn fix_outside_zone_emits_two() {
        let (mut i, mut e, mut store) = setup();
        let v = i.intern(":vessel/9");
        let n = e.enrich(&mut store, v, &fix(0, 43.5, 5.5, 12.0), 16.0);
        assert_eq!(n, 2);
        let weather = i.get(":weather").unwrap();
        let rough = i.get(":rough").unwrap();
        assert_eq!(store.matching(Some(v), Some(weather), Some(rough)).len(), 1);
        let state = i.get(":movingState").unwrap();
        let transit = i.get(":transit").unwrap();
        assert_eq!(store.matching(Some(v), Some(state), Some(transit)).len(), 1);
    }

    #[test]
    fn weather_regimes() {
        assert_eq!(WeatherRegime::from_wind(3.0), WeatherRegime::Calm);
        assert_eq!(WeatherRegime::from_wind(10.0), WeatherRegime::Moderate);
        assert_eq!(WeatherRegime::from_wind(20.0), WeatherRegime::Rough);
    }

    #[test]
    fn counts_accumulate() {
        let (mut i, mut e, mut store) = setup();
        let v = i.intern(":vessel/9");
        for k in 0..10 {
            e.enrich(&mut store, v, &fix(k * 10, 42.6, 4.6, 3.0), 5.0);
        }
        let (fixes, triples) = e.counts();
        assert_eq!(fixes, 10);
        assert_eq!(triples, 30);
        // Store deduplicates identical facts; annotation refreshed.
        assert_eq!(store.len(), 3);
    }
}
