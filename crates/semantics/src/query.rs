//! Basic-graph-pattern queries with variables.
//!
//! A [`Pattern`] is a conjunction of triple patterns whose components
//! are constants or variables; evaluation is a left-to-right index
//! nested-loop join, with each pattern instantiated under the current
//! bindings. Small, but it is the query shape that matters for
//! integrated views ("which cargo vessels were in a protected zone?").

use crate::store::TripleStore;
use crate::term::TermId;
use std::collections::HashMap;

/// A pattern component: a constant term or a named variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTerm {
    /// A constant.
    Const(TermId),
    /// A variable, identified by name.
    Var(String),
}

impl QueryTerm {
    /// Shorthand for a variable.
    pub fn var(name: &str) -> Self {
        QueryTerm::Var(name.to_string())
    }
}

/// A conjunction of triple patterns.
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    /// The triple patterns to join.
    pub triples: Vec<(QueryTerm, QueryTerm, QueryTerm)>,
}

/// A set of variable bindings.
pub type Bindings = HashMap<String, TermId>;

impl Pattern {
    /// Start an empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a triple pattern.
    pub fn with(mut self, s: QueryTerm, p: QueryTerm, o: QueryTerm) -> Self {
        self.triples.push((s, p, o));
        self
    }

    /// Evaluate against a store, returning all solution bindings.
    pub fn solve(&self, store: &TripleStore) -> Vec<Bindings> {
        let mut solutions = vec![Bindings::new()];
        for (ps, pp, po) in &self.triples {
            let mut next = Vec::new();
            for binding in &solutions {
                let s = resolve(ps, binding);
                let p = resolve(pp, binding);
                let o = resolve(po, binding);
                for t in store.matching(s, p, o) {
                    let mut b = binding.clone();
                    if !bind(ps, t.s, &mut b) || !bind(pp, t.p, &mut b) || !bind(po, t.o, &mut b) {
                        continue;
                    }
                    next.push(b);
                }
            }
            solutions = next;
            if solutions.is_empty() {
                break;
            }
        }
        solutions
    }
}

fn resolve(qt: &QueryTerm, b: &Bindings) -> Option<TermId> {
    match qt {
        QueryTerm::Const(id) => Some(*id),
        QueryTerm::Var(name) => b.get(name).copied(),
    }
}

fn bind(qt: &QueryTerm, value: TermId, b: &mut Bindings) -> bool {
    match qt {
        QueryTerm::Const(id) => *id == value,
        QueryTerm::Var(name) => match b.get(name) {
            Some(existing) => *existing == value,
            None => {
                b.insert(name.clone(), value);
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Triple;
    use crate::term::Interner;

    fn setup() -> (TripleStore, Interner) {
        let mut i = Interner::new();
        let mut s = TripleStore::new();
        let add = |i: &mut Interner, s: &mut TripleStore, a: &str, b: &str, c: &str| {
            let t = Triple { s: i.intern(a), p: i.intern(b), o: i.intern(c) };
            s.insert(t);
        };
        add(&mut i, &mut s, "v1", "type", "cargo");
        add(&mut i, &mut s, "v2", "type", "fishing");
        add(&mut i, &mut s, "v3", "type", "cargo");
        add(&mut i, &mut s, "v1", "inZone", "reserve");
        add(&mut i, &mut s, "v2", "inZone", "reserve");
        add(&mut i, &mut s, "v3", "inZone", "port");
        add(&mut i, &mut s, "reserve", "kind", "protected");
        (s, i)
    }

    #[test]
    fn single_pattern_with_variable() {
        let (s, mut i) = setup();
        let q = Pattern::new().with(
            QueryTerm::var("v"),
            QueryTerm::Const(i.intern("type")),
            QueryTerm::Const(i.intern("cargo")),
        );
        let sols = q.solve(&s);
        assert_eq!(sols.len(), 2);
        let names: Vec<&str> = sols.iter().map(|b| i.name(b["v"]).unwrap()).collect();
        assert!(names.contains(&"v1") && names.contains(&"v3"));
    }

    #[test]
    fn join_across_patterns() {
        let (s, mut i) = setup();
        // Cargo vessels inside a protected zone.
        let q = Pattern::new()
            .with(
                QueryTerm::var("v"),
                QueryTerm::Const(i.intern("type")),
                QueryTerm::Const(i.intern("cargo")),
            )
            .with(QueryTerm::var("v"), QueryTerm::Const(i.intern("inZone")), QueryTerm::var("z"))
            .with(
                QueryTerm::var("z"),
                QueryTerm::Const(i.intern("kind")),
                QueryTerm::Const(i.intern("protected")),
            );
        let sols = q.solve(&s);
        assert_eq!(sols.len(), 1);
        assert_eq!(i.name(sols[0]["v"]), Some("v1"));
        assert_eq!(i.name(sols[0]["z"]), Some("reserve"));
    }

    #[test]
    fn shared_variable_must_agree() {
        let (s, mut i) = setup();
        // ?v type ?t and ?v inZone ?t — no zone equals a type term.
        let q = Pattern::new()
            .with(QueryTerm::var("v"), QueryTerm::Const(i.intern("type")), QueryTerm::var("t"))
            .with(QueryTerm::var("v"), QueryTerm::Const(i.intern("inZone")), QueryTerm::var("t"));
        assert!(q.solve(&s).is_empty());
    }

    #[test]
    fn empty_pattern_yields_one_empty_solution() {
        let (s, _) = setup();
        let sols = Pattern::new().solve(&s);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn no_match_yields_no_solutions() {
        let (s, mut i) = setup();
        let q = Pattern::new().with(
            QueryTerm::var("v"),
            QueryTerm::Const(i.intern("type")),
            QueryTerm::Const(i.intern("submarine")),
        );
        assert!(q.solve(&s).is_empty());
    }
}
