//! Link discovery across vessel registries.
//!
//! §2.2: link-discovery tools are restricted "to RDF properties of
//! specific (mostly numerical) types" and unproven on streaming +
//! archival integration. The implementation here is the classical
//! pipeline — blocking, per-field similarity, weighted scoring,
//! threshold — over the *mixed* field types vessel records actually
//! have (exact identifiers, fuzzy names, noisy numerics), with
//! precision/recall scoring against the simulator's ground truth.

use crate::registry::{normalise_name, RegistryRecord};
use std::collections::HashMap;

/// Link-discovery configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Score threshold for accepting a link, in `[0,1]`.
    pub threshold: f64,
    /// Weight of exact identifier agreement (MMSI/IMO/callsign).
    pub w_identifier: f64,
    /// Weight of name similarity.
    pub w_name: f64,
    /// Weight of numeric (length) closeness.
    pub w_numeric: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self { threshold: 0.75, w_identifier: 0.6, w_name: 0.3, w_numeric: 0.1 }
    }
}

/// A discovered link between record indices (left list, right list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Index into the left record list.
    pub left: usize,
    /// Index into the right record list.
    pub right: usize,
    /// Match score in `[0,1]`.
    pub score: f64,
}

/// Precision/recall of discovered links against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkScore {
    /// Correct links found.
    pub true_positives: usize,
    /// Spurious links.
    pub false_positives: usize,
    /// Missed true pairs.
    pub false_negatives: usize,
}

impl LinkScore {
    /// Precision.
    pub fn precision(&self) -> f64 {
        let d = self.true_positives + self.false_positives;
        if d == 0 {
            return 0.0;
        }
        self.true_positives as f64 / d as f64
    }

    /// Recall.
    pub fn recall(&self) -> f64 {
        let d = self.true_positives + self.false_negatives;
        if d == 0 {
            return 0.0;
        }
        self.true_positives as f64 / d as f64
    }

    /// F1 measure.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Levenshtein distance (iterative two-row).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Name similarity in `[0,1]`: 1 − normalised Levenshtein over
/// normalised names.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let (na, nb) = (normalise_name(a), normalise_name(b));
    let max = na.chars().count().max(nb.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&na, &nb) as f64 / max as f64
}

fn identifier_similarity(a: &RegistryRecord, b: &RegistryRecord) -> Option<f64> {
    // Any shared hard identifier decides; absent identifiers abstain.
    let mut seen = false;
    for (x, y) in [(a.mmsi, b.mmsi), (a.imo, b.imo)] {
        if let (Some(x), Some(y)) = (x, y) {
            seen = true;
            if x == y {
                return Some(1.0);
            }
        }
    }
    if let (Some(x), Some(y)) = (&a.callsign, &b.callsign) {
        seen = true;
        if x == y {
            return Some(1.0);
        }
    }
    if seen {
        Some(0.0)
    } else {
        None
    }
}

fn numeric_similarity(a: f64, b: f64) -> f64 {
    let rel = (a - b).abs() / a.abs().max(b.abs()).max(1.0);
    (1.0 - rel * 10.0).max(0.0) // 10% relative difference → 0
}

/// Pair score in `[0,1]`.
pub fn pair_score(a: &RegistryRecord, b: &RegistryRecord, cfg: &LinkConfig) -> f64 {
    let name = name_similarity(&a.name, &b.name);
    let num = numeric_similarity(a.length_m, b.length_m);
    match identifier_similarity(a, b) {
        Some(id) => {
            (cfg.w_identifier * id + cfg.w_name * name + cfg.w_numeric * num)
                / (cfg.w_identifier + cfg.w_name + cfg.w_numeric)
        }
        None => (cfg.w_name * name + cfg.w_numeric * num) / (cfg.w_name + cfg.w_numeric),
    }
}

/// Blocking key: first letter of the normalised name. Cuts the candidate
/// space by ~the alphabet size while (in this domain) never separating
/// true pairs — name noise does not change the first letter.
fn block_key(r: &RegistryRecord) -> char {
    normalise_name(&r.name).chars().next().unwrap_or('#')
}

/// Discover links between two record lists. Each left record links to
/// at most one right record (best score above threshold), greedily.
pub fn discover_links(
    left: &[RegistryRecord],
    right: &[RegistryRecord],
    cfg: &LinkConfig,
) -> Vec<Link> {
    // Block the right side.
    let mut blocks: HashMap<char, Vec<usize>> = HashMap::new();
    for (j, r) in right.iter().enumerate() {
        blocks.entry(block_key(r)).or_default().push(j);
    }
    let mut candidates: Vec<Link> = Vec::new();
    for (i, l) in left.iter().enumerate() {
        if let Some(js) = blocks.get(&block_key(l)) {
            for &j in js {
                let score = pair_score(l, &right[j], cfg);
                if score >= cfg.threshold {
                    candidates.push(Link { left: i, right: j, score });
                }
            }
        }
    }
    // Greedy one-to-one: best scores first.
    candidates.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_left = vec![false; left.len()];
    let mut used_right = vec![false; right.len()];
    let mut out = Vec::new();
    for c in candidates {
        if !used_left[c.left] && !used_right[c.right] {
            used_left[c.left] = true;
            used_right[c.right] = true;
            out.push(c);
        }
    }
    out
}

/// Score links against the records' ground-truth indices.
pub fn score_links(links: &[Link], left: &[RegistryRecord], right: &[RegistryRecord]) -> LinkScore {
    let tp =
        links.iter().filter(|l| left[l.left].truth_index == right[l.right].truth_index).count();
    let fp = links.len() - tp;
    // Every left record has exactly one true counterpart in this setup.
    let fnr = left.len() - tp;
    LinkScore { true_positives: tp, false_positives: fp, false_negatives: fnr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::generate_registries;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("aster", "aster"), 0);
    }

    #[test]
    fn name_similarity_tolerates_formatting() {
        assert!(name_similarity("MV  ASTER 1", "ASTER 1") > 0.99);
        assert!(name_similarity("ASTER 1", "ASTER 12") > 0.8);
        assert!(name_similarity("ASTER 1", "KRAKEN 9") < 0.5);
    }

    #[test]
    fn identifier_agreement_dominates() {
        let mut rng = StdRng::seed_from_u64(1);
        let (crowd, auth) = generate_registries(10, 0.1, &mut rng);
        let cfg = LinkConfig::default();
        let same = pair_score(&crowd[0], &auth[0], &cfg);
        let diff = pair_score(&crowd[0], &auth[5], &cfg);
        assert!(same > 0.9, "same vessel score {same}");
        assert!(diff < 0.6, "different vessel score {diff}");
    }

    #[test]
    fn discovery_on_clean_fleet_is_accurate() {
        let mut rng = StdRng::seed_from_u64(2);
        let (crowd, auth) = generate_registries(200, 0.1, &mut rng);
        let links = discover_links(&crowd, &auth, &LinkConfig::default());
        let score = score_links(&links, &crowd, &auth);
        assert!(score.precision() > 0.97, "precision {}", score.precision());
        assert!(score.recall() > 0.95, "recall {}", score.recall());
        assert!(score.f1() > 0.96);
    }

    #[test]
    fn one_to_one_constraint() {
        let mut rng = StdRng::seed_from_u64(3);
        let (crowd, auth) = generate_registries(50, 0.1, &mut rng);
        let links = discover_links(&crowd, &auth, &LinkConfig::default());
        let mut lefts: Vec<usize> = links.iter().map(|l| l.left).collect();
        let mut rights: Vec<usize> = links.iter().map(|l| l.right).collect();
        lefts.sort_unstable();
        lefts.dedup();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(lefts.len(), links.len());
        assert_eq!(rights.len(), links.len());
    }

    #[test]
    fn higher_threshold_trades_recall_for_precision() {
        let mut rng = StdRng::seed_from_u64(4);
        let (crowd, auth) = generate_registries(150, 0.1, &mut rng);
        let loose = score_links(
            &discover_links(&crowd, &auth, &LinkConfig { threshold: 0.5, ..Default::default() }),
            &crowd,
            &auth,
        );
        let strict = score_links(
            &discover_links(&crowd, &auth, &LinkConfig { threshold: 0.95, ..Default::default() }),
            &crowd,
            &auth,
        );
        assert!(strict.precision() >= loose.precision() - 1e-9);
        assert!(strict.recall() <= loose.recall() + 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let links = discover_links(&[], &[], &LinkConfig::default());
        assert!(links.is_empty());
        let s = score_links(&links, &[], &[]);
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
    }
}
