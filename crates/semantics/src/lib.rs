//! Semantic integration of maritime data (paper §2.2 and §2.5).
//!
//! The paper's complaint: RDF stores "are not tailored to offer
//! efficient trajectory-oriented data management" and link-discovery
//! tools cannot integrate streaming with archival data in real time.
//! This crate is the trajectory-oriented semantic layer built for that
//! job:
//!
//! - [`term`] — string interning (compact `TermId`s).
//! - [`store`] — an in-memory triple store with SPO/POS/OSP indexes and
//!   optional spatio-temporal annotations per triple; this is the "live
//!   knowledge graph" that streaming enrichment writes into.
//! - [`query`] — basic-graph-pattern matching with variables plus
//!   spatio-temporal filters (time range, bounding box).
//! - [`episodes`] — semantic trajectory segmentation (stop/move/fishing
//!   episodes annotated with zones), after Parent et al., ref 34.
//! - [`registry`] — synthetic vessel registries with the conflicting-
//!   record structure of §4 (MarineTraffic vs Lloyd's) and conflict
//!   detection/resolution.
//! - [`link`] — link discovery across registries: blocking, string and
//!   numeric similarity, and precision/recall scoring against ground
//!   truth (the C8 experiment).
//! - [`enrich`] — streaming enrichment: fixes × zones × weather →
//!   triples, with throughput accounting.
//!
//! ## Example
//!
//! ```
//! use mda_semantics::store::Triple;
//! use mda_semantics::{Interner, TripleStore};
//!
//! let mut terms = Interner::new();
//! let mut kg = TripleStore::new();
//! let s = terms.intern("vessel:227000001");
//! let p = terms.intern("rdf:type");
//! let o = terms.intern("Tanker");
//! kg.insert(Triple { s, p, o });
//! assert!(kg.contains(&Triple { s, p, o }));
//! assert_eq!(kg.len(), 1);
//! ```

pub mod enrich;
pub mod episodes;
pub mod link;
pub mod query;
pub mod registry;
pub mod store;
pub mod term;

pub use episodes::{Episode, EpisodeKind, SemanticTrajectory};
pub use link::{discover_links, LinkConfig, LinkScore};
pub use query::{Pattern, QueryTerm};
pub use registry::{RegistryRecord, SourceId};
pub use store::{Annotation, TripleStore};
pub use term::{Interner, TermId};
