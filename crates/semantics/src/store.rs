//! An in-memory triple store with spatio-temporal annotations.
//!
//! Triples are `(subject, predicate, object)` over interned terms with
//! SPO/POS/OSP ordered indexes, so any single-pattern lookup is a range
//! scan. A triple may carry an [`Annotation`] (event time and position),
//! which is what makes the store *trajectory-oriented*: spatio-temporal
//! filters run on the annotation without string round-trips.

use crate::term::TermId;
use mda_geo::{BoundingBox, Position, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A triple of interned terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Subject.
    pub s: TermId,
    /// Predicate.
    pub p: TermId,
    /// Object.
    pub o: TermId,
}

/// Optional spatio-temporal annotation of a triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Event time of the fact.
    pub t: Timestamp,
    /// Where the fact holds, if localisable.
    pub pos: Option<Position>,
}

/// The triple store.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos_idx: BTreeSet<(TermId, TermId, TermId)>, // (p, o, s)
    osp: BTreeSet<(TermId, TermId, TermId)>,     // (o, s, p)
    annotations: std::collections::HashMap<Triple, Annotation>,
}

impl TripleStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        let new = self.spo.insert((t.s, t.p, t.o));
        if new {
            self.pos_idx.insert((t.p, t.o, t.s));
            self.osp.insert((t.o, t.s, t.p));
        }
        new
    }

    /// Insert a triple with an annotation.
    pub fn insert_annotated(&mut self, t: Triple, a: Annotation) -> bool {
        let new = self.insert(t);
        self.annotations.insert(t, a);
        new
    }

    /// The annotation of a triple, if any.
    pub fn annotation(&self, t: &Triple) -> Option<&Annotation> {
        self.annotations.get(t)
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// True if the triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(&(t.s, t.p, t.o))
    }

    /// All triples matching a pattern with optional components, using
    /// the most selective index available.
    pub fn matching(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        let mut out = Vec::new();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    out.push(Triple { s, p, o });
                }
            }
            (Some(s), p, o) => {
                for &(ts, tp, to) in self
                    .spo
                    .range((s, TermId(0), TermId(0))..=(s, TermId(u32::MAX), TermId(u32::MAX)))
                {
                    if p.map(|x| x == tp).unwrap_or(true) && o.map(|x| x == to).unwrap_or(true) {
                        out.push(Triple { s: ts, p: tp, o: to });
                    }
                }
            }
            (None, Some(p), o) => {
                for &(tp, to, ts) in self
                    .pos_idx
                    .range((p, TermId(0), TermId(0))..=(p, TermId(u32::MAX), TermId(u32::MAX)))
                {
                    if o.map(|x| x == to).unwrap_or(true) {
                        out.push(Triple { s: ts, p: tp, o: to });
                    }
                }
            }
            (None, None, Some(o)) => {
                for &(to, ts, tp) in self
                    .osp
                    .range((o, TermId(0), TermId(0))..=(o, TermId(u32::MAX), TermId(u32::MAX)))
                {
                    out.push(Triple { s: ts, p: tp, o: to });
                }
            }
            (None, None, None) => {
                out.extend(self.spo.iter().map(|&(s, p, o)| Triple { s, p, o }));
            }
        }
        out
    }

    /// Triples matching the pattern whose annotation falls inside the
    /// optional time range and bounding box. Triples without an
    /// annotation never match a spatio-temporal filter.
    pub fn matching_st(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        time: Option<(Timestamp, Timestamp)>,
        area: Option<&BoundingBox>,
    ) -> Vec<Triple> {
        self.matching(s, p, o)
            .into_iter()
            .filter(|t| {
                if time.is_none() && area.is_none() {
                    return true;
                }
                let Some(a) = self.annotations.get(t) else { return false };
                if let Some((lo, hi)) = time {
                    if a.t < lo || a.t > hi {
                        return false;
                    }
                }
                if let Some(bb) = area {
                    match a.pos {
                        Some(p) if bb.contains(p) => {}
                        _ => return false,
                    }
                }
                true
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Interner;

    fn setup() -> (TripleStore, Interner, Vec<TermId>) {
        let mut i = Interner::new();
        let ids: Vec<TermId> = ["v1", "v2", "inZone", "type", "reserve", "cargo", "port"]
            .iter()
            .map(|n| i.intern(n))
            .collect();
        let mut s = TripleStore::new();
        // v1 inZone reserve; v1 type cargo; v2 inZone port.
        s.insert(Triple { s: ids[0], p: ids[2], o: ids[4] });
        s.insert(Triple { s: ids[0], p: ids[3], o: ids[5] });
        s.insert(Triple { s: ids[1], p: ids[2], o: ids[6] });
        (s, i, ids)
    }

    #[test]
    fn insert_dedup() {
        let (mut s, _, ids) = setup();
        assert_eq!(s.len(), 3);
        assert!(!s.insert(Triple { s: ids[0], p: ids[2], o: ids[4] }));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn pattern_lookups_use_all_indexes() {
        let (s, _, ids) = setup();
        // By subject.
        assert_eq!(s.matching(Some(ids[0]), None, None).len(), 2);
        // By predicate.
        assert_eq!(s.matching(None, Some(ids[2]), None).len(), 2);
        // By object.
        assert_eq!(s.matching(None, None, Some(ids[4])).len(), 1);
        // By predicate+object.
        assert_eq!(s.matching(None, Some(ids[2]), Some(ids[6])).len(), 1);
        // Exact.
        assert_eq!(s.matching(Some(ids[1]), Some(ids[2]), Some(ids[6])).len(), 1);
        // Everything.
        assert_eq!(s.matching(None, None, None).len(), 3);
        // Miss.
        assert!(s.matching(Some(ids[1]), Some(ids[3]), None).is_empty());
    }

    #[test]
    fn annotations_and_st_filters() {
        let (mut s, mut i, ids) = setup();
        let t = Triple { s: ids[1], p: i.intern("at"), o: i.intern("cell-42") };
        s.insert_annotated(
            t,
            Annotation { t: Timestamp::from_secs(100), pos: Some(Position::new(43.0, 5.0)) },
        );
        assert!(s.annotation(&t).is_some());

        // Time filter hits.
        let hits = s.matching_st(
            Some(ids[1]),
            None,
            None,
            Some((Timestamp::from_secs(50), Timestamp::from_secs(150))),
            None,
        );
        assert_eq!(hits.len(), 1);
        // Time filter misses.
        let misses = s.matching_st(
            Some(ids[1]),
            None,
            None,
            Some((Timestamp::from_secs(200), Timestamp::from_secs(300))),
            None,
        );
        assert!(misses.is_empty());
        // Spatial filter.
        let in_box =
            s.matching_st(None, None, None, None, Some(&BoundingBox::new(42.0, 4.0, 44.0, 6.0)));
        assert_eq!(in_box.len(), 1);
        let out_box =
            s.matching_st(None, None, None, None, Some(&BoundingBox::new(0.0, 0.0, 1.0, 1.0)));
        assert!(out_box.is_empty());
    }

    #[test]
    fn unannotated_triples_fail_st_filters() {
        let (s, _, ids) = setup();
        let hits =
            s.matching_st(Some(ids[0]), None, None, Some((Timestamp::MIN, Timestamp::MAX)), None);
        assert!(hits.is_empty(), "no annotation, no spatio-temporal match");
    }
}
