//! Time histograms for the temporal dimension of the operator picture.

use mda_geo::{DurationMs, Timestamp};
use serde::{Deserialize, Serialize};

/// A fixed-width time histogram anchored at a start time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeHistogram {
    start: Timestamp,
    bucket: DurationMs,
    counts: Vec<u64>,
}

impl TimeHistogram {
    /// New histogram covering `[start, start + bucket * n)`.
    pub fn new(start: Timestamp, bucket: DurationMs, n: usize) -> Self {
        assert!(bucket > 0 && n > 0);
        Self { start, bucket, counts: vec![0; n] }
    }

    /// Count an event; returns `false` (dropping it) when outside the
    /// covered span.
    pub fn add(&mut self, t: Timestamp) -> bool {
        let offset = t - self.start;
        if offset < 0 {
            return false;
        }
        let idx = (offset / self.bucket) as usize;
        if idx >= self.counts.len() {
            return false;
        }
        self.counts[idx] += 1;
        true
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total counted events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The bucket with the highest count `(index, count)`.
    pub fn peak(&self) -> (usize, u64) {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, c)| (i, *c))
            .unwrap_or((0, 0))
    }

    /// Centred moving average with window `2k+1` (edges use partial
    /// windows).
    pub fn moving_average(&self, k: usize) -> Vec<f64> {
        let n = self.counts.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(k);
                let hi = (i + k).min(n - 1);
                let sum: u64 = self.counts[lo..=hi].iter().sum();
                sum as f64 / (hi - lo + 1) as f64
            })
            .collect()
    }

    /// A one-line sparkline of the histogram.
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        self.counts
            .iter()
            .map(|c| {
                if max == 0 {
                    BARS[0]
                } else {
                    BARS[((*c as f64 / max as f64) * 7.0).round() as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;

    #[test]
    fn bucketing() {
        let mut h = TimeHistogram::new(Timestamp(0), MINUTE, 10);
        assert!(h.add(Timestamp(30_000)));
        assert!(h.add(Timestamp(59_999)));
        assert!(h.add(Timestamp(60_000)));
        assert!(!h.add(Timestamp(-1)));
        assert!(!h.add(Timestamp(10 * MINUTE)));
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn peak_detection() {
        let mut h = TimeHistogram::new(Timestamp(0), MINUTE, 5);
        for _ in 0..7 {
            h.add(Timestamp(3 * MINUTE + 1));
        }
        h.add(Timestamp(0));
        assert_eq!(h.peak(), (3, 7));
    }

    #[test]
    fn moving_average_smooths() {
        let mut h = TimeHistogram::new(Timestamp(0), MINUTE, 5);
        for _ in 0..10 {
            h.add(Timestamp(2 * MINUTE));
        }
        let ma = h.moving_average(1);
        assert_eq!(ma.len(), 5);
        assert!((ma[2] - 10.0 / 3.0).abs() < 1e-12);
        assert!((ma[0] - 0.0).abs() < 1e-12);
        // Mass is redistributed, peak flattened.
        assert!(ma[2] < 10.0);
    }

    #[test]
    fn sparkline_length_and_extremes() {
        let mut h = TimeHistogram::new(Timestamp(0), MINUTE, 4);
        for _ in 0..8 {
            h.add(Timestamp(0));
        }
        h.add(Timestamp(MINUTE));
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().next().unwrap(), '█');
        assert_eq!(s.chars().nth(3).unwrap(), '▁');
    }
}
