//! Visual analytics substrate (paper §3.2).
//!
//! No widgets — the computational layer every maritime VA tool needs:
//!
//! - [`raster`] — density rasters over a region (the data behind
//!   Figure 1's coverage map).
//! - [`render`] — ASCII and PPM renderings of rasters, so examples and
//!   experiments can *show* spatial results in a terminal or file.
//! - [`pyramid`] — multi-resolution aggregation with drill-down /
//!   zoom-in queries ("scalable spatio-temporal analytical querying" at
//!   "desired scales and levels of detail").
//! - [`timeseries`] — time histograms for the temporal dimension of the
//!   operator picture.
//! - [`flows`] — origin/destination flow aggregation between named
//!   regions (the flow-map building block).

pub mod flows;
pub mod pyramid;
pub mod raster;
pub mod render;
pub mod timeseries;

pub use flows::FlowMatrix;
pub use pyramid::AggregationPyramid;
pub use raster::DensityRaster;
pub use render::{render_ascii, render_ppm};
pub use timeseries::TimeHistogram;
