//! Visual analytics substrate (paper §3.2).
//!
//! No widgets — the computational layer every maritime VA tool needs:
//!
//! - [`raster`] — density rasters over a region (the data behind
//!   Figure 1's coverage map).
//! - [`render`] — ASCII and PPM renderings of rasters, so examples and
//!   experiments can *show* spatial results in a terminal or file.
//! - [`pyramid`] — multi-resolution aggregation with drill-down /
//!   zoom-in queries ("scalable spatio-temporal analytical querying" at
//!   "desired scales and levels of detail").
//! - [`timeseries`] — time histograms for the temporal dimension of the
//!   operator picture.
//! - [`flows`] — origin/destination flow aggregation between named
//!   regions (the flow-map building block).
//!
//! ## Example
//!
//! ```
//! use mda_geo::{BoundingBox, Position};
//! use mda_viz::DensityRaster;
//!
//! let mut raster = DensityRaster::new(BoundingBox::new(42.0, 4.0, 44.0, 6.0), 8, 8);
//! raster.add(Position::new(43.00, 5.00));
//! raster.add(Position::new(43.01, 5.01));
//! assert_eq!(raster.total(), 2);
//! assert!(raster.max_count() >= 1);
//! ```

pub mod flows;
pub mod pyramid;
pub mod raster;
pub mod render;
pub mod timeseries;

pub use flows::FlowMatrix;
pub use pyramid::AggregationPyramid;
pub use raster::DensityRaster;
pub use render::{render_ascii, render_ppm};
pub use timeseries::TimeHistogram;
