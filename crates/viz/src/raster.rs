//! Density rasters: position counts over a gridded region.

use mda_geo::{BoundingBox, Position};
use serde::{Deserialize, Serialize};

/// A `rows × cols` count raster over a bounding box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityRaster {
    bounds: BoundingBox,
    rows: usize,
    cols: usize,
    counts: Vec<u64>,
    total: u64,
}

impl DensityRaster {
    /// New zeroed raster.
    pub fn new(bounds: BoundingBox, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        Self { bounds, rows, cols, counts: vec![0; rows * cols], total: 0 }
    }

    /// Raster shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The covered region.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    /// Total positions added (including those outside the bounds, which
    /// are dropped — see [`DensityRaster::add`]).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Row/col of a position, `None` if outside the bounds.
    pub fn cell_of(&self, p: Position) -> Option<(usize, usize)> {
        if !self.bounds.contains(p) {
            return None;
        }
        let r =
            ((p.lat - self.bounds.min_lat) / self.bounds.lat_span() * self.rows as f64) as usize;
        let c =
            ((p.lon - self.bounds.min_lon) / self.bounds.lon_span() * self.cols as f64) as usize;
        Some((r.min(self.rows - 1), c.min(self.cols - 1)))
    }

    /// Count a position; positions outside the bounds are ignored.
    /// Returns whether it was counted.
    pub fn add(&mut self, p: Position) -> bool {
        match self.cell_of(p) {
            Some((r, c)) => {
                self.counts[r * self.cols + c] += 1;
                self.total += 1;
                true
            }
            None => false,
        }
    }

    /// Count of one cell.
    pub fn count(&self, row: usize, col: usize) -> u64 {
        self.counts[row * self.cols + col]
    }

    /// Maximum cell count.
    pub fn max_count(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Number of non-empty cells (coverage measure for Figure 1).
    pub fn occupied_cells(&self) -> usize {
        self.counts.iter().filter(|c| **c > 0).count()
    }

    /// Fraction of cells with at least one observation.
    pub fn coverage(&self) -> f64 {
        self.occupied_cells() as f64 / (self.rows * self.cols) as f64
    }

    /// Merge another raster of identical geometry into this one.
    pub fn merge(&mut self, other: &DensityRaster) {
        assert_eq!(self.shape(), other.shape(), "raster shapes differ");
        assert_eq!(self.bounds, other.bounds, "raster bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Row-major access to the raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mutable access to the raw counts (pyramid construction only).
    pub(crate) fn counts_mut(&mut self) -> &mut [u64] {
        &mut self.counts
    }

    /// Adjust the stored total by a signed delta (pyramid construction
    /// only).
    pub(crate) fn adjust_total(&mut self, delta: i64) {
        self.total = (self.total as i64 + delta).max(0) as u64;
    }

    /// Sum of counts in a sub-window of cells (inclusive bounds,
    /// clamped).
    pub fn window_sum(&self, r0: usize, c0: usize, r1: usize, c1: usize) -> u64 {
        let r1 = r1.min(self.rows - 1);
        let c1 = c1.min(self.cols - 1);
        let mut sum = 0;
        for r in r0..=r1 {
            for c in c0..=c1 {
                sum += self.counts[r * self.cols + c];
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raster() -> DensityRaster {
        DensityRaster::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 10, 10)
    }

    #[test]
    fn add_and_count() {
        let mut r = raster();
        assert!(r.add(Position::new(0.5, 0.5)));
        assert!(r.add(Position::new(0.6, 0.6)));
        assert!(r.add(Position::new(9.5, 9.5)));
        assert!(!r.add(Position::new(-1.0, 5.0)), "outside dropped");
        assert_eq!(r.count(0, 0), 2);
        assert_eq!(r.count(9, 9), 1);
        assert_eq!(r.total(), 3);
        assert_eq!(r.max_count(), 2);
    }

    #[test]
    fn coverage_metrics() {
        let mut r = raster();
        for i in 0..10 {
            r.add(Position::new(i as f64 + 0.5, 0.5));
        }
        assert_eq!(r.occupied_cells(), 10);
        assert!((r.coverage() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn border_positions_clamp_into_last_cell() {
        let mut r = raster();
        assert!(r.add(Position::new(10.0, 10.0)));
        assert_eq!(r.count(9, 9), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = raster();
        let mut b = raster();
        a.add(Position::new(1.5, 1.5));
        b.add(Position::new(1.5, 1.5));
        b.add(Position::new(2.5, 2.5));
        a.merge(&b);
        assert_eq!(a.count(1, 1), 2);
        assert_eq!(a.count(2, 2), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn window_sum_clamps() {
        let mut r = raster();
        for lat in [1.5, 2.5, 3.5] {
            r.add(Position::new(lat, 1.5));
        }
        assert_eq!(r.window_sum(1, 1, 3, 1), 3);
        assert_eq!(r.window_sum(1, 1, 99, 99), 3);
        assert_eq!(r.window_sum(0, 0, 0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn merge_rejects_mismatched() {
        let mut a = raster();
        let b = DensityRaster::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 5, 5);
        a.merge(&b);
    }
}
