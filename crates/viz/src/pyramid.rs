//! Multi-resolution aggregation pyramids for drill-down queries.
//!
//! Level 0 is the finest raster; each coarser level aggregates 2×2
//! blocks. Region sums at any zoom level are O(cells at that level),
//! which is what makes "zoom-in on user-defined spatio-temporal regions"
//! interactive instead of a re-scan.

use crate::raster::DensityRaster;
use mda_geo::{BoundingBox, Position};

/// A stack of rasters from fine (level 0) to coarse.
#[derive(Debug, Clone)]
pub struct AggregationPyramid {
    levels: Vec<DensityRaster>,
}

impl AggregationPyramid {
    /// Build from positions: level 0 has `base_rows × base_cols` cells
    /// (both must be powers of two), plus `ceil(log2)` coarser levels
    /// down to 1×1.
    pub fn build(
        bounds: BoundingBox,
        base_rows: usize,
        base_cols: usize,
        positions: impl IntoIterator<Item = Position>,
    ) -> Self {
        assert!(base_rows.is_power_of_two() && base_cols.is_power_of_two());
        let mut base = DensityRaster::new(bounds, base_rows, base_cols);
        for p in positions {
            base.add(p);
        }
        Self::from_base(base)
    }

    /// Build the coarser levels above an existing base raster.
    pub fn from_base(base: DensityRaster) -> Self {
        let (rows, cols) = base.shape();
        assert!(rows.is_power_of_two() && cols.is_power_of_two());
        let mut levels = vec![base];
        loop {
            let prev = levels.last().expect("at least the base");
            let (pr, pc) = prev.shape();
            if pr == 1 && pc == 1 {
                break;
            }
            let nr = (pr / 2).max(1);
            let nc = (pc / 2).max(1);
            let mut next = DensityRaster::new(*prev.bounds(), nr, nc);
            // Aggregate counts directly (not via add) by summing blocks.
            for r in 0..nr {
                for c in 0..nc {
                    let sum = prev.window_sum(
                        r * pr / nr,
                        c * pc / nc,
                        (r + 1) * pr / nr - 1,
                        (c + 1) * pc / nc - 1,
                    );
                    next.set_count(r, c, sum);
                }
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// Number of levels (level 0 = finest).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The raster at a level.
    pub fn level(&self, level: usize) -> &DensityRaster {
        &self.levels[level]
    }

    /// Total observations (identical at every level).
    pub fn total(&self) -> u64 {
        self.levels[0].total()
    }

    /// Sum of observations inside `area`, evaluated at the given level
    /// (coarser levels answer faster but with cell-granular boundaries).
    pub fn region_sum(&self, level: usize, area: &BoundingBox) -> u64 {
        let raster = &self.levels[level];
        let b = raster.bounds();
        let (rows, cols) = raster.shape();
        if !b.intersects(area) {
            return 0;
        }
        let clamp = |v: f64, max: usize| (v.max(0.0) as usize).min(max - 1);
        let r0 = clamp((area.min_lat - b.min_lat) / b.lat_span() * rows as f64, rows);
        let r1 = clamp((area.max_lat - b.min_lat) / b.lat_span() * rows as f64, rows);
        let c0 = clamp((area.min_lon - b.min_lon) / b.lon_span() * cols as f64, cols);
        let c1 = clamp((area.max_lon - b.min_lon) / b.lon_span() * cols as f64, cols);
        raster.window_sum(r0, c0, r1, c1)
    }
}

impl DensityRaster {
    /// Overwrite one cell's count (pyramid construction only).
    pub(crate) fn set_count(&mut self, row: usize, col: usize, value: u64) {
        let (_, cols) = self.shape();
        let idx = row * cols + col;
        let old = self.counts_mut()[idx];
        self.counts_mut()[idx] = value;
        self.adjust_total(value as i64 - old as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<Position> {
        // 64 positions clustered in the NE quadrant plus 8 scattered SW.
        let mut out = Vec::new();
        for i in 0..64 {
            out.push(Position::new(6.0 + (i % 8) as f64 * 0.2, 6.0 + (i / 8) as f64 * 0.2));
        }
        for i in 0..8 {
            out.push(Position::new(1.0 + i as f64 * 0.1, 1.5));
        }
        out
    }

    fn pyramid() -> AggregationPyramid {
        AggregationPyramid::build(BoundingBox::new(0.0, 0.0, 8.0, 8.0), 16, 16, positions())
    }

    #[test]
    fn level_structure() {
        let p = pyramid();
        assert_eq!(p.level_count(), 5); // 16,8,4,2,1
        assert_eq!(p.level(0).shape(), (16, 16));
        assert_eq!(p.level(4).shape(), (1, 1));
    }

    #[test]
    fn totals_preserved_across_levels() {
        let p = pyramid();
        for l in 0..p.level_count() {
            let sum: u64 = p.level(l).counts().iter().sum();
            assert_eq!(sum, 72, "level {l}");
        }
        assert_eq!(p.level(4).count(0, 0), 72);
    }

    #[test]
    fn region_sum_consistent_across_levels() {
        let p = pyramid();
        // The NE quadrant aligns with cell boundaries at every level.
        let ne = BoundingBox::new(4.0, 4.0, 7.99, 7.99);
        for l in 0..p.level_count() - 1 {
            assert_eq!(p.region_sum(l, &ne), 64, "level {l}");
        }
    }

    #[test]
    fn region_sum_disjoint_is_zero() {
        let p = pyramid();
        let outside = BoundingBox::new(20.0, 20.0, 30.0, 30.0);
        assert_eq!(p.region_sum(0, &outside), 0);
    }

    #[test]
    fn drill_down_refines() {
        let p = pyramid();
        // Small SW window: fine level separates it from the NE mass.
        let sw = BoundingBox::new(0.5, 1.0, 2.0, 2.0);
        let fine = p.region_sum(0, &sw);
        assert_eq!(fine, 8);
        // The coarsest level can only answer with everything.
        assert_eq!(p.region_sum(p.level_count() - 1, &sw), 72);
    }

    #[test]
    #[should_panic(expected = "power_of_two")]
    fn non_power_of_two_rejected() {
        let _ = AggregationPyramid::build(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 10, 10, Vec::new());
    }
}
