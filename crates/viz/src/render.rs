//! Raster rendering: ASCII for terminals, PPM for files.

use crate::raster::DensityRaster;

/// Intensity ramp for ASCII rendering (space = empty).
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render a raster as ASCII art, one character per cell, north up.
/// Intensity is log-scaled so sparse ocean traffic remains visible next
/// to dense port approaches (exactly the Figure-1 problem).
pub fn render_ascii(raster: &DensityRaster) -> String {
    let (rows, cols) = raster.shape();
    let max = raster.max_count() as f64;
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in (0..rows).rev() {
        for c in 0..cols {
            let v = raster.count(r, c) as f64;
            let ch = if v <= 0.0 || max <= 0.0 {
                RAMP[0]
            } else {
                let intensity = (1.0 + v).ln() / (1.0 + max).ln();
                let idx = (intensity * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx.clamp(1, RAMP.len() - 1)]
            };
            out.push(ch as char);
        }
        out.push('\n');
    }
    out
}

/// Render a raster as a binary-free plain PPM (P3) heat map string:
/// black → red → yellow → white.
pub fn render_ppm(raster: &DensityRaster) -> String {
    let (rows, cols) = raster.shape();
    let max = raster.max_count() as f64;
    let mut out = String::with_capacity(rows * cols * 12 + 32);
    out.push_str(&format!("P3\n{cols} {rows}\n255\n"));
    for r in (0..rows).rev() {
        for c in 0..cols {
            let v = raster.count(r, c) as f64;
            let i = if max <= 0.0 { 0.0 } else { (1.0 + v).ln() / (1.0 + max).ln() };
            let (red, green, blue) = heat(i);
            out.push_str(&format!("{red} {green} {blue} "));
        }
        out.push('\n');
    }
    out
}

/// Heat colour map on `[0,1]`.
fn heat(i: f64) -> (u8, u8, u8) {
    let i = i.clamp(0.0, 1.0);
    if i == 0.0 {
        (8, 8, 32) // dark ocean blue
    } else if i < 0.5 {
        let f = i / 0.5;
        ((255.0 * f) as u8, 0, (32.0 * (1.0 - f)) as u8)
    } else {
        let f = (i - 0.5) / 0.5;
        (255, (255.0 * f) as u8, (64.0 * f) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::{BoundingBox, Position};

    fn raster_with_hotspot() -> DensityRaster {
        let mut r = DensityRaster::new(BoundingBox::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        for _ in 0..100 {
            r.add(Position::new(3.5, 0.5)); // top-left when rendered
        }
        r.add(Position::new(0.5, 3.5)); // single count bottom-right
        r
    }

    #[test]
    fn ascii_shape_and_orientation() {
        let art = render_ascii(&raster_with_hotspot());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Hotspot at high latitude renders on the FIRST line (north up).
        assert_eq!(lines[0].as_bytes()[0], b'@');
        // The single observation is visible but faint.
        let last = lines[3].as_bytes()[3];
        assert_ne!(last, b' ');
        assert_ne!(last, b'@');
    }

    #[test]
    fn empty_raster_renders_blank() {
        let r = DensityRaster::new(BoundingBox::new(0.0, 0.0, 2.0, 2.0), 2, 2);
        let art = render_ascii(&r);
        assert_eq!(art, "  \n  \n");
    }

    #[test]
    fn ppm_header_and_size() {
        let ppm = render_ppm(&raster_with_hotspot());
        assert!(ppm.starts_with("P3\n4 4\n255\n"));
        // 16 pixels * 3 components.
        let numbers: Vec<&str> = ppm.lines().skip(3).flat_map(|l| l.split_whitespace()).collect();
        assert_eq!(numbers.len(), 48);
        for n in numbers {
            let v: u32 = n.parse().expect("numeric component");
            assert!(v <= 255);
        }
    }

    #[test]
    fn heat_endpoints() {
        assert_eq!(heat(0.0), (8, 8, 32));
        assert_eq!(heat(1.0), (255, 255, 64));
        let (r, _, _) = heat(0.4);
        assert!(r > 100);
    }
}
