//! Origin/destination flow aggregation between named regions.
//!
//! Tracks each vessel's last visited region and counts transitions — the
//! aggregation behind flow maps ("computing an overall operational
//! picture of mobility at desired scales").

use mda_geo::{Polygon, Position, VesselId};
use std::collections::HashMap;

/// A flow matrix over named regions.
#[derive(Debug)]
pub struct FlowMatrix {
    regions: Vec<(String, Polygon)>,
    last_region: HashMap<VesselId, usize>,
    /// counts[(from, to)] = transitions.
    counts: HashMap<(usize, usize), u64>,
}

impl FlowMatrix {
    /// New matrix over the given regions.
    pub fn new(regions: Vec<(String, Polygon)>) -> Self {
        Self { regions, last_region: HashMap::new(), counts: HashMap::new() }
    }

    /// Region index containing a position.
    fn region_of(&self, p: Position) -> Option<usize> {
        self.regions.iter().position(|(_, poly)| poly.contains(p))
    }

    /// Observe a vessel position; counts a transition when the vessel
    /// moves from one region to a different one.
    pub fn observe(&mut self, vessel: VesselId, p: Position) {
        let Some(here) = self.region_of(p) else { return };
        match self.last_region.insert(vessel, here) {
            Some(prev) if prev != here => {
                *self.counts.entry((prev, here)).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// Transition count between two named regions.
    pub fn flow(&self, from: &str, to: &str) -> u64 {
        let Some(f) = self.regions.iter().position(|(n, _)| n == from) else { return 0 };
        let Some(t) = self.regions.iter().position(|(n, _)| n == to) else { return 0 };
        self.counts.get(&(f, t)).copied().unwrap_or(0)
    }

    /// All flows as `(from, to, count)`, heaviest first.
    pub fn top_flows(&self) -> Vec<(&str, &str, u64)> {
        let mut rows: Vec<(&str, &str, u64)> = self
            .counts
            .iter()
            .map(|((f, t), c)| (self.regions[*f].0.as_str(), self.regions[*t].0.as_str(), *c))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)).then(a.1.cmp(b.1)));
        rows
    }

    /// Total transitions counted.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::BoundingBox;

    fn regions() -> Vec<(String, Polygon)> {
        vec![
            ("A".to_string(), Polygon::rectangle(BoundingBox::new(0.0, 0.0, 1.0, 1.0))),
            ("B".to_string(), Polygon::rectangle(BoundingBox::new(0.0, 2.0, 1.0, 3.0))),
            ("C".to_string(), Polygon::rectangle(BoundingBox::new(2.0, 0.0, 3.0, 1.0))),
        ]
    }

    #[test]
    fn transitions_counted() {
        let mut m = FlowMatrix::new(regions());
        m.observe(1, Position::new(0.5, 0.5)); // A
        m.observe(1, Position::new(0.5, 2.5)); // B
        m.observe(1, Position::new(0.5, 0.5)); // back to A
        assert_eq!(m.flow("A", "B"), 1);
        assert_eq!(m.flow("B", "A"), 1);
        assert_eq!(m.flow("A", "C"), 0);
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn open_water_does_not_reset_origin() {
        let mut m = FlowMatrix::new(regions());
        m.observe(1, Position::new(0.5, 0.5)); // A
        m.observe(1, Position::new(1.5, 1.5)); // open water: ignored
        m.observe(1, Position::new(0.5, 2.5)); // B
        assert_eq!(m.flow("A", "B"), 1);
    }

    #[test]
    fn staying_in_region_is_not_a_flow() {
        let mut m = FlowMatrix::new(regions());
        for _ in 0..10 {
            m.observe(1, Position::new(0.5, 0.5));
        }
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn vessels_independent_and_top_flows_sorted() {
        let mut m = FlowMatrix::new(regions());
        for v in 1..=3u32 {
            m.observe(v, Position::new(0.5, 0.5)); // A
            m.observe(v, Position::new(0.5, 2.5)); // B
        }
        m.observe(1, Position::new(2.5, 0.5)); // B -> C
        let flows = m.top_flows();
        assert_eq!(flows[0], ("A", "B", 3));
        assert_eq!(flows[1], ("B", "C", 1));
    }

    #[test]
    fn unknown_region_names() {
        let m = FlowMatrix::new(regions());
        assert_eq!(m.flow("X", "A"), 0);
        assert_eq!(m.flow("A", "Y"), 0);
    }
}
