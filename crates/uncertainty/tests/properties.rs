//! Property tests for the uncertainty frameworks.

use mda_uncertainty::evidence::{HypSet, MassFunction};
use mda_uncertainty::interval::ProbInterval;
use mda_uncertainty::prob::Distribution;
use proptest::prelude::*;

/// Random mass function on a 4-hypothesis frame.
fn arb_mass() -> impl Strategy<Value = MassFunction> {
    prop::collection::vec((1u16..16, 0.01f64..1.0), 1..6).prop_map(|pairs| {
        let total: f64 = pairs.iter().map(|(_, m)| m).sum();
        MassFunction::from_masses(4, pairs.into_iter().map(|(s, m)| (s, m / total)))
            .expect("normalised masses")
    })
}

fn arb_interval() -> impl Strategy<Value = ProbInterval> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| ProbInterval::new(a, b))
}

proptest! {
    #[test]
    fn mass_total_is_one(m in arb_mass()) {
        prop_assert!((m.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn belief_below_plausibility(m in arb_mass(), set in 1u16..16) {
        let set: HypSet = set;
        prop_assert!(m.belief(set) <= m.plausibility(set) + 1e-9);
        prop_assert!(m.belief(set) >= -1e-12);
        prop_assert!(m.plausibility(set) <= 1.0 + 1e-9);
    }

    #[test]
    fn dempster_preserves_normalisation(a in arb_mass(), b in arb_mass()) {
        if let Ok((c, k)) = a.combine_dempster(&b) {
            prop_assert!((c.total() - 1.0).abs() < 1e-9);
            prop_assert!((0.0..1.0).contains(&k) || (k - 0.0).abs() < 1e-12);
        }
    }

    #[test]
    fn yager_preserves_normalisation(a in arb_mass(), b in arb_mass()) {
        let c = a.combine_yager(&b).unwrap();
        prop_assert!((c.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pignistic_is_a_distribution(m in arb_mass()) {
        let p = m.pignistic();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for pi in p {
            prop_assert!(pi >= -1e-12);
        }
    }

    #[test]
    fn pignistic_within_belief_plausibility(m in arb_mass()) {
        let p = m.pignistic();
        for (i, pi) in p.iter().enumerate() {
            let s = MassFunction::singleton(i as u8);
            prop_assert!(*pi >= m.belief(s) - 1e-9);
            prop_assert!(*pi <= m.plausibility(s) + 1e-9);
        }
    }

    #[test]
    fn interval_ops_stay_in_unit_box(a in arb_interval(), b in arb_interval()) {
        for i in [
            a.not(),
            a.and_independent(&b),
            a.or_independent(&b),
            a.and_frechet(&b),
            a.or_frechet(&b),
        ] {
            prop_assert!(i.lo >= -1e-12 && i.hi <= 1.0 + 1e-12);
            prop_assert!(i.lo <= i.hi + 1e-12);
        }
    }

    #[test]
    fn frechet_contains_independent(a in arb_interval(), b in arb_interval()) {
        let ind = a.and_independent(&b);
        let fre = a.and_frechet(&b);
        prop_assert!(fre.lo <= ind.lo + 1e-9);
        prop_assert!(fre.hi >= ind.hi - 1e-9);
        let ind_or = a.or_independent(&b);
        let fre_or = a.or_frechet(&b);
        prop_assert!(fre_or.lo <= ind_or.lo + 1e-9);
        prop_assert!(fre_or.hi >= ind_or.hi - 1e-9);
    }

    #[test]
    fn intersection_narrows(a in arb_interval(), b in arb_interval()) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.width() <= a.width() + 1e-12);
            prop_assert!(i.width() <= b.width() + 1e-12);
            prop_assert!(i.lo >= a.lo - 1e-12 && i.hi <= a.hi + 1e-12);
        }
    }

    #[test]
    fn distribution_probabilities_sum_to_one(
        weights in prop::collection::vec(0.01f64..10.0, 1..10)
    ) {
        let d = Distribution::from_weights(
            weights.iter().enumerate().map(|(i, w)| (format!("o{i}"), *w)),
        );
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(d.entropy_bits() >= -1e-12);
        prop_assert!(d.entropy_bits() <= (weights.len() as f64).log2() + 1e-9);
    }
}
