//! Uncertainty representation and reasoning (paper §4).
//!
//! The paper argues that a maritime decision-support system must handle
//! "the different nature of uncertainty (probabilistic, subjective,
//! vague, ambiguous...)" and singles out three needs: probabilistic
//! databases, *open-world* query answering (27% of ships go dark — what
//! is absent from the AIS database is not false), and second-order
//! uncertainty for communicating imperfect estimates faithfully.
//!
//! - [`prob`] — discrete distributions: normalisation, Bayesian update,
//!   entropy.
//! - [`evidence`] — Dempster–Shafer theory on small frames: mass
//!   functions, belief/plausibility, Dempster's and Yager's combination
//!   rules, pignistic transform.
//! - [`possibility`] — possibility/necessity measures with min/max
//!   combination.
//! - [`interval`] — second-order uncertainty as probability intervals
//!   with conservative interval arithmetic.
//! - [`openworld`] — a probabilistic relation supporting closed-world
//!   *and* open-world query semantics side by side; the C3 experiment
//!   uses it to show what closed-world rendezvous queries miss.
//!
//! ## Example
//!
//! ```
//! use mda_uncertainty::ProbInterval;
//!
//! // Second-order uncertainty: the chance a vessel is dark, as an interval.
//! let dark = ProbInterval::new(0.2, 0.6);
//! let rendezvous = ProbInterval::new(0.5, 0.9);
//! let both = dark.and_frechet(&rendezvous);
//! assert!(both.lo >= 0.0 && both.hi <= dark.hi + 1e-12);
//! assert!(both.width() <= 1.0);
//! ```

pub mod evidence;
pub mod interval;
pub mod openworld;
pub mod possibility;
pub mod prob;

pub use evidence::MassFunction;
pub use interval::ProbInterval;
pub use openworld::{OpenWorldRelation, ProbTuple};
pub use possibility::PossibilityDist;
pub use prob::Distribution;
