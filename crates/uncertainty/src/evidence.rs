//! Dempster–Shafer evidence theory on small frames of discernment.
//!
//! Evidence theory lets a source say "I believe it is a fishing vessel
//! or a trawler, but I cannot tell which" — mass on a *set* of
//! hypotheses — which probabilities cannot express. The paper cites the
//! Dubois–Liu–Ma–Prade survey of combination rules; the two classical
//! rules implemented here differ exactly in how they treat conflict:
//! Dempster renormalises it away, Yager moves it to total ignorance.
//!
//! Frames are limited to 16 hypotheses; focal elements are bitmasks.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of hypotheses as a bitmask over the frame.
pub type HypSet = u16;

/// A basic probability assignment (mass function) over a frame of
/// `frame_size` hypotheses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MassFunction {
    frame_size: u8,
    /// Mass per focal element (nonzero masses only).
    masses: BTreeMap<HypSet, f64>,
}

impl MassFunction {
    /// The vacuous mass function: all mass on the full frame (total
    /// ignorance).
    pub fn vacuous(frame_size: u8) -> Self {
        assert!((1..=16).contains(&frame_size));
        let mut masses = BTreeMap::new();
        masses.insert(Self::full_frame(frame_size), 1.0);
        Self { frame_size, masses }
    }

    /// Build from `(set, mass)` pairs; masses must be non-negative and
    /// sum to 1 (±1e-9), with no mass on the empty set.
    pub fn from_masses(
        frame_size: u8,
        pairs: impl IntoIterator<Item = (HypSet, f64)>,
    ) -> Result<Self, String> {
        assert!((1..=16).contains(&frame_size));
        let full = Self::full_frame(frame_size);
        let mut masses = BTreeMap::new();
        let mut total = 0.0;
        for (set, m) in pairs {
            if set == 0 {
                return Err("mass on the empty set".into());
            }
            if set & !full != 0 {
                return Err("focal element outside the frame".into());
            }
            if m < 0.0 {
                return Err("negative mass".into());
            }
            if m > 0.0 {
                *masses.entry(set).or_insert(0.0) += m;
                total += m;
            }
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(format!("masses sum to {total}, not 1"));
        }
        Ok(Self { frame_size, masses })
    }

    /// Bitmask of the full frame.
    pub fn full_frame(frame_size: u8) -> HypSet {
        if frame_size as u32 >= 16 {
            u16::MAX
        } else {
            (1u16 << frame_size) - 1
        }
    }

    /// Singleton set for hypothesis index `i`.
    pub fn singleton(i: u8) -> HypSet {
        1u16 << i
    }

    /// Frame size.
    pub fn frame_size(&self) -> u8 {
        self.frame_size
    }

    /// Mass of one focal element.
    pub fn mass(&self, set: HypSet) -> f64 {
        self.masses.get(&set).copied().unwrap_or(0.0)
    }

    /// Belief: total mass of subsets of `set`.
    pub fn belief(&self, set: HypSet) -> f64 {
        self.masses.iter().filter(|(s, _)| **s & !set == 0).map(|(_, m)| m).sum()
    }

    /// Plausibility: total mass of sets intersecting `set`.
    pub fn plausibility(&self, set: HypSet) -> f64 {
        self.masses.iter().filter(|(s, _)| **s & set != 0).map(|(_, m)| m).sum()
    }

    /// Dempster's rule of combination. Returns the combined mass and the
    /// conflict mass `K` that was renormalised away; errors when the two
    /// pieces of evidence are in total conflict (`K = 1`).
    pub fn combine_dempster(&self, other: &MassFunction) -> Result<(MassFunction, f64), String> {
        let (joint, conflict) = self.joint(other)?;
        if (1.0 - conflict).abs() < 1e-12 {
            return Err("total conflict: Dempster's rule undefined".into());
        }
        let z = 1.0 - conflict;
        let masses = joint.into_iter().map(|(s, m)| (s, m / z)).collect();
        Ok((MassFunction { frame_size: self.frame_size, masses }, conflict))
    }

    /// Yager's rule: conflict mass goes to the full frame (ignorance)
    /// instead of being renormalised. More cautious under high conflict —
    /// the behaviour preferred for deceptive sources.
    pub fn combine_yager(&self, other: &MassFunction) -> Result<MassFunction, String> {
        let (mut joint, conflict) = self.joint(other)?;
        if conflict > 0.0 {
            *joint.entry(Self::full_frame(self.frame_size)).or_insert(0.0) += conflict;
        }
        Ok(MassFunction { frame_size: self.frame_size, masses: joint })
    }

    fn joint(&self, other: &MassFunction) -> Result<(BTreeMap<HypSet, f64>, f64), String> {
        if self.frame_size != other.frame_size {
            return Err("frames differ".into());
        }
        let mut joint: BTreeMap<HypSet, f64> = BTreeMap::new();
        let mut conflict = 0.0;
        for (&a, &ma) in &self.masses {
            for (&b, &mb) in &other.masses {
                let inter = a & b;
                let m = ma * mb;
                if inter == 0 {
                    conflict += m;
                } else {
                    *joint.entry(inter).or_insert(0.0) += m;
                }
            }
        }
        Ok((joint, conflict))
    }

    /// Pignistic transform: spread each focal mass uniformly over its
    /// members, yielding a probability per hypothesis index.
    pub fn pignistic(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.frame_size as usize];
        for (&set, &m) in &self.masses {
            let card = set.count_ones() as f64;
            for (i, pi) in p.iter_mut().enumerate() {
                if set & (1 << i) != 0 {
                    *pi += m / card;
                }
            }
        }
        p
    }

    /// Total mass (should always be 1; exposed for property tests).
    pub fn total(&self) -> f64 {
        self.masses.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Frame: 0 = innocent, 1 = smuggler, 2 = fishing-illegally.
    const INNOCENT: HypSet = 0b001;
    const SMUGGLER: HypSet = 0b010;
    const ILLEGAL: HypSet = 0b100;

    fn mf(pairs: &[(HypSet, f64)]) -> MassFunction {
        MassFunction::from_masses(3, pairs.iter().copied()).unwrap()
    }

    #[test]
    fn vacuous_is_ignorant() {
        let v = MassFunction::vacuous(3);
        assert_eq!(v.belief(SMUGGLER), 0.0);
        assert_eq!(v.plausibility(SMUGGLER), 1.0);
        assert!((v.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn belief_le_plausibility() {
        let m = mf(&[(SMUGGLER, 0.5), (SMUGGLER | ILLEGAL, 0.3), (0b111, 0.2)]);
        for set in [INNOCENT, SMUGGLER, ILLEGAL, SMUGGLER | ILLEGAL] {
            assert!(m.belief(set) <= m.plausibility(set) + 1e-12);
        }
        assert!((m.belief(SMUGGLER) - 0.5).abs() < 1e-12);
        assert!((m.plausibility(SMUGGLER) - 1.0).abs() < 1e-12);
        assert!((m.belief(SMUGGLER | ILLEGAL) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dempster_combination_reinforces() {
        // Two independent sources both lean "smuggler".
        let a = mf(&[(SMUGGLER, 0.6), (0b111, 0.4)]);
        let b = mf(&[(SMUGGLER, 0.7), (0b111, 0.3)]);
        let (c, k) = a.combine_dempster(&b).unwrap();
        assert_eq!(k, 0.0, "no conflict between these");
        assert!(c.belief(SMUGGLER) > 0.85, "bel {}", c.belief(SMUGGLER));
        assert!((c.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dempster_handles_conflict() {
        let a = mf(&[(SMUGGLER, 0.9), (0b111, 0.1)]);
        let b = mf(&[(INNOCENT, 0.9), (0b111, 0.1)]);
        let (c, k) = a.combine_dempster(&b).unwrap();
        assert!(k > 0.8, "conflict {k}");
        // Zadeh's paradox territory: Dempster still commits.
        assert!((c.total() - 1.0).abs() < 1e-12);
        assert!(c.belief(SMUGGLER) > 0.0 && c.belief(INNOCENT) > 0.0);
    }

    #[test]
    fn total_conflict_is_an_error() {
        let a = mf(&[(SMUGGLER, 1.0)]);
        let b = mf(&[(INNOCENT, 1.0)]);
        assert!(a.combine_dempster(&b).is_err());
        // Yager handles it: everything becomes ignorance.
        let y = a.combine_yager(&b).unwrap();
        assert!((y.mass(0b111) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn yager_is_more_cautious_than_dempster() {
        let a = mf(&[(SMUGGLER, 0.8), (0b111, 0.2)]);
        let b = mf(&[(INNOCENT, 0.8), (0b111, 0.2)]);
        let (d, _) = a.combine_dempster(&b).unwrap();
        let y = a.combine_yager(&b).unwrap();
        assert!(y.belief(SMUGGLER) < d.belief(SMUGGLER));
        assert!(y.mass(0b111) > 0.5, "conflict became ignorance");
        assert!((y.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pignistic_spreads_set_mass() {
        let m = mf(&[(SMUGGLER | ILLEGAL, 0.6), (INNOCENT, 0.4)]);
        let p = m.pignistic();
        assert!((p[0] - 0.4).abs() < 1e-12);
        assert!((p[1] - 0.3).abs() < 1e-12);
        assert!((p[2] - 0.3).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_masses_rejected() {
        assert!(MassFunction::from_masses(3, [(0b000, 1.0)]).is_err());
        assert!(MassFunction::from_masses(3, [(0b1000, 1.0)]).is_err());
        assert!(MassFunction::from_masses(3, [(0b001, 0.5)]).is_err());
        assert!(MassFunction::from_masses(3, [(0b001, -0.5), (0b010, 1.5)]).is_err());
    }

    #[test]
    fn combination_is_commutative() {
        let a = mf(&[(SMUGGLER, 0.5), (SMUGGLER | ILLEGAL, 0.2), (0b111, 0.3)]);
        let b = mf(&[(ILLEGAL, 0.4), (0b111, 0.6)]);
        let (ab, _) = a.combine_dempster(&b).unwrap();
        let (ba, _) = b.combine_dempster(&a).unwrap();
        for set in 1..8u16 {
            assert!((ab.mass(set) - ba.mass(set)).abs() < 1e-12);
        }
    }
}
