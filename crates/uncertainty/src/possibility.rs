//! Possibility theory: an ordinal model of vague uncertainty.
//!
//! Where probabilities quantify frequency and masses quantify evidence,
//! possibility degrees quantify *unsurprisingness*: "a speed of 25 kn is
//! entirely possible for this vessel class, 40 kn only marginally so".
//! The paper lists possibility theory among the representations needed
//! to cope with the vague/ambiguous end of maritime uncertainty.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A possibility distribution over labelled outcomes, values in `[0,1]`.
///
/// Normalised means at least one outcome is fully possible (π = 1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PossibilityDist {
    pi: BTreeMap<String, f64>,
}

impl PossibilityDist {
    /// Build from `(outcome, possibility)` pairs; values clamp to `[0,1]`.
    pub fn from_degrees<I: IntoIterator<Item = (S, f64)>, S: Into<String>>(pairs: I) -> Self {
        let mut pi = BTreeMap::new();
        for (o, v) in pairs {
            pi.insert(o.into(), v.clamp(0.0, 1.0));
        }
        Self { pi }
    }

    /// Possibility degree of one outcome (0 if unknown).
    pub fn possibility(&self, outcome: &str) -> f64 {
        self.pi.get(outcome).copied().unwrap_or(0.0)
    }

    /// Possibility of a *set* of outcomes: the max over members.
    pub fn possibility_of(&self, outcomes: &[&str]) -> f64 {
        outcomes.iter().map(|o| self.possibility(o)).fold(0.0, f64::max)
    }

    /// Necessity of a set: 1 − possibility of its complement.
    pub fn necessity_of(&self, outcomes: &[&str]) -> f64 {
        let complement_max = self
            .pi
            .iter()
            .filter(|(o, _)| !outcomes.contains(&o.as_str()))
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        1.0 - complement_max
    }

    /// True if some outcome is fully possible.
    pub fn is_normalised(&self) -> bool {
        self.pi.values().any(|v| (*v - 1.0).abs() < 1e-12)
    }

    /// Renormalise so the max degree becomes 1 (no-op on the empty
    /// distribution).
    pub fn normalise(&mut self) {
        let max = self.pi.values().fold(0.0f64, |a, b| a.max(*b));
        if max > 0.0 {
            for v in self.pi.values_mut() {
                *v /= max;
            }
        }
    }

    /// Conjunctive (min) combination: both sources must find an outcome
    /// possible. May yield a sub-normalised result under conflict; the
    /// degree of sub-normalisation is the inconsistency of the sources.
    pub fn combine_min(&self, other: &PossibilityDist) -> PossibilityDist {
        let keys: std::collections::BTreeSet<&String> =
            self.pi.keys().chain(other.pi.keys()).collect();
        let pi = keys
            .into_iter()
            .map(|k| (k.clone(), self.possibility(k).min(other.possibility(k))))
            .collect();
        PossibilityDist { pi }
    }

    /// Disjunctive (max) combination: either source suffices. Used when
    /// sources are alternatives rather than corroborating.
    pub fn combine_max(&self, other: &PossibilityDist) -> PossibilityDist {
        let keys: std::collections::BTreeSet<&String> =
            self.pi.keys().chain(other.pi.keys()).collect();
        let pi = keys
            .into_iter()
            .map(|k| (k.clone(), self.possibility(k).max(other.possibility(k))))
            .collect();
        PossibilityDist { pi }
    }

    /// Inconsistency of two sources: `1 − max_x min(π1, π2)`.
    pub fn inconsistency_with(&self, other: &PossibilityDist) -> f64 {
        let joint = self.combine_min(other);
        1.0 - joint.pi.values().fold(0.0f64, |a, b| a.max(*b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vessel_speed_profile() -> PossibilityDist {
        PossibilityDist::from_degrees([
            ("slow", 1.0),
            ("cruise", 1.0),
            ("fast", 0.6),
            ("impossible", 0.0),
        ])
    }

    #[test]
    fn possibility_and_necessity_duality() {
        let d = vessel_speed_profile();
        assert_eq!(d.possibility("cruise"), 1.0);
        assert_eq!(d.possibility("unknown"), 0.0);
        // Necessity of a set is low while its complement stays possible.
        assert_eq!(d.necessity_of(&["cruise"]), 0.0);
        // Necessity of everything-but-impossible is 1.
        assert_eq!(d.necessity_of(&["slow", "cruise", "fast"]), 1.0);
        // N(A) <= Π(A).
        for set in [vec!["slow"], vec!["fast"], vec!["slow", "fast"]] {
            let refs: Vec<&str> = set.clone();
            assert!(d.necessity_of(&refs) <= d.possibility_of(&refs) + 1e-12);
        }
    }

    #[test]
    fn set_possibility_is_max() {
        let d = vessel_speed_profile();
        assert_eq!(d.possibility_of(&["fast", "impossible"]), 0.6);
        assert_eq!(d.possibility_of(&["slow", "fast"]), 1.0);
        assert_eq!(d.possibility_of(&[]), 0.0);
    }

    #[test]
    fn min_combination_detects_conflict() {
        let radar = PossibilityDist::from_degrees([("north", 1.0), ("south", 0.2)]);
        let ais = PossibilityDist::from_degrees([("north", 0.1), ("south", 1.0)]);
        let joint = radar.combine_min(&ais);
        assert!(!joint.is_normalised(), "conflict sub-normalises");
        let inc = radar.inconsistency_with(&ais);
        assert!((inc - 0.8).abs() < 1e-12, "inconsistency {inc}");
    }

    #[test]
    fn max_combination_is_permissive() {
        let a = PossibilityDist::from_degrees([("x", 0.3)]);
        let b = PossibilityDist::from_degrees([("y", 0.9)]);
        let j = a.combine_max(&b);
        assert_eq!(j.possibility("x"), 0.3);
        assert_eq!(j.possibility("y"), 0.9);
    }

    #[test]
    fn normalise_rescales() {
        let mut d = PossibilityDist::from_degrees([("a", 0.4), ("b", 0.2)]);
        assert!(!d.is_normalised());
        d.normalise();
        assert!(d.is_normalised());
        assert!((d.possibility("b") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degrees_clamped_to_unit_interval() {
        let d = PossibilityDist::from_degrees([("a", 3.0), ("b", -1.0)]);
        assert_eq!(d.possibility("a"), 1.0);
        assert_eq!(d.possibility("b"), 0.0);
    }
}
