//! Discrete probability distributions over labelled outcomes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A discrete distribution over string-labelled outcomes.
///
/// Stored unnormalised internally; queries normalise on the fly so that
/// evidence can be accumulated multiplicatively without rescaling.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    weights: BTreeMap<String, f64>,
}

impl Distribution {
    /// Empty distribution (no support).
    pub fn new() -> Self {
        Self::default()
    }

    /// Uniform distribution over `outcomes`.
    pub fn uniform<I: IntoIterator<Item = S>, S: Into<String>>(outcomes: I) -> Self {
        let mut weights = BTreeMap::new();
        for o in outcomes {
            weights.insert(o.into(), 1.0);
        }
        Self { weights }
    }

    /// From explicit `(outcome, weight)` pairs; negative weights are
    /// clamped to zero.
    pub fn from_weights<I: IntoIterator<Item = (S, f64)>, S: Into<String>>(pairs: I) -> Self {
        let mut weights = BTreeMap::new();
        for (o, w) in pairs {
            weights.insert(o.into(), w.max(0.0));
        }
        Self { weights }
    }

    /// Total unnormalised mass.
    pub fn total(&self) -> f64 {
        self.weights.values().sum()
    }

    /// Number of outcomes with nonzero weight.
    pub fn support(&self) -> usize {
        self.weights.values().filter(|w| **w > 0.0).count()
    }

    /// Normalised probability of one outcome (0 if unknown or if the
    /// distribution is empty).
    pub fn p(&self, outcome: &str) -> f64 {
        let z = self.total();
        if z <= 0.0 {
            return 0.0;
        }
        self.weights.get(outcome).copied().unwrap_or(0.0) / z
    }

    /// Multiply in a likelihood for one outcome (Bayesian update with a
    /// point likelihood). Unknown outcomes are ignored.
    pub fn update(&mut self, outcome: &str, likelihood: f64) {
        if let Some(w) = self.weights.get_mut(outcome) {
            *w *= likelihood.max(0.0);
        }
    }

    /// Multiply in a full likelihood function.
    pub fn update_all(&mut self, likelihood: impl Fn(&str) -> f64) {
        for (o, w) in self.weights.iter_mut() {
            *w *= likelihood(o).max(0.0);
        }
    }

    /// The most probable outcome, if any mass remains.
    pub fn map_estimate(&self) -> Option<(&str, f64)> {
        let z = self.total();
        if z <= 0.0 {
            return None;
        }
        self.weights
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(o, w)| (o.as_str(), w / z))
    }

    /// Shannon entropy in bits of the normalised distribution.
    pub fn entropy_bits(&self) -> f64 {
        let z = self.total();
        if z <= 0.0 {
            return 0.0;
        }
        -self
            .weights
            .values()
            .filter(|w| **w > 0.0)
            .map(|w| {
                let p = w / z;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Iterate over `(outcome, normalised probability)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        let z = self.total();
        self.weights.iter().map(move |(o, w)| (o.as_str(), if z > 0.0 { w / z } else { 0.0 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_probabilities() {
        let d = Distribution::uniform(["cargo", "tanker", "fishing", "other"]);
        assert_eq!(d.support(), 4);
        assert!((d.p("cargo") - 0.25).abs() < 1e-12);
        assert_eq!(d.p("submarine"), 0.0);
    }

    #[test]
    fn bayes_update_shifts_mass() {
        let mut d = Distribution::uniform(["cargo", "fishing"]);
        // Loitering behaviour: 5x more likely for fishing vessels.
        d.update("fishing", 5.0);
        assert!((d.p("fishing") - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(d.map_estimate().unwrap().0, "fishing");
    }

    #[test]
    fn update_all_with_likelihood_fn() {
        let mut d = Distribution::uniform(["a", "b", "c"]);
        d.update_all(|o| if o == "b" { 0.0 } else { 1.0 });
        assert_eq!(d.p("b"), 0.0);
        assert!((d.p("a") - 0.5).abs() < 1e-12);
        assert_eq!(d.support(), 2);
    }

    #[test]
    fn entropy_extremes() {
        let u = Distribution::uniform(["a", "b", "c", "d"]);
        assert!((u.entropy_bits() - 2.0).abs() < 1e-12);
        let p = Distribution::from_weights([("a", 1.0), ("b", 0.0)]);
        assert_eq!(p.entropy_bits(), 0.0);
    }

    #[test]
    fn empty_distribution_is_harmless() {
        let d = Distribution::new();
        assert_eq!(d.p("anything"), 0.0);
        assert!(d.map_estimate().is_none());
        assert_eq!(d.entropy_bits(), 0.0);
    }

    #[test]
    fn negative_weights_clamped() {
        let d = Distribution::from_weights([("a", -5.0), ("b", 1.0)]);
        assert_eq!(d.p("a"), 0.0);
        assert_eq!(d.p("b"), 1.0);
    }

    #[test]
    fn iter_sums_to_one() {
        let d = Distribution::from_weights([("a", 2.0), ("b", 3.0), ("c", 5.0)]);
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
