//! Second-order uncertainty: probability intervals.
//!
//! §4: "Considering second-order uncertainty seems also unavoidable if
//! one wants to properly account for the imperfection of data ... but
//! also if one wants to communicate to the user faithful information."
//! A [`ProbInterval`] `[lo, hi]` says: the probability is somewhere in
//! this range — the width *is* the second-order uncertainty, and it is
//! what the operator picture shows next to every alert.

use serde::{Deserialize, Serialize};

/// A closed probability interval `[lo, hi] ⊆ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbInterval {
    /// Lower probability.
    pub lo: f64,
    /// Upper probability.
    pub hi: f64,
}

impl ProbInterval {
    /// A precise probability (zero-width interval).
    pub fn precise(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        Self { lo: p, hi: p }
    }

    /// Construct, clamping into `[0,1]` and ordering the endpoints.
    pub fn new(lo: f64, hi: f64) -> Self {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// Total ignorance `[0, 1]`.
    pub fn vacuous() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// Interval width — the second-order uncertainty.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint (a point summary when a single number is demanded).
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// True if `p` lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lo - 1e-12 && p <= self.hi + 1e-12
    }

    /// Complement: probability of the negated event.
    pub fn not(&self) -> Self {
        Self { lo: 1.0 - self.hi, hi: 1.0 - self.lo }
    }

    /// Conservative conjunction of *independent* events: the exact
    /// product interval.
    pub fn and_independent(&self, other: &Self) -> Self {
        Self::new(self.lo * other.lo, self.hi * other.hi)
    }

    /// Conservative disjunction of independent events.
    pub fn or_independent(&self, other: &Self) -> Self {
        Self::new(
            1.0 - (1.0 - self.lo) * (1.0 - other.lo),
            1.0 - (1.0 - self.hi) * (1.0 - other.hi),
        )
    }

    /// Fréchet conjunction with *unknown* dependence: the widest interval
    /// compatible with any joint distribution.
    pub fn and_frechet(&self, other: &Self) -> Self {
        Self::new((self.lo + other.lo - 1.0).max(0.0), self.hi.min(other.hi))
    }

    /// Fréchet disjunction with unknown dependence.
    pub fn or_frechet(&self, other: &Self) -> Self {
        Self::new(self.lo.max(other.lo), (self.hi + other.hi).min(1.0))
    }

    /// Intersection of two interval estimates of the *same* quantity
    /// (e.g. two sources bounding the same event); `None` when they are
    /// incompatible.
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi + 1e-12 {
            Some(Self { lo, hi: hi.max(lo) })
        } else {
            None
        }
    }
}

impl std::fmt::Display for ProbInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_and_orders() {
        let i = ProbInterval::new(0.8, 0.2);
        assert_eq!((i.lo, i.hi), (0.2, 0.8));
        let c = ProbInterval::new(-0.5, 1.5);
        assert_eq!((c.lo, c.hi), (0.0, 1.0));
        assert_eq!(ProbInterval::precise(0.3).width(), 0.0);
    }

    #[test]
    fn complement_flips() {
        let i = ProbInterval::new(0.2, 0.5);
        let n = i.not();
        assert!((n.lo - 0.5).abs() < 1e-12 && (n.hi - 0.8).abs() < 1e-12);
        // Double negation.
        let nn = n.not();
        assert!((nn.lo - i.lo).abs() < 1e-12 && (nn.hi - i.hi).abs() < 1e-12);
    }

    #[test]
    fn independent_combinators() {
        let a = ProbInterval::new(0.5, 0.7);
        let b = ProbInterval::new(0.4, 0.6);
        let and = a.and_independent(&b);
        assert!((and.lo - 0.2).abs() < 1e-12 && (and.hi - 0.42).abs() < 1e-12);
        let or = a.or_independent(&b);
        assert!((or.lo - 0.7).abs() < 1e-12 && (or.hi - 0.88).abs() < 1e-12);
    }

    #[test]
    fn frechet_is_wider_than_independent() {
        let a = ProbInterval::new(0.5, 0.7);
        let b = ProbInterval::new(0.4, 0.6);
        let ind = a.and_independent(&b);
        let fre = a.and_frechet(&b);
        assert!(fre.lo <= ind.lo + 1e-12);
        assert!(fre.hi >= ind.hi - 1e-12);
        // Fréchet bounds for these: [max(0,0.5+0.4-1), min(0.7,0.6)].
        assert_eq!(fre.lo, 0.0);
        assert_eq!(fre.hi, 0.6);
    }

    #[test]
    fn intersection_of_compatible_sources() {
        let a = ProbInterval::new(0.2, 0.6);
        let b = ProbInterval::new(0.4, 0.9);
        let i = a.intersect(&b).unwrap();
        assert_eq!((i.lo, i.hi), (0.4, 0.6));
        assert!(i.width() < a.width(), "fusion narrows uncertainty");
    }

    #[test]
    fn incompatible_sources_yield_none() {
        let a = ProbInterval::new(0.0, 0.2);
        let b = ProbInterval::new(0.7, 1.0);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn vacuous_absorbs_nothing() {
        let v = ProbInterval::vacuous();
        let a = ProbInterval::new(0.3, 0.5);
        let i = v.intersect(&a).unwrap();
        assert_eq!((i.lo, i.hi), (0.3, 0.5), "ignorance adds no constraint");
        assert!(v.contains(0.0) && v.contains(1.0));
    }

    #[test]
    fn midpoint_and_display() {
        let i = ProbInterval::new(0.25, 0.75);
        assert_eq!(i.midpoint(), 0.5);
        assert_eq!(i.to_string(), "[0.250, 0.750]");
    }
}
