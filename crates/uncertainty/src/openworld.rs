//! Open-world probabilistic relations.
//!
//! §4, on Windward's figure that 27% of ships go dark: "the AIS database
//! clearly violates the closed-world assumption ... querying for
//! rendez-vous events from an AIS database will return only those events
//! reflected by the AIS data. Considering that anything which is not in
//! the AIS database remains possible is thus crucial."
//!
//! [`OpenWorldRelation`] stores probabilistic tuples *plus an
//! incompleteness budget*: an estimate of how much of the world the
//! relation does not cover (e.g. the fraction of vessel-hours spent
//! dark). Closed-world queries sum the matching tuples; open-world
//! queries return a [`ProbInterval`] whose upper bound admits that the
//! unobserved part of the world may also satisfy the query.

use crate::interval::ProbInterval;
use serde::{Deserialize, Serialize};

/// One probabilistic tuple: a value with its marginal probability of
/// being true/present.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbTuple<T> {
    /// The payload (an event, an observation...).
    pub value: T,
    /// Probability that the tuple holds.
    pub p: f64,
}

/// A probabilistic relation with an explicit incompleteness estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenWorldRelation<T> {
    tuples: Vec<ProbTuple<T>>,
    /// Expected number of real-world facts *missing* from the relation
    /// that could match an arbitrary query (the "dark" budget). Zero
    /// recovers the closed-world assumption.
    missing_budget: f64,
}

impl<T> OpenWorldRelation<T> {
    /// New relation with a given missing-fact budget.
    pub fn new(missing_budget: f64) -> Self {
        assert!(missing_budget >= 0.0);
        Self { tuples: Vec::new(), missing_budget }
    }

    /// Insert a tuple with probability `p` (clamped to `[0,1]`).
    pub fn insert(&mut self, value: T, p: f64) {
        self.tuples.push(ProbTuple { value, p: p.clamp(0.0, 1.0) });
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The incompleteness budget.
    pub fn missing_budget(&self) -> f64 {
        self.missing_budget
    }

    /// Update the incompleteness budget (e.g. from observed gap
    /// statistics).
    pub fn set_missing_budget(&mut self, budget: f64) {
        assert!(budget >= 0.0);
        self.missing_budget = budget;
    }

    /// Closed-world expected count of tuples matching `pred`.
    pub fn expected_count_closed(&self, pred: impl Fn(&T) -> bool) -> f64 {
        self.tuples.iter().filter(|t| pred(&t.value)).map(|t| t.p).sum()
    }

    /// Open-world expected count: `[closed, closed + missing_budget]`.
    /// The lower bound assumes every missing fact fails the query; the
    /// upper bound assumes every one satisfies it.
    pub fn expected_count_open(&self, pred: impl Fn(&T) -> bool) -> (f64, f64) {
        let closed = self.expected_count_closed(pred);
        (closed, closed + self.missing_budget)
    }

    /// Closed-world probability that *at least one* tuple matches
    /// (tuple independence assumed).
    pub fn exists_closed(&self, pred: impl Fn(&T) -> bool) -> f64 {
        let none: f64 = self.tuples.iter().filter(|t| pred(&t.value)).map(|t| 1.0 - t.p).product();
        1.0 - none
    }

    /// Open-world existence probability as an interval. The upper bound
    /// treats the missing budget as that many unobserved candidate facts
    /// each matching with probability `p_match_if_missing`.
    pub fn exists_open(&self, pred: impl Fn(&T) -> bool, p_match_if_missing: f64) -> ProbInterval {
        let closed = self.exists_closed(pred);
        let p = p_match_if_missing.clamp(0.0, 1.0);
        // Probability none of the ~budget missing facts match.
        let none_missing = (1.0 - p).powf(self.missing_budget);
        let upper = 1.0 - (1.0 - closed) * none_missing;
        ProbInterval::new(closed, upper)
    }

    /// Iterate over the stored tuples.
    pub fn iter(&self) -> impl Iterator<Item = &ProbTuple<T>> {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Rendezvous {
        a: u32,
        b: u32,
        zone: &'static str,
    }

    fn relation() -> OpenWorldRelation<Rendezvous> {
        // Two observed candidate rendezvous; an estimated 3 more pairs of
        // vessel-encounters happened while the participants were dark.
        let mut r = OpenWorldRelation::new(3.0);
        r.insert(Rendezvous { a: 1, b: 2, zone: "open-sea" }, 0.9);
        r.insert(Rendezvous { a: 3, b: 4, zone: "open-sea" }, 0.4);
        r.insert(Rendezvous { a: 5, b: 6, zone: "port" }, 1.0);
        r
    }

    #[test]
    fn closed_world_counts() {
        let r = relation();
        let open_sea = r.expected_count_closed(|t| t.zone == "open-sea");
        assert!((open_sea - 1.3).abs() < 1e-12);
        assert_eq!(r.expected_count_closed(|t| t.zone == "reef"), 0.0);
    }

    #[test]
    fn open_world_interval_widens_by_budget() {
        let r = relation();
        let (lo, hi) = r.expected_count_open(|t| t.zone == "open-sea");
        assert!((lo - 1.3).abs() < 1e-12);
        assert!((hi - 4.3).abs() < 1e-12);
    }

    #[test]
    fn closed_world_misses_what_open_world_admits() {
        // The scenario of §4: nothing matching in the database, but the
        // dark budget keeps the event possible.
        let r = relation();
        let closed = r.exists_closed(|t| t.zone == "reef");
        assert_eq!(closed, 0.0, "closed world says impossible");
        let open = r.exists_open(|t| t.zone == "reef", 0.2);
        assert_eq!(open.lo, 0.0);
        assert!(open.hi > 0.4, "open world keeps it possible: {open}");
    }

    #[test]
    fn exists_closed_combines_independent_tuples() {
        let r = relation();
        let p = r.exists_closed(|t| t.zone == "open-sea");
        // 1 - (1-0.9)(1-0.4) = 0.94.
        assert!((p - 0.94).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_recovers_closed_world() {
        let mut r = relation();
        r.set_missing_budget(0.0);
        let i = r.exists_open(|t| t.zone == "open-sea", 0.5);
        assert!((i.width()).abs() < 1e-12, "no second-order uncertainty left");
        let (lo, hi) = r.expected_count_open(|_| true);
        assert_eq!(lo, hi);
    }

    #[test]
    fn certain_tuple_saturates_existence() {
        let r = relation();
        let i = r.exists_open(|t| t.zone == "port", 0.1);
        assert!((i.lo - 1.0).abs() < 1e-12);
        assert!((i.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relation() {
        let r: OpenWorldRelation<u32> = OpenWorldRelation::new(2.0);
        assert!(r.is_empty());
        assert_eq!(r.exists_closed(|_| true), 0.0);
        let i = r.exists_open(|_| true, 0.3);
        assert!(i.hi > 0.5, "two missing facts at 0.3 each: {i}");
    }
}
