//! Property tests for the trajectory store: batch/sequential append
//! equivalence and sealed-segment round-trips.

use mda_geo::distance::haversine_m;
use mda_geo::{Fix, Position, Timestamp};
use mda_store::segment::{SegmentConfig, TrajectorySegment};
use mda_store::trajstore::TrajectoryStore;
use proptest::prelude::*;

/// Build a batch of fixes from raw `(vessel, minute, milli-degree)`
/// triples — arbitrary interleaving, duplicates and disorder included.
fn batch_of(raw: &[(u32, i64, i64)]) -> Vec<Fix> {
    raw.iter()
        .map(|&(id, t_min, md)| {
            Fix::new(
                id % 5 + 1,
                Timestamp::from_mins(t_min),
                Position::new(43.0 + md as f64 * 1e-3, 5.0 + md as f64 * 1e-3),
                10.0,
                90.0,
            )
        })
        .collect()
}

/// A time-sorted slab of one vessel's fixes with bounded speeds and
/// spacing, as the hot archive would hand to the sealer.
fn slab_of(raw: &[(i64, i64, i64, u32, u32)]) -> Vec<Fix> {
    let mut t = Timestamp::from_secs(0);
    let (mut lat, mut lon) = (43.0, 5.0);
    raw.iter()
        .map(|&(dt_ms, dlat, dlon, sog_c, cog_c)| {
            t += dt_ms;
            lat += dlat as f64 * 1e-5;
            lon += dlon as f64 * 1e-5;
            Fix::new(
                7,
                t,
                Position::new(lat, lon),
                f64::from(sog_c) * 0.01,
                f64::from(cog_c % 36_000) * 0.01,
            )
        })
        .collect()
}

proptest! {
    /// `append_batch` (pre-sorted runs + linear merge) is
    /// order-equivalent to appending each fix sequentially, for any
    /// interleaving of vessels, disorder and duplicate timestamps.
    #[test]
    fn append_batch_equivalent_to_sequential_appends(
        raw in prop::collection::vec((0u32..5, -200i64..200, -500i64..500), 0..400),
        split in 0usize..400,
    ) {
        let fixes = batch_of(&raw);
        let mut sequential = TrajectoryStore::new();
        for f in &fixes {
            sequential.append(*f);
        }
        // Split into two batches: equivalence must hold when a batch
        // lands on an already-populated store, too.
        let cut = split.min(fixes.len());
        let mut batched = TrajectoryStore::new();
        batched.append_batch(fixes[..cut].to_vec());
        batched.append_batch(fixes[cut..].to_vec());
        prop_assert_eq!(sequential.len(), batched.len());
        for id in 1..=5u32 {
            prop_assert_eq!(sequential.trajectory(id), batched.trajectory(id), "vessel {}", id);
        }
    }

    /// Lossless sealing (tolerance 0) round-trips every field of every
    /// fix bit-exactly.
    #[test]
    fn segment_roundtrip_lossless_at_tolerance_zero(
        raw in prop::collection::vec(
            (0i64..120_000, -80i64..80, -80i64..80, 0u32..2_500, 0u32..72_000),
            1..300,
        ),
    ) {
        let fixes = slab_of(&raw);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        prop_assert_eq!(seg.error_bound_m(), 0.0);
        let back = seg.decode();
        prop_assert_eq!(back.len(), fixes.len());
        for (a, b) in fixes.iter().zip(&back) {
            prop_assert_eq!(a.t, b.t);
            prop_assert_eq!(a.pos.lat.to_bits(), b.pos.lat.to_bits());
            prop_assert_eq!(a.pos.lon.to_bits(), b.pos.lon.to_bits());
            prop_assert_eq!(a.sog_kn.to_bits(), b.sog_kn.to_bits());
            prop_assert_eq!(a.cog_deg.to_bits(), b.cog_deg.to_bits());
        }
    }

    /// Lossy sealing reconstructs every *input* observation within the
    /// segment's recorded error bound: kept fixes decode to within the
    /// bound, dropped fixes dead-reckon from the preceding kept fix to
    /// within the bound (the threshold-compression guarantee, plus
    /// quantization slack).
    #[test]
    fn segment_roundtrip_lossy_within_recorded_bound(
        raw in prop::collection::vec(
            (1_000i64..60_000, -60i64..60, -60i64..60, 0u32..2_500, 0u32..72_000),
            1..250,
        ),
        tolerance in 10.0f64..200.0,
    ) {
        let fixes = slab_of(&raw);
        let config = SegmentConfig { tolerance_m: tolerance, ..SegmentConfig::default() };
        let seg = TrajectorySegment::seal(7, &fixes, &config).unwrap();
        let bound = seg.error_bound_m();
        prop_assert!(bound >= tolerance);
        let decoded = seg.decode();
        prop_assert!(decoded.len() <= fixes.len());
        for f in &fixes {
            // Reconstruct the observation from the last decoded fix at
            // or before its time.
            let anchor = decoded.iter().take_while(|d| d.t <= f.t).last().unwrap();
            let reconstructed = anchor.dead_reckon(f.t);
            let err = haversine_m(reconstructed, f.pos);
            prop_assert!(
                err <= bound,
                "reconstruction error {} m exceeds recorded bound {} m",
                err,
                bound
            );
        }
    }
}

proptest! {
    /// The struct-of-arrays hot tier is observationally equivalent to a
    /// plain per-vessel `Vec<Fix>` oracle under arbitrary interleavings
    /// of disordered appends and `take_before` seal sweeps: every query
    /// surface — trajectory, range, latest_at, first_after,
    /// position_at, window_into, iter — answers byte-identically.
    #[test]
    fn soa_store_matches_vec_oracle_under_interleaved_seals(
        ops in prop::collection::vec((0u32..6, -300i64..600, -500i64..500, 0u8..12), 1..400),
    ) {
        use std::collections::BTreeMap;
        use mda_geo::BoundingBox;

        let mut store = TrajectoryStore::new();
        let mut oracle: BTreeMap<u32, Vec<Fix>> = BTreeMap::new();
        for &(v_raw, t_min, md, sel) in &ops {
            if sel == 0 {
                // Seal sweep at an arbitrary cut, interleaved with
                // appends: both sides drain the strict-past prefix.
                let cut = Timestamp::from_mins(t_min);
                let drained: Vec<(u32, Vec<Fix>)> = store
                    .take_before(cut)
                    .into_iter()
                    .map(|(id, tr)| (id, tr.view(id).to_vec()))
                    .collect();
                let mut expect: Vec<(u32, Vec<Fix>)> = Vec::new();
                oracle.retain(|&id, fixes| {
                    let n = fixes.iter().take_while(|f| f.t < cut).count();
                    if n > 0 {
                        expect.push((id, fixes.drain(..n).collect()));
                    }
                    !fixes.is_empty()
                });
                prop_assert_eq!(drained, expect, "seal sweep at {:?} diverged", cut);
            } else {
                let fix = batch_of(&[(v_raw, t_min, md)])[0];
                store.append(fix);
                let fixes = oracle.entry(fix.id).or_default();
                // Same insertion rule as the store: equal timestamps
                // keep arrival order.
                let at = fixes.partition_point(|f| f.t <= fix.t);
                fixes.insert(at, fix);
            }
        }

        // Content equivalence, per vessel and globally.
        prop_assert_eq!(store.len(), oracle.values().map(Vec::len).sum::<usize>());
        prop_assert_eq!(store.vessel_count(), oracle.len());
        let flat: Vec<Fix> = store.iter().collect();
        let expect_flat: Vec<Fix> = oracle.values().flatten().copied().collect();
        prop_assert_eq!(flat, expect_flat);

        // Query equivalence at probe points straddling the data.
        let probes: Vec<Timestamp> =
            (-2i64..=6).map(|k| Timestamp::from_mins(k * 100 - 50)).collect();
        for id in 1..=6u32 {
            let traj = store.trajectory(id).map(|v| v.to_vec());
            prop_assert_eq!(&traj, &oracle.get(&id).cloned(), "trajectory({})", id);
            let fixes = oracle.get(&id).cloned().unwrap_or_default();
            for (i, &a) in probes.iter().enumerate() {
                prop_assert_eq!(
                    store.latest_at(id, a),
                    fixes.iter().rev().find(|f| f.t <= a).copied(),
                    "latest_at({}, {:?})", id, a
                );
                prop_assert_eq!(
                    store.first_after(id, a),
                    fixes.iter().find(|f| f.t > a).copied(),
                    "first_after({}, {:?})", id, a
                );
                for &b in &probes[i..] {
                    let got = store.range(id, a, b).to_vec();
                    let expect: Vec<Fix> =
                        fixes.iter().filter(|f| a <= f.t && f.t <= b).copied().collect();
                    prop_assert_eq!(got, expect, "range({}, {:?}, {:?})", id, a, b);
                }
            }
        }

        // position_at and window_into run identical code on a store
        // rebuilt from the oracle's (already time-ordered) content:
        // equality means the incrementally-built columns match the
        // canonical ones exactly, interpolation arithmetic included.
        let mut rebuilt = TrajectoryStore::new();
        for fixes in oracle.values() {
            for f in fixes {
                rebuilt.append(*f);
            }
        }
        let area = BoundingBox::new(42.8, 4.6, 43.3, 5.4);
        for (i, &a) in probes.iter().enumerate() {
            for id in 1..=6u32 {
                prop_assert_eq!(store.position_at(id, a), rebuilt.position_at(id, a));
            }
            for &b in &probes[i..] {
                let (mut got, mut expect) = (Vec::new(), Vec::new());
                store.window_into(&area, a, b, &mut got);
                rebuilt.window_into(&area, a, b, &mut expect);
                prop_assert_eq!(got, expect, "window_into({:?}, {:?})", a, b);
            }
        }
    }
}
