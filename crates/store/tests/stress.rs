//! Concurrency stress: many writers and readers on the sharded store,
//! validated against a single-threaded oracle.
//!
//! 8 writer threads ingest disjoint vessel sets (mixing per-fix appends
//! and batch appends) while reader threads hammer queries. Afterwards
//! the store must agree exactly with a [`TrajectoryStore`] /
//! [`KnnEngine`] pair built single-threaded from the same fixes: final
//! counts, per-vessel trajectories in sorted order, interpolated
//! positions and kNN answers.

use mda_geo::time::MINUTE;
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use mda_store::knn::KnnEngine;
use mda_store::shards::{KnnConfig, ShardedTrajectoryStore, StIndexConfig, StoreConfig};
use mda_store::trajstore::TrajectoryStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

const WRITERS: u32 = 8;
const VESSELS_PER_WRITER: u32 = 25;
const FIXES_PER_VESSEL: usize = 120;

/// One writer's workload: its vessels' fixes interleaved in time order.
fn writer_fixes(writer: u32) -> Vec<Fix> {
    let mut rng = StdRng::seed_from_u64(1_000 + u64::from(writer));
    let mut out = Vec::new();
    for step in 0..FIXES_PER_VESSEL {
        for v in 0..VESSELS_PER_WRITER {
            let id = writer * VESSELS_PER_WRITER + v + 1;
            out.push(Fix::new(
                id,
                Timestamp::from_secs((step as i64) * 30),
                Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0)),
                rng.gen_range(0.0..18.0),
                rng.gen_range(0.0..360.0),
            ));
        }
    }
    out
}

fn store_under_test() -> ShardedTrajectoryStore {
    ShardedTrajectoryStore::with_config(StoreConfig {
        shards: 8,
        st_index: Some(StIndexConfig {
            bounds: BoundingBox::new(42.0, 3.0, 44.0, 6.0),
            cell_deg: 0.25,
            slice: 30 * MINUTE,
        }),
        knn: Some(KnnConfig { cell_deg: 0.1, max_extrapolation: 120 * MINUTE }),
        ..StoreConfig::default()
    })
}

#[test]
fn writers_and_readers_match_single_threaded_oracle() {
    let store = store_under_test();
    let workloads: Vec<Vec<Fix>> = (0..WRITERS).map(writer_fixes).collect();

    thread::scope(|s| {
        for fixes in workloads.clone() {
            let store = store.clone();
            s.spawn(move || {
                // Alternate per-fix appends and batch appends to cover
                // both ingest paths under contention.
                for (i, chunk) in fixes.chunks(64).enumerate() {
                    if i % 2 == 0 {
                        for f in chunk {
                            store.append(*f);
                        }
                    } else {
                        store.append_batch(chunk.to_vec());
                    }
                }
            });
        }
        // Concurrent readers: results are transient while writers run,
        // but every call must be internally consistent and never panic.
        for r in 0..4u64 {
            let store = store.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(r);
                for _ in 0..200 {
                    let id = rng.gen_range(1..=WRITERS * VESSELS_PER_WRITER);
                    let _ = store.len();
                    let _ = store.position_at(id, Timestamp::from_mins(rng.gen_range(0..60)));
                    if let Some(traj) = store.trajectory(id) {
                        assert!(traj.windows(2).all(|w| w[0].t <= w[1].t), "torn trajectory");
                    }
                    let q = Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0));
                    let res = store.knn(q, Timestamp::from_mins(30), 5);
                    assert!(res.windows(2).all(|w| w[0].dist_m <= w[1].dist_m), "unsorted knn");
                }
            });
        }
    });

    // Single-threaded oracle over the same fixes.
    let mut oracle = TrajectoryStore::new();
    let mut oracle_knn = KnnEngine::new(0.1, 120 * MINUTE);
    for fixes in &workloads {
        for f in fixes {
            oracle.append(*f);
            oracle_knn.update_if_newer(*f);
        }
    }

    // Final counts.
    assert_eq!(store.len(), oracle.len());
    assert_eq!(store.vessel_count(), oracle.vessel_count());
    assert_eq!(store.vessels().len() as u32, WRITERS * VESSELS_PER_WRITER);

    // Per-vessel trajectories: exact content, sorted by time.
    for id in store.vessels() {
        let got = store.trajectory(id).unwrap();
        let want = oracle.trajectory(id).unwrap();
        assert_eq!(got, want.to_vec(), "vessel {id} trajectory diverged");
        assert!(got.windows(2).all(|w| w[0].t <= w[1].t), "vessel {id} unsorted");
    }

    // Interpolated positions match the oracle at sampled instants.
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..300 {
        let id = rng.gen_range(1..=WRITERS * VESSELS_PER_WRITER);
        let t = Timestamp::from_secs(rng.gen_range(-100..4_000));
        assert_eq!(store.position_at(id, t), oracle.position_at(id, t), "vessel {id} at {t}");
    }

    // Cross-shard kNN matches the single-threaded scan oracle.
    let t = Timestamp::from_secs((FIXES_PER_VESSEL as i64) * 30 + 60);
    for _ in 0..25 {
        let q = Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0));
        let got: Vec<u32> = store.knn(q, t, 10).iter().map(|r| r.id).collect();
        let want: Vec<u32> = oracle_knn.knn_scan(q, t, 10).iter().map(|r| r.id).collect();
        assert_eq!(got, want, "kNN diverged at {q}");
    }
}

#[test]
fn concurrent_batch_ingest_is_agnostic_to_thread_count() {
    // The same workload ingested with 1..=8 concurrent batch writers
    // must always produce the identical store.
    let workloads: Vec<Vec<Fix>> = (0..WRITERS).map(writer_fixes).collect();
    let reference = store_under_test();
    for fixes in &workloads {
        reference.append_batch(fixes.clone());
    }
    for threads in [2usize, 5, 8] {
        let store = store_under_test();
        thread::scope(|s| {
            for chunk in workloads.chunks(WRITERS.div_ceil(threads as u32) as usize) {
                let store = store.clone();
                let chunk = chunk.to_vec();
                s.spawn(move || {
                    for fixes in chunk {
                        store.append_batch(fixes);
                    }
                });
            }
        });
        assert_eq!(store.len(), reference.len(), "{threads} writers");
        for id in reference.vessels() {
            assert_eq!(store.trajectory(id), reference.trajectory(id), "{threads} writers");
        }
    }
}
