//! Durability properties: the corruption battery (no panic is
//! reachable from bytes read off disk) and kill-and-recover (a
//! recovered store answers queries exactly like the pre-crash store
//! did at its last published watermark).

use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use mda_store::segment::{SegmentConfig, TrajectorySegment};
use mda_store::shards::{KnnConfig, StIndexConfig, StoreConfig};
use mda_store::{DurabilityConfig, DurableStore};
use proptest::prelude::*;
use std::path::PathBuf;

/// A time-sorted slab of one vessel's fixes from raw deltas, as the
/// hot archive hands to the sealer.
fn slab_of(raw: &[(i64, i64, i64, u32, u32)]) -> Vec<Fix> {
    let mut t = Timestamp::from_secs(0);
    let (mut lat, mut lon) = (43.0, 5.0);
    raw.iter()
        .map(|&(dt_ms, dlat, dlon, sog_c, cog_c)| {
            t += dt_ms;
            lat += dlat as f64 * 1e-5;
            lon += dlon as f64 * 1e-5;
            Fix::new(
                9,
                t,
                Position::new(lat, lon),
                f64::from(sog_c) * 0.01,
                f64::from(cog_c % 36_000) * 0.01,
            )
        })
        .collect()
}

proptest! {
    /// Seal → bytes → flip one bit anywhere → parse: an error or a
    /// fence-consistent segment, never a panic — and if it parses, a
    /// full decode is also panic-free.
    #[test]
    fn bit_flips_in_sealed_bytes_never_panic(
        raw in prop::collection::vec((1_000i64..600_000, -500i64..500, -500i64..500, 0u32..3_000, 0u32..36_000), 1..60),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let slab = slab_of(&raw);
        let seg = TrajectorySegment::seal(9, &slab, &SegmentConfig::lossless()).expect("non-empty slab seals");
        let mut bytes = seg.to_bytes();
        let byte = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[byte] ^= 1 << bit;
        if let Ok(parsed) = TrajectorySegment::try_from_bytes(&bytes) {
            // Structurally valid bytes must also decode without panicking
            // (errors are fine; the infallible decode truncates).
            let _ = parsed.try_decode();
            let _ = parsed.decode();
        }
    }

    /// Seal → bytes → truncate at any offset → parse: always an error,
    /// never a panic (a prefix cannot pass the total-length check).
    #[test]
    fn truncations_of_sealed_bytes_always_error(
        raw in prop::collection::vec((1_000i64..600_000, -500i64..500, -500i64..500, 0u32..3_000, 0u32..36_000), 1..60),
        cut_frac in 0.0f64..1.0,
    ) {
        let slab = slab_of(&raw);
        let seg = TrajectorySegment::seal(9, &slab, &SegmentConfig::lossless()).expect("non-empty slab seals");
        let bytes = seg.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(TrajectorySegment::try_from_bytes(&bytes[..cut]).is_err());
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mda-durtest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn indexed_config() -> StoreConfig {
    StoreConfig {
        shards: 8,
        st_index: Some(StIndexConfig {
            bounds: BoundingBox::new(42.0, 3.0, 45.0, 7.0),
            cell_deg: 0.1,
            slice: 30 * mda_geo::time::MINUTE,
        }),
        knn: Some(KnnConfig { cell_deg: 0.1, max_extrapolation: mda_geo::time::HOUR }),
        seal: SegmentConfig::lossless(),
    }
}

/// A deterministic little fleet: 12 vessels steaming east on separate
/// latitudes, one fix a minute each.
fn fleet_fix(v: u32, minute: i64) -> Fix {
    Fix::new(
        v,
        Timestamp::from_mins(minute),
        Position::new(42.3 + 0.2 * f64::from(v), 3.5 + 0.004 * minute as f64),
        10.0 + f64::from(v),
        90.0,
    )
}

/// Kill-and-recover, end to end at the store level: ingest with marks
/// and seals, capture oracle answers at the last published watermark,
/// drop the store with no shutdown path, recover, and require the
/// watermark and every query answer to be *exactly* the oracle's.
#[test]
fn recovery_replays_to_the_exact_pre_crash_watermark() {
    let dir = tmp_dir("oracle");
    let store = DurableStore::open(indexed_config(), &DurabilityConfig::new(&dir)).unwrap();
    let last_mark = Timestamp::from_mins(299);
    for minute in 0..300i64 {
        store.append_batch((1..=12).map(|v| fleet_fix(v, minute)).collect()).unwrap();
        // Mark every 10 minutes, like tick boundaries would.
        if minute % 10 == 9 {
            store.mark(Timestamp::from_mins(minute)).unwrap();
        }
        if minute == 180 {
            store.seal_before(Timestamp::from_mins(120)).unwrap();
        }
    }
    assert_eq!(store.watermark(), last_mark);
    assert!(store.tier_stats().cold_segments > 0, "the scenario must seal");

    // The oracle: what the store answers at the watermark, captured
    // *before* the unpublished tail below muddies in-memory state.
    let area = BoundingBox::new(42.4, 3.5, 43.4, 5.0);
    let oracle_window = store.store().window(&area, Timestamp::from_mins(30), last_mark);
    let oracle_knn = store.store().knn(Position::new(43.0, 4.0), last_mark, 5);
    let oracle_trajs: Vec<_> = (1..=12).map(|v| store.store().trajectory(v).unwrap()).collect();
    let pre_crash_segments = store.tier_stats().cold_segments;

    // A tail of appends past the last mark: logged but never published
    // — a reader of the last published snapshot never saw them, and
    // recovery must not resurrect them.
    for minute in 300..320i64 {
        store.append_batch((1..=12).map(|v| fleet_fix(v, minute)).collect()).unwrap();
    }
    drop(store); // the crash: no flush, no shutdown hook

    let back = DurableStore::recover(&dir, indexed_config()).unwrap();
    let report = back.recovery().clone();
    assert_eq!(report.watermark, last_mark, "exact pre-crash published watermark");
    assert_eq!(back.watermark(), last_mark);
    assert_eq!(report.segments, pre_crash_segments, "all sealed segments adopted");
    assert_eq!(report.dropped_segments, 0);
    assert!(report.discarded_unpublished > 0, "the unmarked tail must be discarded");

    // Query answers from the recovered store (cold tier now served
    // from disk-loaded segments) equal the oracle bit for bit.
    assert_eq!(back.store().window(&area, Timestamp::from_mins(30), last_mark), oracle_window);
    assert_eq!(back.store().knn(Position::new(43.0, 4.0), last_mark, 5), oracle_knn);
    for (v, want) in (1..=12).zip(&oracle_trajs) {
        assert_eq!(&back.store().trajectory(v).unwrap(), want, "vessel {v}");
    }

    // And the recovered store keeps working: ingest past the watermark,
    // mark, seal, recover again.
    back.append_batch((1..=12).map(|v| fleet_fix(v, 321)).collect()).unwrap();
    back.mark(Timestamp::from_mins(321)).unwrap();
    back.seal_before(Timestamp::from_mins(240)).unwrap();
    drop(back);
    let again = DurableStore::recover(&dir, indexed_config()).unwrap();
    assert_eq!(again.watermark(), Timestamp::from_mins(321));
    assert_eq!(again.store().trajectory(5).unwrap().last().unwrap().t, Timestamp::from_mins(321));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting any single byte of any durable file never panics
/// recovery: it either recovers (tail damage, redundantly-covered
/// bytes) or reports a clean manifest error.
#[test]
fn corrupted_data_dirs_recover_or_error_never_panic() {
    let dir = tmp_dir("corrupt");
    let store = DurableStore::open(indexed_config(), &DurabilityConfig::new(&dir)).unwrap();
    for minute in 0..90i64 {
        store.append_batch((1..=6).map(|v| fleet_fix(v, minute)).collect()).unwrap();
    }
    store.mark(Timestamp::from_mins(89)).unwrap();
    store.seal_before(Timestamp::from_mins(60)).unwrap();
    drop(store);

    // Snapshot the whole directory: a recovery attempt *repairs* it
    // (truncates tails, rewrites the manifest), so every iteration
    // restores the full pre-crash baseline before corrupting.
    let baseline: Vec<(PathBuf, Vec<u8>)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .map(|p| {
            let bytes = std::fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect();
    assert!(baseline.len() >= 3, "manifest + wal + segment files expected");
    let restore = |dir: &PathBuf| {
        std::fs::remove_dir_all(dir).unwrap();
        std::fs::create_dir_all(dir).unwrap();
        for (path, bytes) in &baseline {
            std::fs::write(path, bytes).unwrap();
        }
    };
    for (file, clean) in &baseline {
        if clean.is_empty() {
            continue; // shards that never sealed have empty files
        }
        // Stride through the file so the battery stays fast while still
        // hitting every region (headers, frame headers, payloads, tail).
        for byte in (0..clean.len()).step_by(7).chain([clean.len() - 1]) {
            restore(&dir);
            let mut bad = clean.clone();
            bad[byte] ^= 0x20;
            std::fs::write(file, &bad).unwrap();
            match DurableStore::recover(&dir, indexed_config()) {
                Ok(back) => {
                    // Whatever survived must still be fence-consistent.
                    assert!(back.watermark() <= Timestamp::from_mins(89));
                }
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{e}");
                }
            }
        }
    }
    // The pristine directory still recovers exactly.
    restore(&dir);
    let back = DurableStore::recover(&dir, indexed_config()).unwrap();
    assert_eq!(back.watermark(), Timestamp::from_mins(89));
    let _ = std::fs::remove_dir_all(&dir);
}
