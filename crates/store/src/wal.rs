//! The hot tier's append-only write-ahead log.
//!
//! One WAL generation is one file, `wal-<gen>.log`: an 8-byte header
//! (magic `MDAW`, format version) followed by checksummed frames (see
//! the crate's framing module) carrying two record kinds:
//!
//! - **Batch** — a group of accepted fixes, logged *before* they are
//!   applied to the in-memory hot tier.
//! - **Mark** — a published snapshot watermark. A mark at `W` is the
//!   durability boundary: recovery replays exactly the logged fixes
//!   with event time `<= W` for the largest durable `W`, which under
//!   the pipelines' tick discipline (appends after a boundary mark
//!   always carry event times past it) reproduces the published store
//!   contents at `W` precisely. Fixes beyond the last mark were never
//!   published, and are discarded on replay just as their snapshots
//!   were never observable.
//!
//! Each seal *rotates* the log: a fresh generation is written holding
//! a snapshot batch of the post-seal hot tier plus the last mark, the
//! manifest is atomically pointed at the new generation, and the old
//! file is deleted — the WAL never grows past one hot tier plus one
//! seal interval of traffic. A torn tail (crash mid-append) is
//! detected by the frame CRC and truncated, never panicked over.

use crate::bytes::ByteReader;
use crate::frame::{read_frame, write_frame, FrameRead};
use mda_geo::{Fix, Position, Timestamp};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File magic: "MDAW" followed by the format version.
const WAL_MAGIC: [u8; 8] = *b"MDAW\x01\0\0\0";

/// Frame payload tag: a batch of fixes.
const TAG_BATCH: u8 = 1;
/// Frame payload tag: a published watermark mark.
const TAG_MARK: u8 = 2;

/// Serialized size of one fix in a batch payload: id (4) + t (8) +
/// 4 × f64 (32).
const FIX_BYTES: usize = 44;

/// The WAL file name of generation `gen`.
pub fn file_name(gen: u64) -> String {
    format!("wal-{gen}.log")
}

/// An open WAL generation accepting appends.
///
/// Appends are a single `write_all` per record — after the call
/// returns, a process crash cannot lose the record (an OS crash can,
/// unless [`WalWriter::sync`] was called; the durable tier exposes
/// that as a policy knob).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl WalWriter {
    /// Create (truncating any leftover) the WAL file for `gen` in
    /// `dir` and write its header.
    pub fn create(dir: &Path, gen: u64) -> io::Result<Self> {
        let path = dir.join(file_name(gen));
        let mut file = File::create(&path)?;
        file.write_all(&WAL_MAGIC)?;
        Ok(Self { file, path, bytes: WAL_MAGIC.len() as u64 })
    }

    /// Re-open an existing WAL file for appending after recovery,
    /// truncated to its validated prefix `valid_len`.
    pub fn reopen(dir: &Path, gen: u64, valid_len: u64) -> io::Result<Self> {
        let path = dir.join(file_name(gen));
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_len)?;
        let mut s = Self { file, path, bytes: valid_len };
        use std::io::Seek;
        s.file.seek(io::SeekFrom::End(0))?;
        Ok(s)
    }

    /// Append one batch record. No-op for an empty batch.
    pub fn append_batch(&mut self, fixes: &[Fix]) -> io::Result<()> {
        if fixes.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(5 + fixes.len() * FIX_BYTES);
        payload.push(TAG_BATCH);
        payload.extend_from_slice(&(fixes.len() as u32).to_le_bytes());
        for f in fixes {
            payload.extend_from_slice(&f.id.to_le_bytes());
            payload.extend_from_slice(&f.t.0.to_le_bytes());
            for v in [f.pos.lat, f.pos.lon, f.sog_kn, f.cog_deg] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        self.write_record(&payload)
    }

    /// Append one mark record: `wm` is now a published watermark.
    pub fn append_mark(&mut self, wm: Timestamp) -> io::Result<()> {
        let mut payload = Vec::with_capacity(9);
        payload.push(TAG_MARK);
        payload.extend_from_slice(&wm.0.to_le_bytes());
        self.write_record(&payload)
    }

    fn write_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(8 + payload.len());
        write_frame(&mut framed, payload);
        self.file.write_all(&framed)?;
        self.bytes += framed.len() as u64;
        Ok(())
    }

    /// Flush OS buffers to stable storage (fsync).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Bytes written to this generation so far (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The file this generation lives in.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What a WAL generation replays to.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every fix from valid batch records, in logged order (the
    /// event-time `<= watermark` durability filter is the caller's —
    /// it also knows the manifest watermark).
    pub fixes: Vec<Fix>,
    /// The largest watermark from valid mark records, if any.
    pub watermark: Option<Timestamp>,
    /// Byte length of the valid record prefix — what the file must be
    /// truncated to before appending resumes.
    pub valid_len: u64,
    /// True when a torn tail (or mid-file corruption) was dropped.
    pub torn: bool,
}

/// Replay the WAL file for `gen`, tolerating a torn tail: the first
/// unreadable frame ends the replay, and everything before it counts.
/// A missing file replays to empty (a crash can land between manifest
/// write and the first append of a fresh generation only if the
/// process also never wrote the header — treated as an empty log).
pub fn replay(dir: &Path, gen: u64) -> io::Result<WalReplay> {
    let path = dir.join(file_name(gen));
    let bytes = match std::fs::File::open(&path) {
        Ok(mut f) => {
            let mut v = Vec::new();
            f.read_to_end(&mut v)?;
            v
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut out = WalReplay::default();
    if bytes.len() < WAL_MAGIC.len() || bytes[..4] != WAL_MAGIC[..4] {
        // No readable header: treat the whole file as a torn tail.
        out.torn = true;
        return Ok(out);
    }
    let mut at = WAL_MAGIC.len();
    loop {
        let frame_start = at;
        match read_frame(&bytes, &mut at) {
            FrameRead::End => break,
            FrameRead::Torn => {
                out.torn = true;
                at = frame_start;
                break;
            }
            FrameRead::Ok(payload) => {
                if !apply_record(payload, &mut out) {
                    // A CRC-valid frame with a malformed payload means
                    // corruption beyond a torn tail; stop trusting the
                    // file here, keep the prefix.
                    out.torn = true;
                    at = frame_start;
                    break;
                }
            }
        }
    }
    out.valid_len = at as u64;
    Ok(out)
}

/// Decode one record payload into the replay; `false` if malformed.
/// Every read goes through the shared fallible [`ByteReader`]: a
/// truncated or overlong record is a clean `false`, never a panic.
fn apply_record(payload: &[u8], out: &mut WalReplay) -> bool {
    let mut r = ByteReader::new(payload);
    match r.take(1) {
        Some([TAG_BATCH]) => {
            let Some(count) = r.u32() else { return false };
            let count = count as usize;
            if count.checked_mul(FIX_BYTES) != Some(r.remaining()) {
                return false;
            }
            out.fixes.reserve(count);
            for _ in 0..count {
                let (Some(id), Some(t)) = (r.u32(), r.i64()) else { return false };
                let (Some(lat), Some(lon), Some(sog), Some(cog)) =
                    (r.f64(), r.f64(), r.f64(), r.f64())
                else {
                    return false;
                };
                out.fixes.push(Fix::new(id, Timestamp(t), Position::new(lat, lon), sog, cog));
            }
            true
        }
        Some([TAG_MARK]) => {
            let Some(wm) = r.i64() else { return false };
            if r.remaining() != 0 {
                return false;
            }
            let wm = Timestamp(wm);
            if out.watermark.is_none_or(|cur| wm > cur) {
                out.watermark = Some(wm);
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(id: u32, t: i64) -> Fix {
        Fix::new(id, Timestamp(t), Position::new(43.0, 5.0), 10.0, 90.0)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mda-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn replay_reproduces_batches_and_marks() {
        let dir = tmp_dir("replay");
        let mut w = WalWriter::create(&dir, 3).unwrap();
        w.append_batch(&[fix(1, 10), fix(2, 20)]).unwrap();
        w.append_mark(Timestamp(20)).unwrap();
        w.append_batch(&[fix(1, 30)]).unwrap();
        w.append_mark(Timestamp(30)).unwrap();
        w.append_batch(&[fix(2, 40)]).unwrap();
        drop(w);
        let r = replay(&dir, 3).unwrap();
        assert_eq!(r.fixes.len(), 4);
        assert_eq!(r.watermark, Some(Timestamp(30)));
        assert!(!r.torn);
        // Missing generation replays empty.
        let empty = replay(&dir, 99).unwrap();
        assert!(empty.fixes.is_empty() && empty.watermark.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_replays_a_valid_prefix() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        for i in 0..20 {
            w.append_batch(&[fix(1, i * 10), fix(2, i * 10 + 5)]).unwrap();
            w.append_mark(Timestamp(i * 10 + 5)).unwrap();
        }
        let full = std::fs::read(w.path()).unwrap();
        drop(w);
        let whole = replay(&dir, 0).unwrap();
        assert_eq!(whole.fixes.len(), 40);
        for cut in 0..full.len() {
            std::fs::write(dir.join(file_name(0)), &full[..cut]).unwrap();
            let r = replay(&dir, 0).unwrap();
            assert!(r.valid_len <= cut as u64);
            assert!(r.fixes.len() <= whole.fixes.len());
            if let Some(wm) = r.watermark {
                assert!(wm <= Timestamp(195));
            }
            // Replayed prefix is a prefix of the full replay.
            assert_eq!(r.fixes[..], whole.fixes[..r.fixes.len()]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bits_never_panic() {
        let dir = tmp_dir("flip");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append_batch(&[fix(1, 10), fix(2, 20), fix(3, 30)]).unwrap();
        w.append_mark(Timestamp(30)).unwrap();
        let full = std::fs::read(w.path()).unwrap();
        drop(w);
        for byte in 0..full.len() {
            let mut bad = full.clone();
            bad[byte] ^= 0x40;
            std::fs::write(dir.join(file_name(0)), &bad).unwrap();
            let _ = replay(&dir, 0).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
