//! Immutable, versioned snapshot handles over the sharded store.
//!
//! A [`StoreSnapshot`] is a point-in-time, read-only view of every
//! shard's two tiers, built by
//! [`ShardedTrajectoryStore::snapshot`](crate::shards::ShardedTrajectoryStore::snapshot).
//! It answers the same query vocabulary as the live store — point
//! lookups, ranges, windows, kNN — with the **same deterministic
//! cross-tier merge semantics** (both fronts call the one shared
//! implementation in `shards::tiers`), but without taking any lock:
//! once built, a snapshot is plain immutable data that any number of
//! reader threads can query while ingest keeps writing to the live
//! shards.
//!
//! ## Cost model
//!
//! Snapshots are cheap through two layers of sharing:
//!
//! - **Sealed segments are `Arc`-shared** — the cold tier clone copies
//!   per-vessel pointer lists, never encoded columns, so a snapshot's
//!   cold side costs O(segments), not O(history).
//! - **Unchanged shards are reused wholesale** — every shard carries a
//!   version counter bumped on content mutation; `snapshot(prev)`
//!   re-clones only shards whose version moved since `prev` was built
//!   and shares the previous [`ShardSnapshot`] `Arc` for the rest (the
//!   versioned-reuse pattern the event engine's `LiveIndex` sweeps
//!   established). Under shard-affine ingest, idle shards cost nothing
//!   per publication.
//!
//! The remaining per-publication cost is cloning the *hot* tier of
//! changed shards, which retention bounds: fixes older than the hot
//! horizon rotate into (shared) sealed segments.

use crate::knn::{merge_candidates, KnnResult};
use crate::shards::tiers;
use crate::tier::{ColdTier, TierStats};
use crate::trajstore::TrajectoryStore;
use mda_geo::{BoundingBox, Fix, Position, Timestamp, VesselId};
use std::sync::Arc;

/// A frozen copy of one shard's two tiers, tagged with the shard
/// version it was built from.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    version: u64,
    archive: TrajectoryStore,
    cold: ColdTier,
}

impl ShardSnapshot {
    /// Build from a shard's current state (called under its read lock).
    pub(crate) fn new(version: u64, archive: TrajectoryStore, cold: ColdTier) -> Self {
        Self { version, archive, cold }
    }

    /// The shard version this snapshot captured.
    pub(crate) fn version(&self) -> u64 {
        self.version
    }
}

/// An immutable point-in-time view of a whole sharded store.
///
/// Obtained from
/// [`ShardedTrajectoryStore::snapshot`](crate::shards::ShardedTrajectoryStore::snapshot);
/// cloning the snapshot itself is O(shards) `Arc` clones.
///
/// ```
/// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
/// use mda_store::ShardedTrajectoryStore;
///
/// let store = ShardedTrajectoryStore::new();
/// for i in 0..10i64 {
///     let t = Timestamp::from_mins(i);
///     store.append(Fix::new(1, t, Position::new(43.0, 5.0 + 0.01 * i as f64), 10.0, 90.0));
/// }
/// let snap = store.snapshot(None);
/// // Writes after the snapshot are invisible to it: readers see a
/// // stable picture while ingest keeps going.
/// store.append(Fix::new(2, Timestamp::from_mins(3), Position::new(43.5, 5.0), 10.0, 90.0));
/// assert_eq!(snap.len(), 10);
/// assert_eq!(snap.vessels(), vec![1]);
/// assert_eq!(store.len(), 11);
/// // Rebuilding against the previous snapshot re-clones only shards
/// // that changed.
/// let snap2 = store.snapshot(Some(&snap));
/// assert_eq!(snap2.vessels(), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    store_id: u64,
    shards: Vec<Arc<ShardSnapshot>>,
}

impl StoreSnapshot {
    pub(crate) fn from_shards(store_id: u64, shards: Vec<Arc<ShardSnapshot>>) -> Self {
        Self { store_id, shards }
    }

    pub(crate) fn shard(&self, idx: usize) -> Option<&Arc<ShardSnapshot>> {
        self.shards.get(idx)
    }

    /// Identity of the store this snapshot was taken from (versioned
    /// reuse is only valid against the same store's counters).
    pub(crate) fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Number of shards captured.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: VesselId) -> &ShardSnapshot {
        &self.shards[mda_geo::vessel_shard(id, self.shards.len())]
    }

    /// Total fixes across both tiers of every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.archive.len() + s.cold.len()).sum()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.archive.is_empty() && s.cold.is_empty())
    }

    /// Number of distinct vessels across both tiers.
    pub fn vessel_count(&self) -> usize {
        self.shards.iter().map(|s| tiers::merged_vessels(&s.archive, &s.cold).count()).sum()
    }

    /// All vessel ids across both tiers, ascending.
    pub fn vessels(&self) -> Vec<VesselId> {
        let mut ids: Vec<VesselId> =
            self.shards.iter().flat_map(|s| tiers::merged_vessels(&s.archive, &s.cold)).collect();
        ids.sort_unstable();
        ids
    }

    /// Copy of a vessel's whole trajectory, merged across tiers (time
    /// order; arrival order on ties) — the same answer the live store
    /// gives at the instant the snapshot was taken.
    pub fn trajectory(&self, id: VesselId) -> Option<Vec<Fix>> {
        let s = self.shard_of(id);
        let cold = s.cold.trajectory(id);
        let hot = s.archive.trajectory(id);
        if cold.is_empty() && hot.is_none() {
            return None;
        }
        Some(crate::shards::merge_tiers(
            cold,
            hot.unwrap_or_else(|| crate::trajstore::TrackView::empty(id)),
        ))
    }

    /// Copy of a vessel's fixes in `[from, to]`, merged across tiers.
    pub fn range(&self, id: VesselId, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        let s = self.shard_of(id);
        crate::shards::merge_tiers(s.cold.range(id, from, to), s.archive.range(id, from, to))
    }

    /// The freshest fix of a vessel across tiers.
    pub fn latest(&self, id: VesselId) -> Option<Fix> {
        let s = self.shard_of(id);
        tiers::latest(&s.archive, &s.cold, id)
    }

    /// The latest fix of a vessel at or before `t`, across tiers.
    pub fn latest_at(&self, id: VesselId, t: Timestamp) -> Option<Fix> {
        let s = self.shard_of(id);
        tiers::latest_at(&s.archive, &s.cold, id, t)
    }

    /// Interpolated position at `t`, bracketing the instant across
    /// tiers (clamped at the trajectory ends).
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Option<Position> {
        let s = self.shard_of(id);
        tiers::position_at(&s.archive, &s.cold, id, t)
    }

    /// All fixes inside the spatial window and time range, sorted by
    /// the canonical (vessel, time) order — identical to the live
    /// store's [`window`](crate::shards::ShardedTrajectoryStore::window)
    /// answer over equal contents. The hot side is a scan (snapshots
    /// carry no grid index; the hot tier is retention-bounded), the
    /// cold side decodes only fence-intersecting segments.
    pub fn window(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        let mut out = Vec::new();
        for s in &self.shards {
            s.archive.window_into(area, from, to, &mut out);
            s.cold.window_into(area, from, to, &mut out);
        }
        tiers::canonical_window_sort(&mut out);
        out
    }

    /// Snapshot kNN at `t`: each vessel's freshest cross-tier fix is
    /// dead-reckoned to `t` and the per-shard candidates are heap-merged
    /// into the global top `k`, ranked (distance, vessel id) — the same
    /// scan path the index-less live store uses, so answers match it
    /// exactly over equal contents.
    pub fn knn(&self, query: Position, t: Timestamp, k: usize) -> Vec<KnnResult> {
        let parts: Vec<Vec<KnnResult>> =
            self.shards.iter().map(|s| tiers::scan_knn(&s.archive, &s.cold, query, t, k)).collect();
        merge_candidates(parts, k)
    }

    /// Per-tier size accounting of the captured state.
    pub fn tier_stats(&self) -> TierStats {
        self.shards.iter().fold(TierStats::default(), |mut acc, s| {
            acc.merge(&TierStats {
                hot_fixes: s.archive.len(),
                // Five dense 8-byte columns per fix in the SoA hot tier.
                hot_bytes: s.archive.len() * 5 * std::mem::size_of::<f64>(),
                ..s.cold.stats()
            });
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::segment::SegmentConfig;
    use crate::shards::{ShardedTrajectoryStore, StoreConfig};
    use mda_geo::time::MINUTE;
    use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::sync::Arc;

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), 10.0, 90.0)
    }

    fn random_store(seed: u64, n: usize) -> (ShardedTrajectoryStore, Vec<Fix>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fixes: Vec<Fix> = (0..n)
            .map(|i| {
                fix(
                    rng.gen_range(1..30u32),
                    i as i64 / 3,
                    rng.gen_range(42.0..44.0),
                    rng.gen_range(3.0..6.0),
                )
            })
            .collect();
        let store = ShardedTrajectoryStore::with_shards(4);
        store.append_batch(fixes.clone());
        (store, fixes)
    }

    #[test]
    fn snapshot_matches_live_store_on_every_read_path() {
        let (store, _) = random_store(1, 900);
        store.seal_before(Timestamp::from_mins(200));
        let snap = store.snapshot(None);
        assert_eq!(snap.len(), store.len());
        assert_eq!(snap.vessels(), store.vessels());
        assert_eq!(snap.vessel_count(), store.vessel_count());
        assert_eq!(snap.tier_stats(), store.tier_stats());
        for id in store.vessels() {
            assert_eq!(snap.trajectory(id), store.trajectory(id), "trajectory {id}");
            let (a, b) = (Timestamp::from_mins(50), Timestamp::from_mins(250));
            assert_eq!(snap.range(id, a, b), store.range(id, a, b), "range {id}");
            for t in [0i64, 100, 299, 400] {
                let t = Timestamp::from_mins(t);
                assert_eq!(snap.latest_at(id, t), store.latest_at(id, t), "latest_at {id}");
                assert_eq!(snap.position_at(id, t), store.position_at(id, t), "pos {id}");
            }
        }
        let area = BoundingBox::new(42.3, 3.3, 43.7, 5.7);
        let (from, to) = (Timestamp::from_mins(20), Timestamp::from_mins(280));
        assert_eq!(snap.window(&area, from, to), store.window(&area, from, to));
        let q = Position::new(43.1, 4.6);
        let t = Timestamp::from_mins(310);
        assert_eq!(snap.knn(q, t, 8), store.knn(q, t, 8));
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let (store, _) = random_store(2, 300);
        let snap = store.snapshot(None);
        let before_len = snap.len();
        let before_traj = snap.trajectory(5);
        store.append_batch((0..200).map(|i| fix(5, 200 + i, 43.0, 5.0)).collect::<Vec<_>>());
        store.seal_before(Timestamp::from_mins(150));
        store.compact(7, |_| Vec::new());
        assert_eq!(snap.len(), before_len, "snapshot must not see later writes");
        assert_eq!(snap.trajectory(5), before_traj);
    }

    #[test]
    fn unchanged_shards_are_reused_changed_shards_recloned() {
        let store = ShardedTrajectoryStore::with_shards(4);
        for v in 1..=16u32 {
            store.append(fix(v, 0, 43.0, 5.0));
        }
        let first = store.snapshot(None);
        // Touch exactly one vessel → exactly one shard changes.
        store.append(fix(3, 1, 43.1, 5.1));
        let touched = store.shard_of(3);
        let second = store.snapshot(Some(&first));
        for idx in 0..store.shard_count() {
            let (a, b) = (first.shard(idx).unwrap(), second.shard(idx).unwrap());
            if idx == touched {
                assert!(!Arc::ptr_eq(a, b), "written shard must re-clone");
            } else {
                assert!(Arc::ptr_eq(a, b), "idle shard {idx} must be shared");
            }
        }
        // A no-op seal sweep (nothing old enough) keeps everything shared.
        store.seal_before(Timestamp::from_mins(-100));
        let third = store.snapshot(Some(&second));
        for idx in 0..store.shard_count() {
            assert!(Arc::ptr_eq(second.shard(idx).unwrap(), third.shard(idx).unwrap()));
        }
    }

    #[test]
    fn snapshot_shares_sealed_segments_with_live_tier() {
        let config = StoreConfig {
            shards: 2,
            seal: SegmentConfig { max_span: 30 * MINUTE, ..SegmentConfig::lossless() },
            ..StoreConfig::default()
        };
        let store = ShardedTrajectoryStore::with_config(config);
        for i in 0..240i64 {
            store.append(fix(1, i, 43.0, 5.0 + 0.001 * i as f64));
        }
        store.seal_before(Timestamp::from_mins(240));
        let stats = store.tier_stats();
        assert!(stats.cold_segments >= 8);
        let snap = store.snapshot(None);
        // The snapshot sees the full sealed history without copying it:
        // equal stats, and the cold side answers identically.
        assert_eq!(snap.tier_stats(), stats);
        assert_eq!(snap.trajectory(1), store.trajectory(1));
    }

    #[test]
    fn foreign_prev_snapshots_are_ignored() {
        // Different shard count.
        let (a, _) = random_store(3, 100);
        let other = ShardedTrajectoryStore::with_shards(2);
        other.append(fix(1, 0, 43.0, 5.0));
        let foreign = other.snapshot(None);
        let snap = a.snapshot(Some(&foreign));
        assert_eq!(snap.len(), a.len());
        assert_eq!(snap.shard_count(), a.shard_count());

        // Same shard count AND colliding version counters (both stores
        // wrote the same shard once, so every version matches): the
        // foreign shards must still never be reused — versions are
        // per-store sequences, not global ones.
        let b = ShardedTrajectoryStore::with_shards(4);
        let c = ShardedTrajectoryStore::with_shards(4);
        b.append(fix(1, 0, 43.0, 5.0));
        c.append(fix(1, 0, 44.9, 5.9)); // same vessel → same shard index
        let c_snap = c.snapshot(None);
        let b_snap = b.snapshot(Some(&c_snap));
        assert_eq!(b_snap.latest(1).unwrap().pos.lat, 43.0, "b must serve b's data, not c's");
    }
}
