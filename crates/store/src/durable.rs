//! The durable cold tier: crash-safe persistence for the sharded
//! store.
//!
//! [`DurableStore`] wraps a [`ShardedTrajectoryStore`] with three
//! on-disk structures in one data directory:
//!
//! - **Per-shard segment files** (`shard-<i>.seg`) — append-only
//!   streams of checksummed frames, each carrying one serialized
//!   [`TrajectorySegment`]. The
//!   same seal that rotates fixes out of the hot tier appends the
//!   created segments here.
//! - **A write-ahead log** ([`crate::wal`]) — accepted fix batches and
//!   published-watermark marks, logged before the in-memory hot tier
//!   applies them. Rotated (not grown) at each seal: the new
//!   generation starts with a snapshot of the post-seal hot tier.
//! - **A manifest** ([`crate::manifest`]) — atomically replaced last,
//!   naming the WAL generation, the seal cut, the watermark, the valid
//!   segment-file lengths, and every sealed segment's fences.
//!
//! ## Crash-ordering argument
//!
//! A seal persists in the order *segments → new WAL generation →
//! manifest → delete old WAL*. The manifest rename is the commit
//! point: crash before it and recovery sees the old manifest — old
//! WAL (which still holds everything the dropped segment-file tail
//! held as hot batches), segment tails past the old lengths ignored.
//! Crash after it and recovery sees the new manifest — new segments
//! acknowledged, new WAL generation holding exactly the post-seal hot
//! tier. Either way the recovered state is one the live process
//! actually published.
//!
//! ## What "durable" means here
//!
//! Recovery restores the store to the state observable at the largest
//! durable mark `W`: every fix with event time `<= W` that was logged,
//! all of it indexed (grid and kNN rebuilt on replay), and the exact
//! published watermark `W`. Fixes logged after the last mark carry
//! event times past `W` (the pipelines' tick discipline); they were
//! never part of a published snapshot, and recovery discards them the
//! same way a reader could never have seen them. Torn tails on any
//! file — a crash mid-write — are detected by checksums and truncated,
//! never panicked over.
//!
//! ## Concurrency contract
//!
//! [`DurableStore::log_batch`] / [`DurableStore::mark`] are
//! serialized by an internal lock and may be called from concurrent
//! writer lanes. [`DurableStore::seal_before`] must not race appends
//! to the wrapped store — the single-writer pipeline calls it from
//! its one ingest thread, and the multi-writer pipeline from the
//! barrier leader while all lanes are parked, which is exactly the
//! quiescence it needs.

use crate::manifest::{Manifest, SegmentMeta};
use crate::segment::TrajectorySegment;
use crate::shards::{SealOutcome, ShardedTrajectoryStore, StoreConfig};
use crate::tier::TierStats;
use crate::wal::{self, WalWriter};
use mda_geo::{Fix, Timestamp};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Where and how a [`DurableStore`] persists.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The data directory (created if missing). One store per
    /// directory.
    pub dir: PathBuf,
    /// `true` to fsync the WAL on every logged record and seal
    /// artifacts before the manifest commit — survives OS/power
    /// failure at a large throughput cost. `false` (default) flushes
    /// every record to the OS on write, surviving process crashes —
    /// the failure mode the kill-and-recover contract targets.
    pub sync: bool,
}

impl DurabilityConfig {
    /// Durability into `dir` with the default (process-crash) policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), sync: false }
    }
}

/// What a [`DurableStore::recover`] (or durable open of an existing
/// directory) reconstructed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The recovered published watermark — the exact stamp the last
    /// pre-crash published snapshot carried.
    pub watermark: Timestamp,
    /// Sealed segments adopted from the segment files.
    pub segments: usize,
    /// Fixes inside those segments.
    pub sealed_fixes: usize,
    /// Hot-tier fixes replayed from the WAL.
    pub hot_fixes: usize,
    /// Logged fixes past the watermark, discarded (never published
    /// before the crash, so not observable after it either).
    pub discarded_unpublished: usize,
    /// True when the WAL ended in a torn record (truncated).
    pub wal_torn: bool,
    /// Manifest-acknowledged segments dropped because their file
    /// bytes were torn or failed validation (truncate-and-continue).
    pub dropped_segments: usize,
}

/// Mutable durable state behind one lock: the open WAL generation,
/// the segment-file append handles, and the accounting the next
/// manifest write needs.
#[derive(Debug)]
struct Inner {
    wal: WalWriter,
    wal_gen: u64,
    seg_files: Vec<File>,
    file_lens: Vec<u64>,
    segments: Vec<SegmentMeta>,
    sealed_to: Timestamp,
    last_mark: Timestamp,
    manifest_bytes: u64,
}

/// A [`ShardedTrajectoryStore`] backed by a data directory: segments
/// persist at seal time, the hot tier write-ahead-logs, and
/// [`DurableStore::recover`] restores the exact pre-crash published
/// state.
///
/// ## Example
///
/// ```no_run
/// use mda_geo::{Fix, Position, Timestamp};
/// use mda_store::{DurabilityConfig, DurableStore, StoreConfig};
///
/// let cfg = DurabilityConfig::new("/tmp/mda-data");
/// let store = DurableStore::open(StoreConfig::default(), &cfg).unwrap();
/// store
///     .append_batch(vec![Fix::new(1, Timestamp::from_secs(1), Position::new(43.0, 5.0), 10.0, 90.0)])
///     .unwrap();
/// store.mark(Timestamp::from_secs(1)).unwrap();
/// drop(store); // crash here —
/// let back = DurableStore::recover("/tmp/mda-data", StoreConfig::default()).unwrap();
/// assert_eq!(back.watermark(), Timestamp::from_secs(1));
/// assert_eq!(back.store().len(), 1);
/// ```
#[derive(Debug)]
pub struct DurableStore {
    store: ShardedTrajectoryStore,
    dir: PathBuf,
    sync: bool,
    inner: Mutex<Inner>,
    recovery: RecoveryReport,
}

/// The segment file name of file index `i`.
fn seg_file_name(i: usize) -> String {
    format!("shard-{i}.seg")
}

impl DurableStore {
    /// Open a durable store in `config.dir`: recover an existing data
    /// directory (manifest present) or initialize a fresh one.
    pub fn open(config: StoreConfig, durability: &DurabilityConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&durability.dir)?;
        match Manifest::read(&durability.dir)? {
            Some(manifest) => {
                Self::recover_with(&durability.dir, config, durability.sync, manifest)
            }
            None => Self::create(config, durability),
        }
    }

    /// Restart from an existing data directory: read the manifest,
    /// re-open the segment files (read-back; `unsafe` — and therefore
    /// mmap — is denied workspace-wide), replay the WAL, and
    /// reconstruct hot tier, cold tier and indexes to the exact
    /// pre-crash published watermark. Torn tails on the WAL or any
    /// segment file are truncated and recovery continues; only a
    /// missing or corrupt *manifest* is an error (it is replaced
    /// atomically, so that is real damage, not a crash artifact).
    pub fn recover(dir: impl AsRef<Path>, config: StoreConfig) -> io::Result<Self> {
        let dir = dir.as_ref();
        let manifest = Manifest::read(dir)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "no MANIFEST in data directory")
        })?;
        Self::recover_with(dir, config, false, manifest)
    }

    /// Initialize a fresh data directory: empty segment files, WAL
    /// generation 0, and a manifest acknowledging the empty state.
    fn create(config: StoreConfig, durability: &DurabilityConfig) -> io::Result<Self> {
        let dir = durability.dir.clone();
        let store = ShardedTrajectoryStore::with_config(config);
        let files = store.shard_count();
        let mut seg_files = Vec::with_capacity(files);
        for i in 0..files {
            seg_files.push(File::create(dir.join(seg_file_name(i)))?);
        }
        let wal = WalWriter::create(&dir, 0)?;
        let manifest = Manifest::fresh(files);
        manifest.write(&dir)?;
        let inner = Inner {
            wal,
            wal_gen: 0,
            seg_files,
            file_lens: vec![0; files],
            segments: Vec::new(),
            sealed_to: Timestamp::MIN,
            last_mark: Timestamp::MIN,
            manifest_bytes: manifest.encoded_len(),
        };
        Ok(Self {
            store,
            dir,
            sync: durability.sync,
            inner: Mutex::new(inner),
            recovery: RecoveryReport::default(),
        })
    }

    /// The recovery path shared by [`Self::open`] and
    /// [`Self::recover`].
    fn recover_with(
        dir: &Path,
        config: StoreConfig,
        sync: bool,
        manifest: Manifest,
    ) -> io::Result<Self> {
        let store = ShardedTrajectoryStore::with_config(config);
        let files = manifest.file_lens.len();
        let mut report = RecoveryReport::default();
        let mut file_lens = Vec::with_capacity(files);
        let mut kept_meta: Vec<SegmentMeta> = Vec::new();
        let mut seg_files = Vec::with_capacity(files);

        for (i, &acked_len) in manifest.file_lens.iter().enumerate() {
            let path = dir.join(seg_file_name(i));
            let bytes = match File::open(&path) {
                Ok(mut f) => {
                    let mut v = Vec::new();
                    f.read_to_end(&mut v)?;
                    v
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            // Bytes past the manifest-acknowledged length are a
            // crashed seal's unacknowledged tail; their fixes are
            // still in the acknowledged WAL generation as hot batches.
            let acked = (acked_len as usize).min(bytes.len());
            let expected: Vec<&SegmentMeta> =
                manifest.segments.iter().filter(|m| m.file as usize == i).collect();
            let mut at = 0usize;
            let mut good = 0usize;
            for meta in &expected {
                let frame_start = at;
                // lint:allow(panic-free-decode): acked is clamped to
                // bytes.len() where it is computed above.
                match crate::frame::read_frame(&bytes[..acked], &mut at) {
                    crate::frame::FrameRead::Ok(payload) => {
                        let ok = TrajectorySegment::try_from_bytes(payload)
                            .ok()
                            .filter(|seg| {
                                let (t0, t1) = seg.time_span();
                                seg.vessel() == meta.vessel
                                    && t0 == meta.t_min
                                    && t1 == meta.t_max
                                    && seg.len() as u64 == meta.fixes
                            })
                            .and_then(|seg| {
                                report.sealed_fixes += seg.len();
                                store.adopt_segment(seg).ok()
                            })
                            .is_some();
                        if !ok {
                            // An acknowledged record failing parse,
                            // fence cross-check or adoption is
                            // corruption: stop trusting this file
                            // here, keep the prefix.
                            at = frame_start;
                            break;
                        }
                        good += 1;
                        kept_meta.push(**meta);
                    }
                    _ => {
                        at = frame_start;
                        break;
                    }
                }
            }
            report.segments += good;
            report.dropped_segments += expected.len() - good;
            file_lens.push(at as u64);
            // Truncate to the validated prefix and re-open appending.
            let f = OpenOptions::new().write(true).create(true).truncate(false).open(&path)?;
            f.set_len(at as u64)?;
            let mut f = f;
            f.seek(io::SeekFrom::End(0))?;
            seg_files.push(f);
        }

        // WAL: replay the acknowledged generation, then apply the
        // event-time durability filter at the recovered watermark.
        let replay = wal::replay(dir, manifest.wal_gen)?;
        report.wal_torn = replay.torn;
        let watermark = replay.watermark.unwrap_or(Timestamp::MIN).max(manifest.watermark);
        report.watermark = watermark;
        let total = replay.fixes.len();
        let published: Vec<Fix> = replay.fixes.into_iter().filter(|f| f.t <= watermark).collect();
        report.discarded_unpublished = total - published.len();
        report.hot_fixes = published.len();
        store.append_batch(published);
        store.restore_sealed_to(manifest.sealed_to);

        // Truncate the torn tail (if any) and resume appending to the
        // same generation.
        let wal = match WalWriter::reopen(dir, manifest.wal_gen, replay.valid_len) {
            Ok(w) => w,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                WalWriter::create(dir, manifest.wal_gen)?
            }
            Err(e) => return Err(e),
        };
        // Reclaim WAL generations the manifest no longer names (a
        // crash between manifest commit and old-generation delete).
        remove_stray_wals(dir, manifest.wal_gen)?;

        // Commit the repair: the manifest now acknowledges exactly
        // what survived validation.
        let repaired = Manifest {
            wal_gen: manifest.wal_gen,
            sealed_to: manifest.sealed_to,
            watermark,
            file_lens: file_lens.clone(),
            segments: kept_meta.clone(),
        };
        repaired.write(dir)?;

        let inner = Inner {
            wal,
            wal_gen: manifest.wal_gen,
            seg_files,
            file_lens,
            segments: kept_meta,
            sealed_to: manifest.sealed_to,
            last_mark: watermark,
            manifest_bytes: repaired.encoded_len(),
        };
        Ok(Self { store, dir: dir.to_path_buf(), sync, inner: Mutex::new(inner), recovery: report })
    }

    /// The wrapped in-memory store (clone the handle freely — shards
    /// are `Arc`-shared).
    pub fn store(&self) -> &ShardedTrajectoryStore {
        &self.store
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the durable open reconstructed (all zeros for a fresh
    /// directory).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The largest durable published watermark.
    pub fn watermark(&self) -> Timestamp {
        self.inner.lock().last_mark
    }

    /// Log a batch of accepted fixes to the WAL — call *before*
    /// applying them to the store, so the log never trails memory.
    pub fn log_batch(&self, fixes: &[Fix]) -> io::Result<()> {
        if fixes.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        inner.wal.append_batch(fixes)?;
        if self.sync {
            inner.wal.sync()?;
        }
        Ok(())
    }

    /// Log and apply a batch in one call (the non-pipeline
    /// convenience; pipelines log and apply at different stages).
    pub fn append_batch(&self, fixes: Vec<Fix>) -> io::Result<usize> {
        self.log_batch(&fixes)?;
        Ok(self.store.append_batch(fixes))
    }

    /// Record that `wm` is now a published snapshot watermark — the
    /// durability boundary recovery replays to. Regressing or repeated
    /// marks are no-ops, so callers can mark every tick boundary
    /// unconditionally.
    pub fn mark(&self, wm: Timestamp) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if wm <= inner.last_mark {
            return Ok(());
        }
        inner.wal.append_mark(wm)?;
        if self.sync {
            inner.wal.sync()?;
        }
        inner.last_mark = wm;
        Ok(())
    }

    /// Seal the wrapped store at `watermark` *and* persist the result:
    /// append the created segments to their shards' files, rotate the
    /// WAL to a fresh generation holding the post-seal hot tier, and
    /// commit both with an atomic manifest replace. See the module
    /// docs for the crash-ordering argument; see the concurrency
    /// contract for the required append quiescence.
    pub fn seal_before(&self, watermark: Timestamp) -> io::Result<SealOutcome> {
        let (outcome, per_shard) = self.store.seal_before_collect(watermark);
        if outcome.segments == 0 {
            return Ok(outcome);
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;

        // 1. Segment records, appended per shard file.
        let files = inner.seg_files.len();
        for (shard, segments) in per_shard.iter().enumerate() {
            if segments.is_empty() {
                continue;
            }
            let file = shard % files;
            let mut buf = Vec::new();
            for seg in segments {
                crate::frame::write_frame(&mut buf, &seg.to_bytes());
                let (t_min, t_max) = seg.time_span();
                inner.segments.push(SegmentMeta {
                    file: file as u32,
                    vessel: seg.vessel(),
                    t_min,
                    t_max,
                    fixes: seg.len() as u64,
                });
            }
            // lint:allow(panic-free-decode): file = shard % len is in
            // bounds by construction; this is the append path.
            inner.file_lens[file] += buf.len() as u64;
            // lint:allow(panic-free-decode): same modulo bound as above.
            let seg_file = &mut inner.seg_files[file];
            seg_file.write_all(&buf)?;
            if self.sync {
                seg_file.sync_data()?;
            }
        }

        // 2. Fresh WAL generation: snapshot of the post-seal hot tier
        //    plus the durability boundary. (The event-time filter at
        //    replay keeps the boundary exact even though the snapshot
        //    batch precedes the mark record.)
        let new_gen = inner.wal_gen + 1;
        let mut new_wal = WalWriter::create(&self.dir, new_gen)?;
        let hot: Vec<Fix> = self.store.fold_shards(Vec::new(), |mut acc, archive| {
            acc.extend(archive.iter());
            acc
        });
        new_wal.append_batch(&hot)?;
        if inner.last_mark > Timestamp::MIN {
            new_wal.append_mark(inner.last_mark)?;
        }
        if self.sync {
            new_wal.sync()?;
        }

        // 3. Commit: atomically point the manifest at the new state.
        inner.sealed_to = inner.sealed_to.max(outcome.cut);
        let manifest = Manifest {
            wal_gen: new_gen,
            sealed_to: inner.sealed_to,
            watermark: inner.last_mark,
            file_lens: inner.file_lens.clone(),
            segments: inner.segments.clone(),
        };
        manifest.write(&self.dir)?;
        inner.manifest_bytes = manifest.encoded_len();

        // 4. The old generation is now unreferenced; reclaim it.
        let old_path = inner.wal.path().to_path_buf();
        inner.wal = new_wal;
        inner.wal_gen = new_gen;
        let _ = std::fs::remove_file(old_path);
        Ok(outcome)
    }

    /// Per-tier accounting with [`TierStats::disk_bytes`] filled in:
    /// real on-disk bytes (segment files + WAL + manifest).
    pub fn tier_stats(&self) -> TierStats {
        let mut stats = self.store.tier_stats();
        stats.disk_bytes = self.disk_bytes() as usize;
        stats
    }

    /// Real bytes on disk: validated segment-file lengths + the live
    /// WAL generation + the manifest.
    pub fn disk_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.file_lens.iter().sum::<u64>() + inner.wal.bytes() + inner.manifest_bytes
    }
}

/// Delete every `wal-<gen>.log` in `dir` other than `keep` — leftovers
/// of generations the manifest no longer (or never came to) name.
fn remove_stray_wals(dir: &Path, keep: u64) -> io::Result<()> {
    let keep_name = wal::file_name(keep);
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("wal-") && name.ends_with(".log") && name != keep_name {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::Position;

    fn fix(id: u32, t: i64) -> Fix {
        Fix::new(
            id,
            Timestamp::from_secs(t),
            Position::new(43.0, 5.0 + t as f64 * 1e-4),
            10.0,
            90.0,
        )
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mda-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn drain(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fresh_open_then_recover_round_trips() {
        let dir = tmp_dir("fresh");
        let cfg = DurabilityConfig::new(&dir);
        let ds = DurableStore::open(StoreConfig::default(), &cfg).unwrap();
        ds.append_batch((0..100).map(|i| fix(1 + i % 3, i as i64)).collect()).unwrap();
        ds.mark(Timestamp::from_secs(99)).unwrap();
        let expect = ds.store().trajectory(1).unwrap();
        drop(ds); // simulated crash: no graceful shutdown path exists

        let back = DurableStore::recover(&dir, StoreConfig::default()).unwrap();
        assert_eq!(back.watermark(), Timestamp::from_secs(99));
        assert_eq!(back.recovery().hot_fixes, 100);
        assert_eq!(back.store().trajectory(1).unwrap(), expect);
        drain(&dir);
    }

    #[test]
    fn unmarked_tail_is_discarded_on_recovery() {
        let dir = tmp_dir("tail");
        let ds = DurableStore::open(StoreConfig::default(), &DurabilityConfig::new(&dir)).unwrap();
        ds.append_batch((0..50).map(|i| fix(1, i as i64)).collect()).unwrap();
        ds.mark(Timestamp::from_secs(49)).unwrap();
        // Logged but never covered by a mark: event times past 49s.
        ds.append_batch((50..60).map(|i| fix(1, i as i64)).collect()).unwrap();
        drop(ds);

        let back = DurableStore::recover(&dir, StoreConfig::default()).unwrap();
        assert_eq!(back.watermark(), Timestamp::from_secs(49));
        assert_eq!(back.store().len(), 50, "unpublished suffix must not resurrect");
        assert_eq!(back.recovery().discarded_unpublished, 10);
        drain(&dir);
    }

    #[test]
    fn seal_persists_segments_and_rotates_wal() {
        let dir = tmp_dir("seal");
        let ds = DurableStore::open(StoreConfig::default(), &DurabilityConfig::new(&dir)).unwrap();
        ds.append_batch((0..7_200).map(|i| fix(1 + i % 5, i as i64)).collect()).unwrap();
        ds.mark(Timestamp::from_secs(7_199)).unwrap();
        let outcome = ds.seal_before(Timestamp::from_secs(3_600)).unwrap();
        assert!(outcome.segments > 0);
        let stats = ds.tier_stats();
        assert!(stats.cold_segments > 0 && stats.disk_bytes > 0);
        let expect: Vec<Vec<Fix>> = (1..=5).map(|v| ds.store().trajectory(v).unwrap()).collect();
        drop(ds);

        let back = DurableStore::recover(&dir, StoreConfig::default()).unwrap();
        assert_eq!(back.recovery().segments, outcome.segments);
        assert_eq!(back.watermark(), Timestamp::from_secs(7_199));
        let cold = back.store().tier_stats();
        assert_eq!(cold.cold_segments, outcome.segments);
        for (v, want) in (1..=5).zip(&expect) {
            assert_eq!(&back.store().trajectory(v).unwrap(), want, "vessel {v}");
        }
        drain(&dir);
    }

    #[test]
    fn recovery_tolerates_torn_tails_everywhere() {
        let dir = tmp_dir("torn");
        let ds = DurableStore::open(StoreConfig::default(), &DurabilityConfig::new(&dir)).unwrap();
        ds.append_batch((0..7_200).map(|i| fix(1 + i % 5, i as i64)).collect()).unwrap();
        ds.mark(Timestamp::from_secs(7_199)).unwrap();
        ds.seal_before(Timestamp::from_secs(3_600)).unwrap();
        ds.append_batch((7_200..7_300).map(|i| fix(1, i as i64)).collect()).unwrap();
        ds.mark(Timestamp::from_secs(7_299)).unwrap();
        drop(ds);

        // Tear the WAL tail: chop bytes off the live generation.
        let manifest = Manifest::read(&dir).unwrap().unwrap();
        let wal_path = dir.join(wal::file_name(manifest.wal_gen));
        let wal_bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &wal_bytes[..wal_bytes.len() - 3]).unwrap();
        let back = DurableStore::recover(&dir, StoreConfig::default()).unwrap();
        assert!(back.recovery().wal_torn);
        // The torn record was the last mark or batch; everything up to
        // the previous durable mark survives.
        assert!(back.watermark() >= Timestamp::from_secs(7_199));
        drop(back);

        // Tear a segment file tail: recovery drops the torn segment,
        // truncates, and keeps serving the rest.
        let manifest = Manifest::read(&dir).unwrap().unwrap();
        let victim = (0..manifest.file_lens.len())
            .rfind(|&i| manifest.file_lens[i] > 0)
            .expect("some shard sealed");
        let path = dir.join(seg_file_name(victim));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let dropped_expect: usize = 1; // only the file's last record is torn
        let before: usize = manifest.segments.len();
        let back = DurableStore::recover(&dir, StoreConfig::default()).unwrap();
        assert_eq!(back.recovery().dropped_segments, dropped_expect);
        assert_eq!(back.recovery().segments, before - dropped_expect);
        drain(&dir);
    }

    #[test]
    fn recovery_requires_a_manifest() {
        let dir = tmp_dir("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        let err = DurableStore::recover(&dir, StoreConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        drain(&dir);
    }

    #[test]
    fn shard_count_change_across_restart_reroutes_segments() {
        let dir = tmp_dir("reshard");
        let ds = DurableStore::open(
            StoreConfig { shards: 8, ..StoreConfig::default() },
            &DurabilityConfig::new(&dir),
        )
        .unwrap();
        ds.append_batch((0..7_200).map(|i| fix(1 + i % 7, i as i64)).collect()).unwrap();
        ds.mark(Timestamp::from_secs(7_199)).unwrap();
        ds.seal_before(Timestamp::from_secs(3_600)).unwrap();
        let expect = ds.store().trajectory(3).unwrap();
        drop(ds);

        let back = DurableStore::recover(&dir, StoreConfig { shards: 3, ..StoreConfig::default() })
            .unwrap();
        assert_eq!(back.store().trajectory(3).unwrap(), expect);
        assert_eq!(back.recovery().dropped_segments, 0);
        drain(&dir);
    }
}
