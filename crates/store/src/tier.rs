//! The cold tier: per-vessel sealed segments behind one shard.
//!
//! Each shard of the
//! [`ShardedTrajectoryStore`](crate::shards::ShardedTrajectoryStore)
//! owns a [`ColdTier`] next to its hot
//! [`TrajectoryStore`](crate::trajstore::TrajectoryStore) archive.
//! Sealing moves a
//! vessel's old fixes into immutable
//! [`TrajectorySegment`]s here; every read path then merges hot and
//! cold deterministically (see the shard module's ordering notes).
//!
//! ## Merge semantics
//!
//! Segments of one vessel are kept in *seal order*. Out-of-order late
//! arrivals can make segment time ranges overlap; readers therefore
//! always merge with a stable sort by event time, which reproduces the
//! hot store's arrival-order tie-breaking: within equal timestamps,
//! earlier-sealed fixes sort first, and hot fixes (which by definition
//! arrived after everything sealed) sort last.

use crate::segment::TrajectorySegment;
use mda_geo::{BoundingBox, Fix, Timestamp, VesselId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-tier size accounting of one store (or one shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Fixes resident in the hot (mutable, uncompressed) tier.
    pub hot_fixes: usize,
    /// Fixes resident in sealed cold segments.
    pub cold_fixes: usize,
    /// Approximate hot bytes (`hot_fixes × size_of::<Fix>()`).
    pub hot_bytes: usize,
    /// Approximate cold bytes (encoded columns + headers).
    pub cold_bytes: usize,
    /// Number of sealed segments.
    pub cold_segments: usize,
    /// Real bytes on disk backing this store (segment files + WAL +
    /// manifest). 0 unless the store runs durable — see
    /// [`DurableStore`](crate::durable::DurableStore).
    pub disk_bytes: usize,
}

impl TierStats {
    /// Merge shard-level stats into store-level totals.
    pub fn merge(&mut self, other: &TierStats) {
        self.hot_fixes += other.hot_fixes;
        self.cold_fixes += other.cold_fixes;
        self.hot_bytes += other.hot_bytes;
        self.cold_bytes += other.cold_bytes;
        self.cold_segments += other.cold_segments;
        self.disk_bytes += other.disk_bytes;
    }

    /// Average bytes per hot fix (0 when the hot tier is empty).
    pub fn hot_bytes_per_fix(&self) -> f64 {
        if self.hot_fixes == 0 {
            0.0
        } else {
            self.hot_bytes as f64 / self.hot_fixes as f64
        }
    }

    /// Average bytes per *sealed input* fix is not reconstructible
    /// here; this is bytes per fix actually stored cold (0 when empty).
    pub fn cold_bytes_per_fix(&self) -> f64 {
        if self.cold_fixes == 0 {
            0.0
        } else {
            self.cold_bytes as f64 / self.cold_fixes as f64
        }
    }
}

/// A sealed segment's fences failed validation on cold-tier insert —
/// it was rejected rather than merged into query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FenceError {
    /// Vessel the rejected segment claimed to belong to.
    pub vessel: VesselId,
    /// The violated fence rule.
    pub reason: &'static str,
}

impl std::fmt::Display for FenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "segment rejected (vessel {}): {}", self.vessel, self.reason)
    }
}

impl std::error::Error for FenceError {}

/// One vessel's sealed history.
#[derive(Debug, Default, Clone)]
struct VesselCold {
    /// Segments in seal order (mostly time-ascending; overlaps allowed).
    /// `Arc`-shared: cloning a tier (the snapshot path) copies pointers,
    /// never the encoded columns.
    segments: Vec<Arc<TrajectorySegment>>,
    /// The freshest sealed fix (ties resolved to the later seal).
    latest: Option<Fix>,
}

/// The sealed, compressed side of one shard.
///
/// Cloning is cheap by construction — segments are immutable and
/// `Arc`-shared, so a clone copies the per-vessel pointer lists only.
/// This is what makes the store's snapshot handles affordable: a
/// published snapshot shares every sealed byte with the live tier.
#[derive(Debug, Default, Clone)]
pub struct ColdTier {
    by_vessel: BTreeMap<VesselId, VesselCold>,
    fixes: usize,
    bytes: usize,
    segments: usize,
}

impl ColdTier {
    /// New empty tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt a sealed segment after validating its fences — the entry
    /// point for segments that crossed a trust boundary (recovery from
    /// disk, a corrupt manifest). A rejected segment leaves the tier
    /// untouched, so bad records can never silently merge into query
    /// results.
    pub fn try_push(&mut self, segment: TrajectorySegment) -> Result<(), FenceError> {
        self.try_push_shared(Arc::new(segment))
    }

    /// Like [`Self::try_push`] for a segment that is already shared —
    /// the seal path hands the same `Arc` to the durable tier, so the
    /// encoded columns exist once however many owners they have.
    pub fn try_push_shared(&mut self, segment: Arc<TrajectorySegment>) -> Result<(), FenceError> {
        let err = |reason| FenceError { vessel: segment.vessel(), reason };
        if segment.is_empty() {
            return Err(err("segment stores no fixes"));
        }
        let (t_min, t_max) = segment.time_span();
        if t_min > t_max {
            return Err(err("inverted time fence (first > last timestamp)"));
        }
        if segment.first().t != t_min || segment.last().t != t_max {
            return Err(err("endpoint fixes disagree with the time fence"));
        }
        if segment.first().id != segment.vessel() || segment.last().id != segment.vessel() {
            return Err(err("endpoint vessel ids disagree with the segment's"));
        }
        let entry = self.by_vessel.entry(segment.vessel()).or_default();
        self.fixes += segment.len();
        self.bytes += segment.approx_bytes();
        self.segments += 1;
        let last = *segment.last();
        if entry.latest.is_none_or(|cur| last.t >= cur.t) {
            entry.latest = Some(last);
        }
        entry.segments.push(segment);
        Ok(())
    }

    /// Adopt a sealed segment produced in-process.
    ///
    /// # Panics
    ///
    /// If the segment violates its own fences — impossible for
    /// segments out of [`TrajectorySegment::seal`], and a bug worth a
    /// loud stop if it ever happens. Segments from disk or any other
    /// external source must go through [`Self::try_push`] instead.
    pub fn push(&mut self, segment: TrajectorySegment) {
        if let Err(e) = self.try_push(segment) {
            panic!("in-process sealed segment violated its fences: {e}");
        }
    }

    /// Total sealed fixes.
    pub fn len(&self) -> usize {
        self.fixes
    }

    /// True when nothing is sealed.
    pub fn is_empty(&self) -> bool {
        self.fixes == 0
    }

    /// Vessels with sealed history, ascending.
    pub fn vessels(&self) -> impl Iterator<Item = VesselId> + '_ {
        self.by_vessel.keys().copied()
    }

    /// True if `id` has sealed history.
    pub fn contains(&self, id: VesselId) -> bool {
        self.by_vessel.contains_key(&id)
    }

    /// The sealed segments of one vessel, in seal order.
    pub fn segments(&self, id: VesselId) -> impl Iterator<Item = &TrajectorySegment> {
        self.by_vessel.get(&id).into_iter().flat_map(|v| v.segments.iter().map(Arc::as_ref))
    }

    /// Iterate over every sealed segment (vessels ascending, then seal
    /// order).
    pub fn iter_segments(&self) -> impl Iterator<Item = &TrajectorySegment> {
        self.by_vessel.values().flat_map(|v| v.segments.iter().map(Arc::as_ref))
    }

    /// The freshest sealed fix of a vessel.
    pub fn latest(&self, id: VesselId) -> Option<&Fix> {
        self.by_vessel.get(&id)?.latest.as_ref()
    }

    /// Sealed fixes of one vessel in `[from, to]`, merged across
    /// overlapping segments (stable by time, seal order on ties).
    pub fn range(&self, id: VesselId, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        let Some(v) = self.by_vessel.get(&id) else { return Vec::new() };
        let mut out = Vec::new();
        for seg in &v.segments {
            out.extend(seg.decode_range(from, to));
        }
        out.sort_by_key(|f| f.t);
        out
    }

    /// All sealed fixes of one vessel, merged (stable by time).
    pub fn trajectory(&self, id: VesselId) -> Vec<Fix> {
        let Some(v) = self.by_vessel.get(&id) else { return Vec::new() };
        let mut out = Vec::new();
        for seg in &v.segments {
            out.extend(seg.decode());
        }
        out.sort_by_key(|f| f.t);
        out
    }

    /// The last sealed fix of `id` with `t <= at` (ties resolved to the
    /// later seal, matching hot arrival order).
    pub fn latest_at(&self, id: VesselId, at: Timestamp) -> Option<Fix> {
        let v = self.by_vessel.get(&id)?;
        let mut best: Option<Fix> = None;
        for seg in &v.segments {
            let (t0, t1) = seg.time_span();
            if t0 > at {
                continue;
            }
            let cand = if t1 <= at {
                Some(*seg.last())
            } else {
                // Streaming decode stops at the bound; the suffix past
                // `at` is never materialized.
                seg.iter_decoded().take_while(|f| f.t <= at).last()
            };
            if let Some(c) = cand {
                if best.is_none_or(|b| c.t >= b.t) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// The first sealed fix of `id` with `t > at` (ties resolved to the
    /// earlier seal).
    pub fn first_after(&self, id: VesselId, at: Timestamp) -> Option<Fix> {
        let v = self.by_vessel.get(&id)?;
        let mut best: Option<Fix> = None;
        for seg in &v.segments {
            let (t0, t1) = seg.time_span();
            if t1 <= at {
                continue;
            }
            let cand =
                if t0 > at { Some(*seg.first()) } else { seg.iter_decoded().find(|f| f.t > at) };
            if let Some(c) = cand {
                if best.is_none_or(|b| c.t < b.t) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Append every sealed fix inside the spatio-temporal window to
    /// `out`, decoding only segments whose fences intersect it.
    pub fn window_into(
        &self,
        area: &BoundingBox,
        from: Timestamp,
        to: Timestamp,
        out: &mut Vec<Fix>,
    ) {
        for v in self.by_vessel.values() {
            for seg in &v.segments {
                if !seg.overlaps(area, from, to) {
                    continue;
                }
                out.extend(seg.decode_range(from, to).into_iter().filter(|f| area.contains(f.pos)));
            }
        }
    }

    /// Size accounting of this tier (O(1): counters are maintained on
    /// `push`, not recomputed — the pipeline polls this every sweep).
    pub fn stats(&self) -> TierStats {
        TierStats {
            hot_fixes: 0,
            cold_fixes: self.fixes,
            hot_bytes: 0,
            cold_bytes: self.bytes,
            cold_segments: self.segments,
            disk_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentConfig;
    use mda_geo::Position;

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), 10.0, 90.0)
    }

    fn seal(id: u32, fixes: &[Fix]) -> TrajectorySegment {
        TrajectorySegment::seal(id, fixes, &SegmentConfig::lossless()).unwrap()
    }

    #[test]
    fn range_and_trajectory_merge_segments() {
        let mut cold = ColdTier::new();
        let a: Vec<Fix> = (0..10).map(|i| fix(1, i, 43.0, 5.0 + 0.01 * i as f64)).collect();
        let b: Vec<Fix> = (10..20).map(|i| fix(1, i, 43.0, 5.0 + 0.01 * i as f64)).collect();
        cold.push(seal(1, &a));
        cold.push(seal(1, &b));
        assert_eq!(cold.len(), 20);
        assert_eq!(cold.trajectory(1).len(), 20);
        let r = cold.range(1, Timestamp::from_mins(8), Timestamp::from_mins(12));
        assert_eq!(r.len(), 5);
        assert!(r.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(cold.range(99, Timestamp::from_mins(0), Timestamp::from_mins(5)).is_empty());
    }

    #[test]
    fn overlapping_segments_merge_stably() {
        // A late slab sealed afterwards overlaps the first segment.
        let mut cold = ColdTier::new();
        cold.push(seal(1, &[fix(1, 0, 43.0, 5.0), fix(1, 10, 43.0, 5.1)]));
        cold.push(seal(1, &[fix(1, 5, 43.0, 5.05)]));
        let traj = cold.trajectory(1);
        let mins: Vec<i64> = traj.iter().map(|f| f.t.millis() / 60_000).collect();
        assert_eq!(mins, vec![0, 5, 10]);
        // latest is the max-time fix, not the latest-sealed one.
        assert_eq!(cold.latest(1).unwrap().t, Timestamp::from_mins(10));
    }

    #[test]
    fn latest_at_and_first_after() {
        let mut cold = ColdTier::new();
        cold.push(seal(1, &(0..5).map(|i| fix(1, i * 10, 43.0, 5.0)).collect::<Vec<_>>()));
        cold.push(seal(1, &(5..10).map(|i| fix(1, i * 10, 43.0, 5.0)).collect::<Vec<_>>()));
        assert_eq!(cold.latest_at(1, Timestamp::from_mins(25)).unwrap().t.millis(), 20 * 60_000);
        assert_eq!(cold.latest_at(1, Timestamp::from_mins(90)).unwrap().t.millis(), 90 * 60_000);
        assert!(cold.latest_at(1, Timestamp::from_mins(-1)).is_none());
        assert_eq!(cold.first_after(1, Timestamp::from_mins(25)).unwrap().t.millis(), 30 * 60_000);
        assert!(cold.first_after(1, Timestamp::from_mins(90)).is_none());
    }

    #[test]
    fn window_respects_fences() {
        let mut cold = ColdTier::new();
        cold.push(seal(1, &(0..10).map(|i| fix(1, i, 43.0, 5.0)).collect::<Vec<_>>()));
        cold.push(seal(2, &(0..10).map(|i| fix(2, i, 44.5, 7.0)).collect::<Vec<_>>()));
        let mut out = Vec::new();
        let area = BoundingBox::new(42.5, 4.5, 43.5, 5.5);
        cold.window_into(&area, Timestamp::from_mins(0), Timestamp::from_mins(4), &mut out);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|f| f.id == 1));
    }

    #[test]
    fn try_push_rejects_corrupt_fences() {
        use crate::segment::TrajectorySegment as Seg;
        let mut cold = ColdTier::new();
        let good = seal(1, &(0..10).map(|i| fix(1, i, 43.0, 5.0)).collect::<Vec<_>>());
        // Forge fence violations by rewriting the serialized header the
        // way a corrupt manifest/segment file would present them.
        let bytes = good.to_bytes();
        // t_min lives at offset 12; swap it past t_max.
        let mut inverted = bytes.clone();
        inverted[12..20].copy_from_slice(&i64::MAX.to_le_bytes());
        // A forged record is caught by either parse or fence layer.
        let parsed = Seg::try_from_bytes(&inverted);
        assert!(parsed.is_err() || cold.try_push(parsed.unwrap()).is_err());
        // Endpoint vessel id (first fix id at offset 84) disagreeing
        // with the segment's own must also be rejected.
        let mut swapped = bytes.clone();
        swapped[84..88].copy_from_slice(&99u32.to_le_bytes());
        let parsed = Seg::try_from_bytes(&swapped);
        assert!(parsed.is_err() || cold.try_push(parsed.unwrap()).is_err());
        assert!(cold.is_empty(), "rejected segments must leave the tier untouched");
        assert!(cold.try_push(good).is_ok());
        assert_eq!(cold.len(), 10);
    }

    #[test]
    fn stats_track_bytes_and_segments() {
        let mut cold = ColdTier::new();
        assert!(cold.is_empty());
        cold.push(seal(1, &(0..50).map(|i| fix(1, i, 43.0, 5.0)).collect::<Vec<_>>()));
        let s = cold.stats();
        assert_eq!(s.cold_fixes, 50);
        assert_eq!(s.cold_segments, 1);
        assert!(s.cold_bytes > 0);
        assert_eq!(s.hot_fixes, 0);
        assert!(s.cold_bytes_per_fix() > 0.0);
    }
}
