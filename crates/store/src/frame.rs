//! Length-prefixed, CRC-checked record framing — the one checksum
//! discipline shared by segment files, the WAL and the manifest.
//!
//! A frame on disk is `[u32 payload len][u32 CRC-32 of payload]
//! [payload]`, all little-endian. Reading is over an in-memory byte
//! slice (the durable tier reads files back whole — `unsafe` is denied
//! workspace-wide, so no mmap) and distinguishes a *torn tail* (the
//! file ends mid-frame, or the CRC disagrees — expected after a crash,
//! handled by truncate-and-continue) from a clean end of input.

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        // lint:allow(panic-free-decode): i < 256 is the loop bound and
        // the table length; this is a const-eval table build, not a
        // byte-dependent decode.
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        // lint:allow(panic-free-decode): the index is masked to 0xFF
        // and CRC_TABLE has 256 entries.
        c = (c >> 8) ^ CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize];
    }
    !c
}

/// Append one frame (length, CRC, payload) to `out`.
pub(crate) fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading one frame from a buffer position.
pub(crate) enum FrameRead<'a> {
    /// A complete frame with a matching checksum; cursor advanced past
    /// it.
    Ok(&'a [u8]),
    /// The buffer ends exactly at the cursor — a clean end of input.
    End,
    /// The bytes from the cursor on do not form a whole, checksummed
    /// frame: a torn tail. The cursor is left at the start of the bad
    /// frame — the valid prefix length for truncate-and-continue.
    Torn,
}

/// Read the frame at `*at`, advancing the cursor past it on success.
/// Never allocates and never panics: a corrupt length prefix simply
/// fails the range check against the real buffer.
pub(crate) fn read_frame<'a>(buf: &'a [u8], at: &mut usize) -> FrameRead<'a> {
    if *at == buf.len() {
        return FrameRead::End;
    }
    let Some(header) = buf.get(*at..*at + 8) else { return FrameRead::Torn };
    let (Some(len4), Some(crc4)) = (header.first_chunk::<4>(), header.last_chunk::<4>()) else {
        return FrameRead::Torn;
    };
    let len = u32::from_le_bytes(*len4) as usize;
    let crc = u32::from_le_bytes(*crc4);
    let Some(end) = (*at + 8).checked_add(len) else { return FrameRead::Torn };
    let Some(payload) = buf.get(*at + 8..end) else { return FrameRead::Torn };
    if crc32(payload) != crc {
        return FrameRead::Torn;
    }
    *at = end;
    FrameRead::Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, &[0xAB; 1000]);
        let mut at = 0;
        assert!(matches!(read_frame(&buf, &mut at), FrameRead::Ok(b"hello")));
        assert!(matches!(read_frame(&buf, &mut at), FrameRead::Ok(b"")));
        assert!(matches!(read_frame(&buf, &mut at), FrameRead::Ok(p) if p.len() == 1000));
        assert!(matches!(read_frame(&buf, &mut at), FrameRead::End));

        // Every truncation of the stream is Torn at the cut frame, with
        // the cursor naming the valid prefix.
        for cut in 0..buf.len() {
            let mut at = 0;
            loop {
                match read_frame(&buf[..cut], &mut at) {
                    FrameRead::Ok(_) => continue,
                    FrameRead::End => break,
                    FrameRead::Torn => {
                        assert!(at <= cut);
                        break;
                    }
                }
            }
        }

        // A flipped payload bit fails the CRC.
        let mut bad = buf.clone();
        bad[10] ^= 0x01;
        assert!(matches!(read_frame(&bad, &mut 0), FrameRead::Torn));
    }
}
