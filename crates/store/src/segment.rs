//! Immutable, sealed cold-tier trajectory segments.
//!
//! A [`TrajectorySegment`] is a per-vessel, time-partitioned slab of
//! fixes rotated out of the hot shards by
//! [`ShardedTrajectoryStore::seal_before`](crate::shards::ShardedTrajectoryStore::seal_before).
//! Segments are:
//!
//! - **Immutable** — sealed once, never appended to. Late fixes older
//!   than an already-sealed slab simply seal into an additional segment
//!   later; readers merge overlapping segments deterministically.
//! - **Delta-encoded columnar** — timestamps as zigzag varint deltas;
//!   positions either fixed-point quantized deltas (lossy mode, with a
//!   recorded error bound) or bit-exact XOR-chained floats (lossless
//!   mode). See [`mda_geo::codec`] for the primitives.
//! - **Optionally pre-compressed** — lossy sealing first runs the slab
//!   through [`mda_synopses::compress::ThresholdCompressor`], so the
//!   cold tier stores the synopsis of the slab, 20–50× smaller than
//!   the raw fixes, with the combined (threshold + quantization +
//!   dead-reckoning drift) error bound recorded on the segment.
//! - **Fenced** — each segment carries its time span and the bounding
//!   box of its (decoded) positions, so window queries skip
//!   non-overlapping segments without decoding them.
//!
//! ## Example
//!
//! ```
//! use mda_geo::{Fix, Position, Timestamp};
//! use mda_store::segment::{SegmentConfig, TrajectorySegment};
//!
//! let fixes: Vec<Fix> = (0..100)
//!     .map(|i| {
//!         let t = Timestamp::from_secs(i * 10);
//!         Fix::new(9, t, Position::new(43.0, 5.0 + 0.0001 * i as f64), 10.0, 90.0)
//!     })
//!     .collect();
//! // Lossless sealing (tolerance 0) round-trips bit-exactly.
//! let seg = TrajectorySegment::seal(9, &fixes, &SegmentConfig::lossless()).unwrap();
//! assert_eq!(seg.decode(), fixes);
//! assert_eq!(seg.error_bound_m(), 0.0);
//! // Lossy sealing stores the slab's synopsis, far smaller.
//! let lossy = TrajectorySegment::seal(9, &fixes, &SegmentConfig::default()).unwrap();
//! assert!(lossy.len() < fixes.len());
//! assert!(lossy.error_bound_m() > 0.0);
//! ```

use mda_geo::codec::{
    dequantize, quantize, read_f64_xor, read_varint, unzigzag, write_f64_xor, write_varint, zigzag,
};
use mda_geo::time::MINUTE;
use mda_geo::units::knots_to_mps;
use mda_geo::{BoundingBox, DurationMs, Fix, Timestamp, VesselId};
use mda_synopses::compress::{ThresholdCompressor, ThresholdConfig};

/// Metres per degree of latitude (and of longitude at the equator).
const METERS_PER_DEG: f64 = 111_320.0;

/// Fixed-point scale for quantized speed over ground (0.01 kn steps).
const SOG_SCALE: f64 = 100.0;

/// Fixed-point scale for quantized course over ground (0.01° steps).
const COG_SCALE: f64 = 100.0;

/// How a vessel's slab of fixes is sealed into a cold segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Threshold pre-compression tolerance in metres; `<= 0` disables
    /// pre-compression *and* quantization — sealing is bit-exact.
    pub tolerance_m: f64,
    /// Keepalive gap for lossy pre-compression (a fix is always kept
    /// after this long without one, bounding reconstruction gaps).
    pub max_silence: DurationMs,
    /// Maximum event-time span of one segment. Sealing splits a
    /// vessel's run at `max_span`-aligned boundaries, so segment
    /// contents are independent of *when* seals happened and fences
    /// stay tight.
    pub max_span: DurationMs,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self { tolerance_m: 50.0, max_silence: 30 * MINUTE, max_span: 30 * MINUTE }
    }
}

impl SegmentConfig {
    /// Bit-exact sealing: no pre-compression, no quantization.
    pub fn lossless() -> Self {
        Self { tolerance_m: 0.0, ..Self::default() }
    }

    /// True when sealing with this configuration is exactly reversible.
    pub fn is_lossless(&self) -> bool {
        self.tolerance_m <= 0.0
    }

    /// The position quantization step in degrees (lossy mode): a
    /// quarter of the tolerance, so quantization noise stays well
    /// inside the threshold-compression bound.
    fn quant_step_deg(&self) -> f64 {
        self.tolerance_m / (4.0 * METERS_PER_DEG)
    }
}

/// An immutable, sealed, compressed slab of one vessel's fixes.
#[derive(Debug, Clone)]
pub struct TrajectorySegment {
    id: VesselId,
    len: usize,
    /// Event-time fence (inclusive, over the stored fixes).
    t_min: Timestamp,
    t_max: Timestamp,
    /// Spatial fence over the *decoded* positions.
    bbox: BoundingBox,
    /// Upper bound on the position error of reconstructing any sealed
    /// observation from this segment (0 for lossless segments).
    error_bound_m: f64,
    /// First and last stored fix, pre-decoded for fence/latest queries.
    first: Fix,
    last: Fix,
    /// Position quantization scale; 0.0 marks a lossless segment.
    pos_scale: f64,
    /// The encoded columns: t, lat, lon, sog, cog.
    cols: [Vec<u8>; 5],
}

impl TrajectorySegment {
    /// Seal a time-sorted slab of one vessel's fixes. Lossy
    /// configurations first reduce the slab to its threshold synopsis,
    /// then quantize; the combined error bound is recorded. Returns
    /// `None` for an empty slab (or one the compressor emptied, which
    /// cannot happen — the first fix is always kept).
    pub fn seal(id: VesselId, slab: &[Fix], config: &SegmentConfig) -> Option<Self> {
        debug_assert!(slab.windows(2).all(|w| w[0].t <= w[1].t), "slab must be time-sorted");
        let kept: Vec<Fix>;
        let fixes = if config.is_lossless() {
            slab
        } else {
            let mut c = ThresholdCompressor::new(ThresholdConfig {
                tolerance_m: config.tolerance_m,
                max_silence: config.max_silence,
            });
            kept = slab.iter().filter_map(|f| c.observe(*f)).collect();
            &kept
        };
        let first = *fixes.first()?;
        let last = *fixes.last()?;
        // Dropped observations after the last kept fix reconstruct by
        // dead-reckoning over this extra stretch; the error bound must
        // cover it (gaps *between* kept fixes are covered by the
        // decoded windows in `error_bound`).
        let tail_gap_s = (slab.last()?.t - last.t) as f64 / 1_000.0;

        let mut cols: [Vec<u8>; 5] = Default::default();
        let mut prev_t = first.t;
        let pos_scale =
            if config.is_lossless() { 0.0 } else { 1.0 / config.quant_step_deg().max(1e-12) };
        let mut prev = [0i64; 4];
        let mut prev_f = [0f64; 4];
        for f in fixes {
            write_varint(&mut cols[0], zigzag(f.t - prev_t));
            prev_t = f.t;
            if pos_scale == 0.0 {
                for (col, (p, v)) in
                    prev_f.iter_mut().zip([f.pos.lat, f.pos.lon, f.sog_kn, f.cog_deg]).enumerate()
                {
                    *p = write_f64_xor(&mut cols[col + 1], *p, v);
                }
            } else {
                let q = [
                    quantize(f.pos.lat, pos_scale),
                    quantize(f.pos.lon, pos_scale),
                    quantize(f.sog_kn, SOG_SCALE),
                    quantize(f.cog_deg, COG_SCALE),
                ];
                for (col, (p, v)) in prev.iter_mut().zip(q).enumerate() {
                    write_varint(&mut cols[col + 1], zigzag(v - *p));
                    *p = v;
                }
            }
        }
        for c in &mut cols {
            c.shrink_to_fit();
        }

        let mut seg = Self {
            id,
            len: fixes.len(),
            t_min: first.t,
            t_max: last.t,
            bbox: BoundingBox::empty(),
            error_bound_m: 0.0,
            first,
            last,
            pos_scale,
            cols,
        };
        // Fences, cached endpoints and the error bound must describe
        // the *decoded* fixes — what readers see. Lossless round-trips
        // are bit-exact, so the input slab serves directly; lossy
        // segments pay one decode to pick up the quantized values.
        let decoded;
        let visible: &[Fix] = if config.is_lossless() {
            fixes
        } else {
            decoded = seg.decode();
            &decoded
        };
        let mut bbox = BoundingBox::empty();
        for f in visible {
            bbox.extend(f.pos);
        }
        seg.bbox = bbox;
        seg.first = visible[0];
        seg.last = visible[visible.len() - 1];
        seg.error_bound_m =
            if config.is_lossless() { 0.0 } else { Self::error_bound(visible, tail_gap_s, config) };
        Some(seg)
    }

    /// Conservative reconstruction error bound of a lossy segment:
    /// threshold tolerance, plus quantization of the observed and the
    /// dead-reckoning anchor positions, plus the drift that quantized
    /// speed/course can accumulate over the largest anchor-to-
    /// observation gap (between kept fixes, or from the last kept fix
    /// to the end of the sealed slab).
    fn error_bound(decoded: &[Fix], tail_gap_s: f64, config: &SegmentConfig) -> f64 {
        let quant_err_m = 0.5 * config.quant_step_deg() * METERS_PER_DEG * std::f64::consts::SQRT_2;
        let max_gap_s = decoded
            .windows(2)
            .map(|w| (w[1].t - w[0].t) as f64 / 1_000.0)
            .fold(tail_gap_s, f64::max);
        let max_sog = decoded.iter().map(|f| f.sog_kn).fold(0.0f64, f64::max);
        let sog_err_mps = knots_to_mps(0.5 / SOG_SCALE);
        let cog_err_rad = (0.5 / COG_SCALE).to_radians();
        let drift_m = max_gap_s * (sog_err_mps + knots_to_mps(max_sog) * cog_err_rad);
        config.tolerance_m + 2.0 * quant_err_m + drift_m
    }

    /// Streaming decoder over the stored fixes, front to back (delta
    /// coding forces sequential access, but consumers that stop early
    /// never materialize the suffix). Exact-size, so `collect`
    /// preallocates.
    pub(crate) fn iter_decoded(&self) -> impl Iterator<Item = Fix> + '_ {
        let mut at = [0usize; 5];
        let mut t = self.t_min;
        let mut prev = [0i64; 4];
        let mut prev_f = [0f64; 4];
        (0..self.len).map(move |i| {
            let dt = unzigzag(read_varint(&self.cols[0], &mut at[0]).expect("t column"));
            t = if i == 0 { self.t_min } else { t + dt };
            let mut vals = [0f64; 4];
            if self.pos_scale == 0.0 {
                for (col, (p, v)) in prev_f.iter_mut().zip(vals.iter_mut()).enumerate() {
                    *v = read_f64_xor(&self.cols[col + 1], &mut at[col + 1], *p)
                        .expect("float column");
                    *p = *v;
                }
            } else {
                for (col, (p, v)) in prev.iter_mut().zip(vals.iter_mut()).enumerate() {
                    let d =
                        unzigzag(read_varint(&self.cols[col + 1], &mut at[col + 1]).expect("col"));
                    *p += d;
                    let scale = match col {
                        0 | 1 => self.pos_scale,
                        2 => SOG_SCALE,
                        _ => COG_SCALE,
                    };
                    *v = dequantize(*p, scale);
                }
            }
            Fix::new(self.id, t, mda_geo::Position::new(vals[0], vals[1]), vals[2], vals[3])
        })
    }

    /// Decode the stored fixes, time-sorted. Bit-exact for lossless
    /// segments; within [`Self::error_bound_m`] otherwise.
    pub fn decode(&self) -> Vec<Fix> {
        self.iter_decoded().collect()
    }

    /// Decoded fixes with `from <= t <= to` (fence-checked first; the
    /// decode stops at `to` rather than walking the whole segment).
    pub fn decode_range(&self, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        if !self.overlaps_time(from, to) {
            return Vec::new();
        }
        self.iter_decoded().skip_while(|f| f.t < from).take_while(|f| f.t <= to).collect()
    }

    /// The vessel this segment belongs to.
    pub fn vessel(&self) -> VesselId {
        self.id
    }

    /// Number of stored fixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the segment stores nothing (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inclusive event-time span of the stored fixes.
    pub fn time_span(&self) -> (Timestamp, Timestamp) {
        (self.t_min, self.t_max)
    }

    /// Bounding box of the decoded positions (the spatial fence).
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Recorded reconstruction error bound in metres (0 = bit-exact).
    pub fn error_bound_m(&self) -> f64 {
        self.error_bound_m
    }

    /// First stored fix (decoded), without decoding the segment.
    pub fn first(&self) -> &Fix {
        &self.first
    }

    /// Last stored fix (decoded), without decoding the segment.
    pub fn last(&self) -> &Fix {
        &self.last
    }

    /// Approximate in-memory footprint of the encoded columns in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cols.iter().map(Vec::len).sum::<usize>()
    }

    /// True if the segment's time fence intersects `[from, to]`.
    #[inline]
    pub fn overlaps_time(&self, from: Timestamp, to: Timestamp) -> bool {
        self.t_min <= to && self.t_max >= from
    }

    /// True if both fences intersect the query window — the
    /// whole-segment skip test used by cross-tier window queries.
    #[inline]
    pub fn overlaps(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> bool {
        self.overlaps_time(from, to) && self.bbox.intersects(area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::distance::haversine_m;
    use mda_geo::Position;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy_track(n: usize, seed: u64) -> Vec<Fix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Timestamp::from_secs(0);
        let (mut lat, mut lon) = (43.0, 5.0);
        (0..n)
            .map(|_| {
                t += rng.gen_range(1_000..30_000);
                lat += rng.gen_range(-0.001..0.001);
                lon += rng.gen_range(-0.001..0.001);
                Fix::new(
                    7,
                    t,
                    Position::new(lat, lon),
                    rng.gen_range(0.0..25.0),
                    rng.gen_range(0.0..360.0),
                )
            })
            .collect()
    }

    #[test]
    fn lossless_round_trip_is_bit_exact() {
        let fixes = noisy_track(500, 1);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        let back = seg.decode();
        assert_eq!(back.len(), fixes.len());
        for (a, b) in fixes.iter().zip(&back) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.pos.lat.to_bits(), b.pos.lat.to_bits());
            assert_eq!(a.pos.lon.to_bits(), b.pos.lon.to_bits());
            assert_eq!(a.sog_kn.to_bits(), b.sog_kn.to_bits());
            assert_eq!(a.cog_deg.to_bits(), b.cog_deg.to_bits());
        }
        assert_eq!(seg.error_bound_m(), 0.0);
    }

    #[test]
    fn lossy_positions_within_bound() {
        let fixes = noisy_track(500, 2);
        let cfg = SegmentConfig { tolerance_m: 40.0, ..SegmentConfig::default() };
        let seg = TrajectorySegment::seal(7, &fixes, &cfg).unwrap();
        let back = seg.decode();
        // Kept timestamps survive exactly; positions move at most by the
        // quantization part of the bound.
        let kept: Vec<&Fix> = fixes.iter().filter(|f| back.iter().any(|b| b.t == f.t)).collect();
        assert_eq!(kept.len(), back.len());
        for (orig, dec) in kept.iter().zip(&back) {
            assert_eq!(orig.t, dec.t);
            assert!(haversine_m(orig.pos, dec.pos) <= seg.error_bound_m());
        }
        assert!(seg.error_bound_m() >= cfg.tolerance_m);
    }

    #[test]
    fn error_bound_covers_trailing_dropped_fixes() {
        // A perfectly straight slab keeps only its first fix; every
        // later observation reconstructs by dead-reckoning over an
        // ever-longer gap — the recorded bound must still hold at the
        // slab's far end, where sog/cog quantization drift peaks.
        let start = Fix::new(7, Timestamp::from_secs(0), Position::new(43.0, 5.0), 12.345, 77.77);
        let fixes: Vec<Fix> = (0..180)
            .map(|i| {
                let t = Timestamp::from_secs(i * 10);
                Fix { t, pos: start.dead_reckon(t), ..start }
            })
            .collect();
        let cfg = SegmentConfig { tolerance_m: 20.0, ..SegmentConfig::default() };
        let seg = TrajectorySegment::seal(7, &fixes, &cfg).unwrap();
        assert_eq!(seg.len(), 1, "straight slab keeps only the anchor");
        let anchor = seg.decode()[0];
        for f in &fixes {
            let err = haversine_m(anchor.dead_reckon(f.t), f.pos);
            assert!(err <= seg.error_bound_m(), "err {err} > bound {}", seg.error_bound_m());
        }
    }

    #[test]
    fn fences_cover_contents() {
        let fixes = noisy_track(200, 3);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        let (t0, t1) = seg.time_span();
        assert_eq!(t0, fixes[0].t);
        assert_eq!(t1, fixes[fixes.len() - 1].t);
        for f in seg.decode() {
            assert!(seg.bbox().contains(f.pos));
            assert!(f.t >= t0 && f.t <= t1);
        }
        assert!(!seg.overlaps_time(t1 + 1, t1 + 1_000));
        assert!(seg.overlaps_time(t0, t0));
    }

    #[test]
    fn decode_range_filters_inclusively() {
        let fixes: Vec<Fix> = (0..20)
            .map(|i| Fix::new(1, Timestamp::from_mins(i), Position::new(43.0, 5.0), 5.0, 0.0))
            .collect();
        let seg = TrajectorySegment::seal(1, &fixes, &SegmentConfig::lossless()).unwrap();
        let got = seg.decode_range(Timestamp::from_mins(5), Timestamp::from_mins(9));
        assert_eq!(got.len(), 5);
        assert!(seg.decode_range(Timestamp::from_mins(50), Timestamp::from_mins(60)).is_empty());
    }

    #[test]
    fn empty_slab_seals_to_none() {
        assert!(TrajectorySegment::seal(1, &[], &SegmentConfig::default()).is_none());
    }

    #[test]
    fn sealed_bytes_beat_raw_fixes() {
        // A smooth track: threshold compression plus delta coding must
        // undercut the 48-byte in-memory `Fix` by a wide margin.
        let start = Fix::new(7, Timestamp::from_secs(0), Position::new(43.0, 5.0), 12.0, 90.0);
        let fixes: Vec<Fix> = (0..2_000)
            .map(|i| {
                let t = Timestamp::from_secs(i * 10);
                Fix { t, pos: start.dead_reckon(t), ..start }
            })
            .collect();
        let raw = fixes.len() * std::mem::size_of::<Fix>();
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::default()).unwrap();
        assert!(seg.approx_bytes() * 5 < raw, "sealed {} bytes vs raw {raw}", seg.approx_bytes());
    }
}
