//! Immutable, sealed cold-tier trajectory segments.
//!
//! A [`TrajectorySegment`] is a per-vessel, time-partitioned slab of
//! fixes rotated out of the hot shards by
//! [`ShardedTrajectoryStore::seal_before`](crate::shards::ShardedTrajectoryStore::seal_before).
//! Segments are:
//!
//! - **Immutable** — sealed once, never appended to. Late fixes older
//!   than an already-sealed slab simply seal into an additional segment
//!   later; readers merge overlapping segments deterministically.
//! - **Delta-encoded columnar** — timestamps as zigzag varint deltas;
//!   positions either fixed-point quantized deltas (lossy mode, with a
//!   recorded error bound) or bit-exact XOR-chained floats (lossless
//!   mode). See [`mda_geo::codec`] for the primitives.
//! - **Optionally pre-compressed** — lossy sealing first runs the slab
//!   through [`mda_synopses::compress::ThresholdCompressor`], so the
//!   cold tier stores the synopsis of the slab, 20–50× smaller than
//!   the raw fixes, with the combined (threshold + quantization +
//!   dead-reckoning drift) error bound recorded on the segment.
//! - **Fenced** — each segment carries its time span and the bounding
//!   box of its (decoded) positions, so window queries skip
//!   non-overlapping segments without decoding them.
//!
//! ## Example
//!
//! ```
//! use mda_geo::{Fix, Position, Timestamp};
//! use mda_store::segment::{SegmentConfig, TrajectorySegment};
//!
//! let fixes: Vec<Fix> = (0..100)
//!     .map(|i| {
//!         let t = Timestamp::from_secs(i * 10);
//!         Fix::new(9, t, Position::new(43.0, 5.0 + 0.0001 * i as f64), 10.0, 90.0)
//!     })
//!     .collect();
//! // Lossless sealing (tolerance 0) round-trips bit-exactly.
//! let seg = TrajectorySegment::seal(9, &fixes, &SegmentConfig::lossless()).unwrap();
//! assert_eq!(seg.decode(), fixes);
//! assert_eq!(seg.error_bound_m(), 0.0);
//! // Lossy sealing stores the slab's synopsis, far smaller.
//! let lossy = TrajectorySegment::seal(9, &fixes, &SegmentConfig::default()).unwrap();
//! assert!(lossy.len() < fixes.len());
//! assert!(lossy.error_bound_m() > 0.0);
//! ```

use crate::bytes::ByteReader;
use crate::trajstore::{Track, TrackView};
use mda_geo::codec::{
    dequantize, quantize, read_f64_xor, read_varint, unzigzag, write_f64_xor, write_varint, zigzag,
};
use mda_geo::time::MINUTE;
use mda_geo::units::knots_to_mps;
use mda_geo::{BoundingBox, DurationMs, Fix, Timestamp, VesselId};
use mda_synopses::compress::{ThresholdCompressor, ThresholdConfig};

/// Metres per degree of latitude (and of longitude at the equator).
const METERS_PER_DEG: f64 = 111_320.0;

/// Fixed-point scale for quantized speed over ground (0.01 kn steps).
const SOG_SCALE: f64 = 100.0;

/// Fixed-point scale for quantized course over ground (0.01° steps).
const COG_SCALE: f64 = 100.0;

/// How a vessel's slab of fixes is sealed into a cold segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Threshold pre-compression tolerance in metres; `<= 0` disables
    /// pre-compression *and* quantization — sealing is bit-exact.
    pub tolerance_m: f64,
    /// Keepalive gap for lossy pre-compression (a fix is always kept
    /// after this long without one, bounding reconstruction gaps).
    pub max_silence: DurationMs,
    /// Maximum event-time span of one segment. Sealing splits a
    /// vessel's run at `max_span`-aligned boundaries, so segment
    /// contents are independent of *when* seals happened and fences
    /// stay tight.
    pub max_span: DurationMs,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self { tolerance_m: 50.0, max_silence: 30 * MINUTE, max_span: 30 * MINUTE }
    }
}

impl SegmentConfig {
    /// Bit-exact sealing: no pre-compression, no quantization.
    pub fn lossless() -> Self {
        Self { tolerance_m: 0.0, ..Self::default() }
    }

    /// True when sealing with this configuration is exactly reversible.
    pub fn is_lossless(&self) -> bool {
        self.tolerance_m <= 0.0
    }

    /// The position quantization step in degrees (lossy mode): a
    /// quarter of the tolerance, so quantization noise stays well
    /// inside the threshold-compression bound.
    fn quant_step_deg(&self) -> f64 {
        self.tolerance_m / (4.0 * METERS_PER_DEG)
    }
}

/// Why decoding or parsing a segment's stored bytes failed.
///
/// Produced only for bytes that arrived from *outside* the process
/// (disk, network): in-process sealing always writes well-formed
/// columns. The error pinpoints the segment (by vessel), the column,
/// and the fix index at which the byte stream stopped making sense —
/// and is returned instead of panicking, always.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecError {
    /// Vessel of the segment that failed to decode.
    pub vessel: VesselId,
    /// Column name: `"t"`, `"lat"`, `"lon"`, `"sog"`, `"cog"` — or
    /// `"header"` when the record structure around the columns is
    /// malformed.
    pub column: &'static str,
    /// Fix index at which decoding failed (byte offset for `"header"`).
    pub index: usize,
    /// What was wrong with the bytes.
    pub reason: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "segment codec error (vessel {}, column {:?}, index {}): {}",
            self.vessel, self.column, self.index, self.reason
        )
    }
}

impl std::error::Error for CodecError {}

/// Column names, in stored order, for [`CodecError::column`].
const COLUMN_NAMES: [&str; 5] = ["t", "lat", "lon", "sog", "cog"];

/// An immutable, sealed, compressed slab of one vessel's fixes.
#[derive(Debug, Clone)]
pub struct TrajectorySegment {
    id: VesselId,
    len: usize,
    /// Event-time fence (inclusive, over the stored fixes).
    t_min: Timestamp,
    t_max: Timestamp,
    /// Spatial fence over the *decoded* positions.
    bbox: BoundingBox,
    /// Upper bound on the position error of reconstructing any sealed
    /// observation from this segment (0 for lossless segments).
    error_bound_m: f64,
    /// First and last stored fix, pre-decoded for fence/latest queries.
    first: Fix,
    last: Fix,
    /// Position quantization scale; 0.0 marks a lossless segment.
    pos_scale: f64,
    /// The encoded columns: t, lat, lon, sog, cog.
    cols: [Vec<u8>; 5],
}

impl TrajectorySegment {
    /// Seal a time-sorted slab of one vessel's fixes. Convenience
    /// wrapper over [`Self::seal_track`] for row-shaped callers (WAL
    /// replay, tests); the hot rotation path seals columnar
    /// [`Track`]s drained from the store directly.
    pub fn seal(id: VesselId, slab: &[Fix], config: &SegmentConfig) -> Option<Self> {
        debug_assert!(slab.windows(2).all(|w| w[0].t <= w[1].t), "slab must be time-sorted");
        let track = Track::from_fixes(slab);
        Self::seal_track(&track.view(id), config)
    }

    /// Seal a time-sorted columnar slab of one vessel's fixes. Lossy
    /// configurations first reduce the slab to its threshold synopsis,
    /// then quantize; the combined error bound is recorded. Returns
    /// `None` for an empty slab (or one the compressor emptied, which
    /// cannot happen — the first fix is always kept).
    ///
    /// Each of the five encoded buffers is an independent byte stream,
    /// so encoding column-by-column (one linear pass per column,
    /// straight off the hot tier's storage layout — no row transpose)
    /// produces byte-identical segments to the historical per-fix
    /// interleaved encoder.
    pub fn seal_track(view: &TrackView<'_>, config: &SegmentConfig) -> Option<Self> {
        debug_assert!(view.t.windows(2).all(|w| w[0] <= w[1]), "slab must be time-sorted");
        let id = view.id;
        let slab_last_t = *view.t.last()?;
        let kept;
        let v: TrackView<'_> = if config.is_lossless() {
            *view
        } else {
            let mut c = ThresholdCompressor::new(ThresholdConfig {
                tolerance_m: config.tolerance_m,
                max_silence: config.max_silence,
            });
            let kept_fixes: Vec<Fix> = view.iter().filter_map(|f| c.observe(f)).collect();
            kept = Track::from_fixes(&kept_fixes);
            kept.view(id)
        };
        let first = v.first()?;
        let last = v.last()?;
        // Dropped observations after the last kept fix reconstruct by
        // dead-reckoning over this extra stretch; the error bound must
        // cover it (gaps *between* kept fixes are covered by the
        // decoded windows in `error_bound`).
        let tail_gap_s = (slab_last_t - last.t) as f64 / 1_000.0;
        let pos_scale =
            if config.is_lossless() { 0.0 } else { 1.0 / config.quant_step_deg().max(1e-12) };
        let mut cols = encode_columns(&v, pos_scale);
        for c in &mut cols {
            c.shrink_to_fit();
        }

        let mut seg = Self {
            id,
            len: v.len(),
            t_min: first.t,
            t_max: last.t,
            bbox: BoundingBox::empty(),
            error_bound_m: 0.0,
            first,
            last,
            pos_scale,
            cols,
        };
        // Fences, cached endpoints and the error bound must describe
        // the *decoded* fixes — what readers see. Lossless round-trips
        // are bit-exact, so the input columns serve directly; lossy
        // segments pay one decode to pick up the quantized values.
        if config.is_lossless() {
            let mut bbox = BoundingBox::empty();
            for (&lat, &lon) in v.lat.iter().zip(v.lon) {
                bbox.extend(mda_geo::Position::new(lat, lon));
            }
            seg.bbox = bbox;
        } else {
            let decoded = seg.decode();
            let mut bbox = BoundingBox::empty();
            for f in &decoded {
                bbox.extend(f.pos);
            }
            seg.bbox = bbox;
            if let (Some(&first), Some(&last)) = (decoded.first(), decoded.last()) {
                seg.first = first;
                seg.last = last;
            }
            seg.error_bound_m = Self::error_bound(&decoded, tail_gap_s, config);
        }
        Some(seg)
    }

    /// Conservative reconstruction error bound of a lossy segment:
    /// threshold tolerance, plus quantization of the observed and the
    /// dead-reckoning anchor positions, plus the drift that quantized
    /// speed/course can accumulate over the largest anchor-to-
    /// observation gap (between kept fixes, or from the last kept fix
    /// to the end of the sealed slab).
    fn error_bound(decoded: &[Fix], tail_gap_s: f64, config: &SegmentConfig) -> f64 {
        let quant_err_m = 0.5 * config.quant_step_deg() * METERS_PER_DEG * std::f64::consts::SQRT_2;
        let max_gap_s = decoded
            .windows(2)
            .map(|w| (w[1].t - w[0].t) as f64 / 1_000.0)
            .fold(tail_gap_s, f64::max);
        let max_sog = decoded.iter().map(|f| f.sog_kn).fold(0.0f64, f64::max);
        let sog_err_mps = knots_to_mps(0.5 / SOG_SCALE);
        let cog_err_rad = (0.5 / COG_SCALE).to_radians();
        let drift_m = max_gap_s * (sog_err_mps + knots_to_mps(max_sog) * cog_err_rad);
        config.tolerance_m + 2.0 * quant_err_m + drift_m
    }

    /// Decode the fix at logical index `i`, advancing the shared column
    /// cursors. Every malformed byte pattern — truncation, over-long
    /// varints, overflowing deltas — surfaces as a [`CodecError`];
    /// nothing in this path can panic, whatever the bytes.
    fn decode_one(
        &self,
        i: usize,
        at: &mut [usize; 5],
        t: &mut Timestamp,
        prev: &mut [i64; 4],
        prev_f: &mut [f64; 4],
    ) -> Result<Fix, CodecError> {
        let bad = |col: usize| CodecError {
            vessel: self.id,
            // lint:allow(panic-free-decode): col is 0..=4 at every call
            // site below, within COLUMN_NAMES' fixed length of 5.
            column: COLUMN_NAMES[col],
            index: i,
            reason: "truncated or malformed varint stream",
        };
        let dt = unzigzag(read_varint(&self.cols[0], &mut at[0]).ok_or_else(|| bad(0))?);
        // Saturate rather than overflow: a bit-flipped delta must yield
        // a wrong-but-harmless timestamp, not an arithmetic panic.
        *t = if i == 0 { self.t_min } else { t.saturating_add(dt) };
        let mut vals = [0f64; 4];
        let value_cols = self.cols[1..].iter().zip(at[1..].iter_mut());
        if self.pos_scale == 0.0 {
            for (col, ((bytes, a), (p, v))) in
                value_cols.zip(prev_f.iter_mut().zip(vals.iter_mut())).enumerate()
            {
                *v = read_f64_xor(bytes, a, *p).ok_or_else(|| bad(col + 1))?;
                *p = *v;
            }
        } else {
            let scales = [self.pos_scale, self.pos_scale, SOG_SCALE, COG_SCALE];
            for (col, (((bytes, a), (p, v)), scale)) in
                value_cols.zip(prev.iter_mut().zip(vals.iter_mut())).zip(scales).enumerate()
            {
                let d = unzigzag(read_varint(bytes, a).ok_or_else(|| bad(col + 1))?);
                *p = p.saturating_add(d);
                *v = dequantize(*p, scale);
            }
        }
        Ok(Fix::new(self.id, *t, mda_geo::Position::new(vals[0], vals[1]), vals[2], vals[3]))
    }

    /// Fallible streaming decoder over the stored fixes, front to back
    /// (delta coding forces sequential access; consumers that stop
    /// early never materialize the suffix). The iterator is fused at
    /// the first error: malformed bytes yield exactly one `Err` and
    /// then end.
    pub fn try_iter_decoded(&self) -> impl Iterator<Item = Result<Fix, CodecError>> + '_ {
        let mut at = [0usize; 5];
        let mut t = self.t_min;
        let mut prev = [0i64; 4];
        let mut prev_f = [0f64; 4];
        let mut i = 0usize;
        let mut failed = false;
        std::iter::from_fn(move || {
            if failed || i >= self.len {
                return None;
            }
            let r = self.decode_one(i, &mut at, &mut t, &mut prev, &mut prev_f);
            i += 1;
            failed = r.is_err();
            Some(r)
        })
    }

    /// Infallible streaming decoder used by in-process query paths:
    /// truncates at the first malformed byte instead of erroring.
    /// Segments sealed in-process always decode fully; segments
    /// reconstructed from external bytes are CRC-checked before they
    /// get here, so truncation is defense-in-depth, not a data path.
    pub(crate) fn iter_decoded(&self) -> impl Iterator<Item = Fix> + '_ {
        self.try_iter_decoded().map_while(Result::ok)
    }

    /// Decode the stored fixes, time-sorted, or report exactly where
    /// the byte stream is malformed. Bit-exact for lossless segments;
    /// within [`Self::error_bound_m`] otherwise. Never panics,
    /// whatever the column bytes contain.
    pub fn try_decode(&self) -> Result<Vec<Fix>, CodecError> {
        self.try_iter_decoded().collect()
    }

    /// Decode the stored fixes, time-sorted. Bit-exact for lossless
    /// segments; within [`Self::error_bound_m`] otherwise. On malformed
    /// column bytes this truncates at the first bad fix (see
    /// [`Self::try_decode`] for the error-reporting variant).
    pub fn decode(&self) -> Vec<Fix> {
        self.iter_decoded().collect()
    }

    /// Decoded fixes with `from <= t <= to` (fence-checked first; the
    /// decode stops at `to` rather than walking the whole segment).
    pub fn decode_range(&self, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        if !self.overlaps_time(from, to) {
            return Vec::new();
        }
        self.iter_decoded().skip_while(|f| f.t < from).take_while(|f| f.t <= to).collect()
    }

    /// The vessel this segment belongs to.
    pub fn vessel(&self) -> VesselId {
        self.id
    }

    /// Number of stored fixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the segment stores nothing (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inclusive event-time span of the stored fixes.
    pub fn time_span(&self) -> (Timestamp, Timestamp) {
        (self.t_min, self.t_max)
    }

    /// Bounding box of the decoded positions (the spatial fence).
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Recorded reconstruction error bound in metres (0 = bit-exact).
    pub fn error_bound_m(&self) -> f64 {
        self.error_bound_m
    }

    /// First stored fix (decoded), without decoding the segment.
    pub fn first(&self) -> &Fix {
        &self.first
    }

    /// Last stored fix (decoded), without decoding the segment.
    pub fn last(&self) -> &Fix {
        &self.last
    }

    /// Approximate in-memory footprint of the encoded columns in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cols.iter().map(Vec::len).sum::<usize>()
    }

    /// Serialize the segment to a self-contained byte record: a
    /// fixed-width little-endian header (identity, fences, cached
    /// endpoints, column lengths) followed by the five encoded columns.
    /// The inverse is [`Self::try_from_bytes`]. Framing (length prefix,
    /// CRC) is the caller's job — see `mda_store::durable`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let col_bytes: usize = self.cols.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(HEADER_BYTES + col_bytes);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&self.t_min.0.to_le_bytes());
        out.extend_from_slice(&self.t_max.0.to_le_bytes());
        for v in [self.bbox.min_lat, self.bbox.min_lon, self.bbox.max_lat, self.bbox.max_lon] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.error_bound_m.to_le_bytes());
        write_fix(&mut out, &self.first);
        write_fix(&mut out, &self.last);
        out.extend_from_slice(&self.pos_scale.to_le_bytes());
        for c in &self.cols {
            out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        }
        for c in &self.cols {
            out.extend_from_slice(c);
        }
        out
    }

    /// Reconstruct a segment from bytes written by [`Self::to_bytes`].
    ///
    /// This is the trust boundary for bytes read off disk: every
    /// structural invariant is re-validated — exact record length,
    /// fence ordering (`t_min <= t_max`, endpoints on the fences,
    /// endpoint vessel ids matching), finite non-negative error bound
    /// and scale, bbox containing both endpoints, and at least one
    /// byte per column per fix. Malformed input returns a
    /// [`CodecError`] naming the violated rule; nothing panics. Column
    /// *contents* are not decoded here — framing CRCs catch bit rot,
    /// and [`Self::try_decode`] fails softly if they don't.
    pub fn try_from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        let header = |at: usize, reason: &'static str| CodecError {
            vessel: 0,
            column: "header",
            index: at,
            reason,
        };
        let mut r = ByteReader::new(buf);
        let id = r.u32().ok_or_else(|| header(r.pos(), "record shorter than header"))?;
        let bad = |r: &ByteReader<'_>, reason: &'static str| CodecError {
            vessel: id,
            column: "header",
            index: r.pos(),
            reason,
        };
        let short = "record shorter than header";
        let len = r.u64().ok_or_else(|| bad(&r, short))?;
        let t_min = Timestamp(r.i64().ok_or_else(|| bad(&r, short))?);
        let t_max = Timestamp(r.i64().ok_or_else(|| bad(&r, short))?);
        let mut b = [0f64; 4];
        for v in &mut b {
            *v = r.f64().ok_or_else(|| bad(&r, short))?;
        }
        let bbox = BoundingBox { min_lat: b[0], min_lon: b[1], max_lat: b[2], max_lon: b[3] };
        let error_bound_m = r.f64().ok_or_else(|| bad(&r, short))?;
        let first = read_fix(&mut r).ok_or_else(|| bad(&r, short))?;
        let last = read_fix(&mut r).ok_or_else(|| bad(&r, short))?;
        let pos_scale = r.f64().ok_or_else(|| bad(&r, short))?;
        let mut col_lens = [0usize; 5];
        for l in &mut col_lens {
            *l = r.u32().ok_or_else(|| bad(&r, short))? as usize;
        }
        let total: usize = col_lens
            .iter()
            .try_fold(HEADER_BYTES, |a, &l| a.checked_add(l))
            .ok_or_else(|| bad(&r, "column lengths overflow"))?;
        if total != buf.len() {
            return Err(bad(&r, "record length disagrees with column lengths"));
        }
        let mut cols: [Vec<u8>; 5] = Default::default();
        for (c, &l) in cols.iter_mut().zip(&col_lens) {
            *c = r.take(l).ok_or_else(|| bad(&r, short))?.to_vec();
        }

        // Structural validation: everything a fence-trusting reader or
        // the decoder relies on.
        let len = usize::try_from(len).map_err(|_| bad(&r, "fix count out of range"))?;
        if len == 0 {
            return Err(bad(&r, "segment stores no fixes"));
        }
        if col_lens.iter().any(|&l| l < len) {
            // Every fix costs at least one byte in every column.
            return Err(bad(&r, "column too short for fix count"));
        }
        if t_min > t_max {
            return Err(bad(&r, "inverted time fence"));
        }
        if first.t != t_min || last.t != t_max {
            return Err(bad(&r, "endpoint fixes off the time fence"));
        }
        if first.id != id || last.id != id {
            return Err(bad(&r, "endpoint vessel mismatch"));
        }
        if !(error_bound_m.is_finite() && error_bound_m >= 0.0) {
            return Err(bad(&r, "error bound not finite and non-negative"));
        }
        if !(pos_scale.is_finite() && pos_scale >= 0.0) {
            return Err(bad(&r, "position scale not finite and non-negative"));
        }
        if bbox.min_lat > bbox.max_lat || bbox.min_lon > bbox.max_lon {
            return Err(bad(&r, "inverted bounding box"));
        }
        if !bbox.contains(first.pos) || !bbox.contains(last.pos) {
            return Err(bad(&r, "endpoint outside spatial fence"));
        }
        Ok(Self { id, len, t_min, t_max, bbox, error_bound_m, first, last, pos_scale, cols })
    }

    /// True if the segment's time fence intersects `[from, to]`.
    #[inline]
    pub fn overlaps_time(&self, from: Timestamp, to: Timestamp) -> bool {
        self.t_min <= to && self.t_max >= from
    }

    /// True if both fences intersect the query window — the
    /// whole-segment skip test used by cross-tier window queries.
    #[inline]
    pub fn overlaps(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> bool {
        self.overlaps_time(from, to) && self.bbox.intersects(area)
    }
}

/// Delta-encode the five columns of a time-sorted slab, one linear
/// pass per column. `pos_scale == 0.0` selects the lossless XOR-chain
/// float encoding; otherwise positions quantize at `pos_scale` and
/// sog/cog at their fixed scales.
fn encode_columns(v: &TrackView<'_>, pos_scale: f64) -> [Vec<u8>; 5] {
    let mut cols: [Vec<u8>; 5] = Default::default();
    let Some(&first_t) = v.t.first() else { return cols };
    let mut prev_t = first_t;
    for &t in v.t {
        write_varint(&mut cols[0], zigzag(t - prev_t));
        prev_t = t;
    }
    let value_views = [v.lat, v.lon, v.sog, v.cog];
    if pos_scale == 0.0 {
        for (out, vals) in cols[1..].iter_mut().zip(value_views) {
            let mut p = 0f64;
            for &x in vals {
                p = write_f64_xor(out, p, x);
            }
        }
    } else {
        let scales = [pos_scale, pos_scale, SOG_SCALE, COG_SCALE];
        for ((out, vals), scale) in cols[1..].iter_mut().zip(value_views).zip(scales) {
            let mut p = 0i64;
            for &x in vals {
                let q = quantize(x, scale);
                write_varint(out, zigzag(q - p));
                p = q;
            }
        }
    }
    cols
}

/// Fixed header size of [`TrajectorySegment::to_bytes`]: id (4) +
/// len (8) + t fences (16) + bbox (32) + error bound (8) + endpoint
/// fixes (2 × 44) + pos scale (8) + five column lengths (20).
const HEADER_BYTES: usize = 4 + 8 + 16 + 32 + 8 + 2 * FIX_BYTES + 8 + 20;

/// Serialized size of one [`Fix`]: id (4) + t (8) + 4 × f64 (32).
const FIX_BYTES: usize = 44;

/// Append `f` in the fixed 44-byte little-endian layout.
fn write_fix(out: &mut Vec<u8>, f: &Fix) {
    out.extend_from_slice(&f.id.to_le_bytes());
    out.extend_from_slice(&f.t.0.to_le_bytes());
    for v in [f.pos.lat, f.pos.lon, f.sog_kn, f.cog_deg] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Read a fix written by [`write_fix`]; `None` on truncation.
fn read_fix(r: &mut ByteReader<'_>) -> Option<Fix> {
    let id = r.u32()?;
    let t = Timestamp(r.i64()?);
    let lat = r.f64()?;
    let lon = r.f64()?;
    let sog = r.f64()?;
    let cog = r.f64()?;
    Some(Fix::new(id, t, mda_geo::Position::new(lat, lon), sog, cog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::distance::haversine_m;
    use mda_geo::Position;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy_track(n: usize, seed: u64) -> Vec<Fix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Timestamp::from_secs(0);
        let (mut lat, mut lon) = (43.0, 5.0);
        (0..n)
            .map(|_| {
                t += rng.gen_range(1_000..30_000);
                lat += rng.gen_range(-0.001..0.001);
                lon += rng.gen_range(-0.001..0.001);
                Fix::new(
                    7,
                    t,
                    Position::new(lat, lon),
                    rng.gen_range(0.0..25.0),
                    rng.gen_range(0.0..360.0),
                )
            })
            .collect()
    }

    #[test]
    fn lossless_round_trip_is_bit_exact() {
        let fixes = noisy_track(500, 1);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        let back = seg.decode();
        assert_eq!(back.len(), fixes.len());
        for (a, b) in fixes.iter().zip(&back) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.pos.lat.to_bits(), b.pos.lat.to_bits());
            assert_eq!(a.pos.lon.to_bits(), b.pos.lon.to_bits());
            assert_eq!(a.sog_kn.to_bits(), b.sog_kn.to_bits());
            assert_eq!(a.cog_deg.to_bits(), b.cog_deg.to_bits());
        }
        assert_eq!(seg.error_bound_m(), 0.0);
    }

    #[test]
    fn lossy_positions_within_bound() {
        let fixes = noisy_track(500, 2);
        let cfg = SegmentConfig { tolerance_m: 40.0, ..SegmentConfig::default() };
        let seg = TrajectorySegment::seal(7, &fixes, &cfg).unwrap();
        let back = seg.decode();
        // Kept timestamps survive exactly; positions move at most by the
        // quantization part of the bound.
        let kept: Vec<&Fix> = fixes.iter().filter(|f| back.iter().any(|b| b.t == f.t)).collect();
        assert_eq!(kept.len(), back.len());
        for (orig, dec) in kept.iter().zip(&back) {
            assert_eq!(orig.t, dec.t);
            assert!(haversine_m(orig.pos, dec.pos) <= seg.error_bound_m());
        }
        assert!(seg.error_bound_m() >= cfg.tolerance_m);
    }

    #[test]
    fn error_bound_covers_trailing_dropped_fixes() {
        // A perfectly straight slab keeps only its first fix; every
        // later observation reconstructs by dead-reckoning over an
        // ever-longer gap — the recorded bound must still hold at the
        // slab's far end, where sog/cog quantization drift peaks.
        let start = Fix::new(7, Timestamp::from_secs(0), Position::new(43.0, 5.0), 12.345, 77.77);
        let fixes: Vec<Fix> = (0..180)
            .map(|i| {
                let t = Timestamp::from_secs(i * 10);
                Fix { t, pos: start.dead_reckon(t), ..start }
            })
            .collect();
        let cfg = SegmentConfig { tolerance_m: 20.0, ..SegmentConfig::default() };
        let seg = TrajectorySegment::seal(7, &fixes, &cfg).unwrap();
        assert_eq!(seg.len(), 1, "straight slab keeps only the anchor");
        let anchor = seg.decode()[0];
        for f in &fixes {
            let err = haversine_m(anchor.dead_reckon(f.t), f.pos);
            assert!(err <= seg.error_bound_m(), "err {err} > bound {}", seg.error_bound_m());
        }
    }

    #[test]
    fn fences_cover_contents() {
        let fixes = noisy_track(200, 3);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        let (t0, t1) = seg.time_span();
        assert_eq!(t0, fixes[0].t);
        assert_eq!(t1, fixes[fixes.len() - 1].t);
        for f in seg.decode() {
            assert!(seg.bbox().contains(f.pos));
            assert!(f.t >= t0 && f.t <= t1);
        }
        assert!(!seg.overlaps_time(t1 + 1, t1 + 1_000));
        assert!(seg.overlaps_time(t0, t0));
    }

    #[test]
    fn decode_range_filters_inclusively() {
        let fixes: Vec<Fix> = (0..20)
            .map(|i| Fix::new(1, Timestamp::from_mins(i), Position::new(43.0, 5.0), 5.0, 0.0))
            .collect();
        let seg = TrajectorySegment::seal(1, &fixes, &SegmentConfig::lossless()).unwrap();
        let got = seg.decode_range(Timestamp::from_mins(5), Timestamp::from_mins(9));
        assert_eq!(got.len(), 5);
        assert!(seg.decode_range(Timestamp::from_mins(50), Timestamp::from_mins(60)).is_empty());
    }

    #[test]
    fn empty_slab_seals_to_none() {
        assert!(TrajectorySegment::seal(1, &[], &SegmentConfig::default()).is_none());
    }

    #[test]
    fn byte_round_trip_is_exact() {
        for cfg in [SegmentConfig::lossless(), SegmentConfig::default()] {
            let fixes = noisy_track(300, 11);
            let seg = TrajectorySegment::seal(7, &fixes, &cfg).unwrap();
            let back = TrajectorySegment::try_from_bytes(&seg.to_bytes()).unwrap();
            assert_eq!(back.vessel(), seg.vessel());
            assert_eq!(back.len(), seg.len());
            assert_eq!(back.time_span(), seg.time_span());
            assert_eq!(back.first(), seg.first());
            assert_eq!(back.last(), seg.last());
            assert_eq!(back.error_bound_m().to_bits(), seg.error_bound_m().to_bits());
            let (a, b) = (seg.try_decode().unwrap(), back.try_decode().unwrap());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.t, y.t);
                assert_eq!(x.pos.lat.to_bits(), y.pos.lat.to_bits());
                assert_eq!(x.pos.lon.to_bits(), y.pos.lon.to_bits());
            }
        }
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let fixes = noisy_track(64, 12);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        let bytes = seg.to_bytes();
        for cut in 0..bytes.len() {
            let r = TrajectorySegment::try_from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut}/{} bytes parsed", bytes.len());
        }
    }

    #[test]
    fn every_bit_flip_decodes_or_errors_never_panics() {
        let fixes = noisy_track(48, 13);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        let bytes = seg.to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut b = bytes.clone();
                b[byte] ^= 1 << bit;
                // Any outcome but a panic is acceptable here; framing
                // CRCs reject flipped bytes before this layer in the
                // durable path.
                if let Ok(seg) = TrajectorySegment::try_from_bytes(&b) {
                    let _ = seg.try_decode();
                }
            }
        }
    }

    #[test]
    fn truncated_columns_yield_codec_error() {
        let fixes = noisy_track(100, 14);
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::lossless()).unwrap();
        // Rebuild with a column cut mid-stream but a consistent header.
        let mut crippled = seg.clone();
        let keep = crippled.cols[0].len() / 2;
        crippled.cols[0].truncate(keep);
        let err = crippled.try_decode().unwrap_err();
        assert_eq!(err.vessel, 7);
        assert_eq!(err.column, "t");
        assert!(err.index > 0 && err.index < 100);
        // The infallible path truncates to the decodable prefix.
        assert_eq!(crippled.decode().len(), err.index);
    }

    #[test]
    fn sealed_bytes_beat_raw_fixes() {
        // A smooth track: threshold compression plus delta coding must
        // undercut the 48-byte in-memory `Fix` by a wide margin.
        let start = Fix::new(7, Timestamp::from_secs(0), Position::new(43.0, 5.0), 12.0, 90.0);
        let fixes: Vec<Fix> = (0..2_000)
            .map(|i| {
                let t = Timestamp::from_secs(i * 10);
                Fix { t, pos: start.dead_reckon(t), ..start }
            })
            .collect();
        let raw = fixes.len() * std::mem::size_of::<Fix>();
        let seg = TrajectorySegment::seal(7, &fixes, &SegmentConfig::default()).unwrap();
        assert!(seg.approx_bytes() * 5 < raw, "sealed {} bytes vs raw {raw}", seg.approx_bytes());
    }
}
