//! The versioned manifest: the durable tier's single source of truth.
//!
//! `MANIFEST` is one small file — magic `MDAM`, format version, then
//! one checksummed frame (the crate's shared framing) holding: the
//! live WAL generation, the seal high-water cut, the published
//! watermark at seal time, the *valid* byte length of every per-shard
//! segment file, and one fence entry per sealed segment (file, offset
//! order, vessel, time span, fix count).
//!
//! It is replaced atomically — written to `MANIFEST.tmp`, fsynced,
//! then renamed — so a crash leaves either the old complete manifest
//! or the new complete manifest, never a torn one. Everything *not*
//! named by the manifest (segment-file bytes past the recorded
//! lengths, WAL files of other generations) is an unacknowledged tail
//! from a crashed seal, and recovery ignores and reclaims it.

use crate::bytes::ByteReader;
use crate::frame::{read_frame, write_frame, FrameRead};
use mda_geo::{Timestamp, VesselId};
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: "MDAM" followed by the format version.
const MANIFEST_MAGIC: [u8; 8] = *b"MDAM\x01\0\0\0";

/// The manifest file name.
pub const FILE_NAME: &str = "MANIFEST";

/// Fence entry of one sealed segment record, in file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Index of the segment file (`shard-<file>.seg`) holding it.
    pub file: u32,
    /// Vessel the segment belongs to.
    pub vessel: VesselId,
    /// Inclusive time fence.
    pub t_min: Timestamp,
    /// Inclusive time fence.
    pub t_max: Timestamp,
    /// Stored fix count.
    pub fixes: u64,
}

/// The decoded manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The WAL generation recovery must replay.
    pub wal_gen: u64,
    /// Seal high-water cut already applied to the segment files.
    pub sealed_to: Timestamp,
    /// Published snapshot watermark at the time of the last seal.
    pub watermark: Timestamp,
    /// Valid byte length of each per-shard segment file; bytes past
    /// these are unacknowledged tails to truncate on recovery.
    pub file_lens: Vec<u64>,
    /// One fence entry per sealed segment, grouped by file in record
    /// order — recovery cross-checks every decoded segment against its
    /// entry.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// A fresh manifest for an empty store with `files` segment files.
    pub fn fresh(files: usize) -> Self {
        Self {
            wal_gen: 0,
            sealed_to: Timestamp::MIN,
            watermark: Timestamp::MIN,
            file_lens: vec![0; files],
            segments: Vec::new(),
        }
    }

    /// Serialize to the on-disk layout.
    fn encode(&self) -> Vec<u8> {
        let mut payload =
            Vec::with_capacity(32 + self.file_lens.len() * 8 + self.segments.len() * 32);
        payload.extend_from_slice(&self.wal_gen.to_le_bytes());
        payload.extend_from_slice(&self.sealed_to.0.to_le_bytes());
        payload.extend_from_slice(&self.watermark.0.to_le_bytes());
        payload.extend_from_slice(&(self.file_lens.len() as u32).to_le_bytes());
        for l in &self.file_lens {
            payload.extend_from_slice(&l.to_le_bytes());
        }
        payload.extend_from_slice(&(self.segments.len() as u64).to_le_bytes());
        for s in &self.segments {
            payload.extend_from_slice(&s.file.to_le_bytes());
            payload.extend_from_slice(&s.vessel.to_le_bytes());
            payload.extend_from_slice(&s.t_min.0.to_le_bytes());
            payload.extend_from_slice(&s.t_max.0.to_le_bytes());
            payload.extend_from_slice(&s.fixes.to_le_bytes());
        }
        let mut out = Vec::with_capacity(MANIFEST_MAGIC.len() + 8 + payload.len());
        out.extend_from_slice(&MANIFEST_MAGIC);
        write_frame(&mut out, &payload);
        out
    }

    /// Parse the on-disk layout. `None` on any structural problem —
    /// magic, checksum, field bounds — never a panic.
    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < MANIFEST_MAGIC.len() || bytes[..8] != MANIFEST_MAGIC {
            return None;
        }
        let mut at = MANIFEST_MAGIC.len();
        let FrameRead::Ok(payload) = read_frame(bytes, &mut at) else { return None };
        if at != bytes.len() {
            return None;
        }
        let mut r = ByteReader::new(payload);
        let wal_gen = r.u64()?;
        let sealed_to = Timestamp(r.u64()? as i64);
        let watermark = Timestamp(r.u64()? as i64);
        let files = r.u32()? as usize;
        // Bounded by the payload itself: each file length is 8 bytes.
        if files.checked_mul(8)? > r.remaining() {
            return None;
        }
        let mut file_lens = Vec::with_capacity(files);
        for _ in 0..files {
            file_lens.push(r.u64()?);
        }
        let count = r.u64()?;
        const ENTRY: usize = 4 + 4 + 8 + 8 + 8;
        let count = usize::try_from(count).ok()?;
        if count.checked_mul(ENTRY)? != r.remaining() {
            return None;
        }
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            let file = r.u32()?;
            if file as usize >= files {
                return None;
            }
            segments.push(SegmentMeta {
                file,
                vessel: r.u32()?,
                t_min: Timestamp(r.u64()? as i64),
                t_max: Timestamp(r.u64()? as i64),
                fixes: r.u64()?,
            });
        }
        Some(Self { wal_gen, sealed_to, watermark, file_lens, segments })
    }

    /// Atomically replace the manifest in `dir`: write `MANIFEST.tmp`,
    /// fsync it, rename over `MANIFEST`. After this returns, a crash
    /// at any point leaves a complete manifest on disk.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        let bytes = self.encode();
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(FILE_NAME))?;
        Ok(())
    }

    /// Read the manifest from `dir`. `Ok(None)` when no manifest
    /// exists (a fresh data dir); an unparseable manifest is an error
    /// — with atomic replacement it cannot be a torn write, so it is
    /// real corruption the caller must not silently ignore.
    pub fn read(dir: &Path) -> io::Result<Option<Self>> {
        let mut bytes = Vec::new();
        match std::fs::File::open(dir.join(FILE_NAME)) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        Self::decode(&bytes).map(Some).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "corrupt MANIFEST (bad magic or checksum)")
        })
    }

    /// Serialized size in bytes (what the manifest costs on disk).
    pub fn encoded_len(&self) -> u64 {
        self.encode().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            wal_gen: 7,
            sealed_to: Timestamp(120_000),
            watermark: Timestamp(150_000),
            file_lens: vec![100, 0, 3_000, 42],
            segments: vec![
                SegmentMeta {
                    file: 0,
                    vessel: 12,
                    t_min: Timestamp(0),
                    t_max: Timestamp(60_000),
                    fixes: 40,
                },
                SegmentMeta {
                    file: 2,
                    vessel: 9,
                    t_min: Timestamp(-5),
                    t_max: Timestamp(120_000),
                    fixes: 1,
                },
            ],
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mda-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp_dir("rt");
        assert_eq!(Manifest::read(&dir).unwrap(), None);
        let m = sample();
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), Some(m.clone()));
        // Replacement is total, not incremental.
        let m2 = Manifest { wal_gen: 8, segments: Vec::new(), ..m };
        m2.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), Some(m2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let dir = tmp_dir("bad");
        sample().write(&dir).unwrap();
        let full = std::fs::read(dir.join(FILE_NAME)).unwrap();
        for cut in 0..full.len() {
            std::fs::write(dir.join(FILE_NAME), &full[..cut]).unwrap();
            assert!(Manifest::read(&dir).is_err(), "truncated manifest accepted at {cut}");
        }
        for byte in 0..full.len() {
            let mut bad = full.clone();
            bad[byte] ^= 0x10;
            std::fs::write(dir.join(FILE_NAME), &bad).unwrap();
            match Manifest::read(&dir) {
                Err(_) => {}
                // A flipped bit inside the payload cannot survive the
                // CRC; only magic-version bytes could alias (they
                // don't, but never panicking is the contract).
                Ok(m) => assert!(m.is_some()),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
