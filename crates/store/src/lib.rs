//! Archival trajectory management and querying (paper §2.3).
//!
//! The paper contrasts "a posteriori analysis" systems (long processing
//! times) with "on the fly" processing (approximate answers) and asks
//! for both behind one store. This crate provides:
//!
//! - [`trajstore`] — the per-vessel trajectory archive: append-mostly
//!   columnar fix storage, time-range queries, interpolated positions,
//!   synopsis-driven compaction.
//! - [`stindex`] — a spatio-temporal (lat × lon × time) grid index for
//!   window queries over the archive, validated against full scans.
//! - [`knn`] — k-nearest-neighbour queries over *moving* objects
//!   (ref 45): snapshot kNN at any time with dead-reckoned current
//!   positions, grid-pruned ring search vs. a brute-force baseline.
//! - [`shards`] — the concurrent front: a lock-striped,
//!   vessel-hash-sharded store where each shard owns its vessels'
//!   trajectories plus incrementally-maintained grid/kNN indexes, with
//!   batch ingest ([`ShardedTrajectoryStore::append_batch`]) and
//!   cross-shard query merging.
//! - [`segment`] / [`tier`] — the cold tier: immutable, sealed,
//!   delta-encoded columnar [`TrajectorySegment`]s with time/bbox
//!   fences, optionally pre-compressed to a bounded-error synopsis.
//!   [`ShardedTrajectoryStore::seal_before`] rotates old fixes out of
//!   the hot shards; every read path merges hot + cold
//!   deterministically.
//! - [`durable`] / [`wal`] / [`manifest`] — the durable cold tier:
//!   per-shard segment files of checksummed records, an append-only
//!   write-ahead log for the hot tier (rotated at each seal), and an
//!   atomically-replaced manifest tying both together.
//!   [`DurableStore::recover`] replays all three back to the exact
//!   pre-crash published watermark, truncating torn tails instead of
//!   panicking.
//! - [`snapshot`] — immutable, versioned [`StoreSnapshot`] handles:
//!   point-in-time views over both tiers that serve lock-free
//!   concurrent reads while ingest keeps writing; unchanged shards and
//!   all sealed segments are shared, not copied.
//! - [`shared`] — the pipeline-facing handle name
//!   ([`SharedTrajectoryStore`], now an alias of the sharded store).
//!
//! ## Sharding model
//!
//! A vessel's fixes always live in exactly one shard (`shard_of(id)`),
//! so per-vessel ordering is a single-shard property: appends are
//! observed in append order, out-of-order event times are
//! sort-inserted. Writers for different shards never contend, and
//! cross-shard reads merge deterministically — equal contents give
//! equal answers for any shard or thread count.
//!
//! ## Tiering model
//!
//! Sealing is shard-affine and slab-aligned: `seal_before(watermark)`
//! moves each vessel's fixes older than the (slab-aligned) watermark
//! into per-vessel, `max_span`-bounded segments. With the default
//! lossless seal configuration every query answers bit-identically to
//! a never-sealed store; lossy configurations store each slab's
//! threshold synopsis and record the combined error bound on the
//! segment. See [`shards`] for the cross-tier ordering guarantees.
//!
//! ## Example
//!
//! ```
//! use mda_geo::{Fix, Position, Timestamp};
//! use mda_store::SharedTrajectoryStore;
//!
//! let store = SharedTrajectoryStore::new();
//! for i in 0..10i64 {
//!     let t = Timestamp::from_secs(i * 60);
//!     store.append(Fix::new(1, t, Position::new(43.0, 5.0 + 0.001 * i as f64), 10.0, 90.0));
//! }
//! assert_eq!(store.len(), 10);
//! // Positions between fixes are interpolated.
//! assert!(store.position_at(1, Timestamp::from_secs(90)).is_some());
//! ```

mod bytes;
pub mod durable;
mod frame;
pub mod knn;
pub mod manifest;
pub mod segment;
pub mod shards;
pub mod shared;
pub mod snapshot;
pub mod stindex;
pub mod tier;
pub mod trajstore;
pub mod wal;

pub use durable::{DurabilityConfig, DurableStore, RecoveryReport};
pub use knn::{merge_candidates, KnnEngine, KnnResult};
pub use manifest::{Manifest, SegmentMeta};
pub use segment::{CodecError, SegmentConfig, TrajectorySegment};
pub use shards::{
    KnnConfig, SealOutcome, ShardedTrajectoryStore, StIndexConfig, StoreConfig, StoreLane,
};
pub use shared::SharedTrajectoryStore;
pub use snapshot::{ShardSnapshot, StoreSnapshot};
pub use stindex::StGrid;
pub use tier::{ColdTier, FenceError, TierStats};
pub use trajstore::TrajectoryStore;
