//! Archival trajectory management and querying (paper §2.3).
//!
//! The paper contrasts "a posteriori analysis" systems (long processing
//! times) with "on the fly" processing (approximate answers) and asks
//! for both behind one store. This crate provides:
//!
//! - [`trajstore`] — the per-vessel trajectory archive: append-mostly
//!   columnar fix storage, time-range queries, interpolated positions,
//!   synopsis-driven compaction.
//! - [`stindex`] — a spatio-temporal (lat × lon × time) grid index for
//!   window queries over the archive, validated against full scans.
//! - [`knn`] — k-nearest-neighbour queries over *moving* objects
//!   (ref 45): snapshot kNN at any time with dead-reckoned current
//!   positions, grid-pruned ring search vs. a brute-force baseline.
//! - [`shared`] — a thread-safe wrapper used by the live pipeline.
//!
//! ## Example
//!
//! ```
//! use mda_geo::{Fix, Position, Timestamp};
//! use mda_store::SharedTrajectoryStore;
//!
//! let store = SharedTrajectoryStore::new();
//! for i in 0..10i64 {
//!     let t = Timestamp::from_secs(i * 60);
//!     store.append(Fix::new(1, t, Position::new(43.0, 5.0 + 0.001 * i as f64), 10.0, 90.0));
//! }
//! assert_eq!(store.len(), 10);
//! // Positions between fixes are interpolated.
//! assert!(store.position_at(1, Timestamp::from_secs(90)).is_some());
//! ```

pub mod knn;
pub mod shared;
pub mod stindex;
pub mod trajstore;

pub use knn::{KnnEngine, KnnResult};
pub use shared::SharedTrajectoryStore;
pub use stindex::StGrid;
pub use trajstore::TrajectoryStore;
