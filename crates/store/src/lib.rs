//! Archival trajectory management and querying (paper §2.3).
//!
//! The paper contrasts "a posteriori analysis" systems (long processing
//! times) with "on the fly" processing (approximate answers) and asks
//! for both behind one store. This crate provides:
//!
//! - [`trajstore`] — the per-vessel trajectory archive: append-mostly
//!   columnar fix storage, time-range queries, interpolated positions,
//!   synopsis-driven compaction.
//! - [`stindex`] — a spatio-temporal (lat × lon × time) grid index for
//!   window queries over the archive, validated against full scans.
//! - [`knn`] — k-nearest-neighbour queries over *moving* objects
//!   (ref 45): snapshot kNN at any time with dead-reckoned current
//!   positions, grid-pruned ring search vs. a brute-force baseline.
//! - [`shards`] — the concurrent front: a lock-striped,
//!   vessel-hash-sharded store where each shard owns its vessels'
//!   trajectories plus incrementally-maintained grid/kNN indexes, with
//!   batch ingest ([`ShardedTrajectoryStore::append_batch`]) and
//!   cross-shard query merging.
//! - [`shared`] — the pipeline-facing handle name
//!   ([`SharedTrajectoryStore`], now an alias of the sharded store).
//!
//! ## Sharding model
//!
//! A vessel's fixes always live in exactly one shard (`shard_of(id)`),
//! so per-vessel ordering is a single-shard property: appends are
//! observed in append order, out-of-order event times are
//! sort-inserted. Writers for different shards never contend, and
//! cross-shard reads merge deterministically — equal contents give
//! equal answers for any shard or thread count.
//!
//! ## Example
//!
//! ```
//! use mda_geo::{Fix, Position, Timestamp};
//! use mda_store::SharedTrajectoryStore;
//!
//! let store = SharedTrajectoryStore::new();
//! for i in 0..10i64 {
//!     let t = Timestamp::from_secs(i * 60);
//!     store.append(Fix::new(1, t, Position::new(43.0, 5.0 + 0.001 * i as f64), 10.0, 90.0));
//! }
//! assert_eq!(store.len(), 10);
//! // Positions between fixes are interpolated.
//! assert!(store.position_at(1, Timestamp::from_secs(90)).is_some());
//! ```

pub mod knn;
pub mod shards;
pub mod shared;
pub mod stindex;
pub mod trajstore;

pub use knn::{merge_candidates, KnnEngine, KnnResult};
pub use shards::{KnnConfig, ShardedTrajectoryStore, StIndexConfig, StoreConfig};
pub use shared::SharedTrajectoryStore;
pub use stindex::StGrid;
pub use trajstore::TrajectoryStore;
