//! The per-vessel trajectory archive.

use mda_geo::motion::interpolate_fixes;
use mda_geo::{Fix, Position, Timestamp, VesselId};
use std::collections::BTreeMap;

/// Append-mostly archive of trajectories, one time-sorted fix vector per
/// vessel.
#[derive(Debug, Default, Clone)]
pub struct TrajectoryStore {
    by_vessel: BTreeMap<VesselId, Vec<Fix>>,
    len: usize,
}

impl TrajectoryStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a fix. Appending in time order is O(1); out-of-order
    /// fixes are inserted at their sorted position (O(n) worst case —
    /// the ingest pipeline reorders upstream, so this is the rare
    /// path).
    pub fn append(&mut self, fix: Fix) {
        let v = self.by_vessel.entry(fix.id).or_default();
        match v.last() {
            Some(last) if last.t > fix.t => {
                let pos = v.partition_point(|f| f.t <= fix.t);
                v.insert(pos, fix);
            }
            _ => v.push(fix),
        }
        self.len += 1;
    }

    /// Append a batch of fixes, amortising the per-vessel lookup across
    /// each vessel's fixes in the batch. Per-vessel input order is
    /// preserved; order between vessels is irrelevant to this store.
    /// Returns the number of fixes appended.
    ///
    /// Equivalent to appending each fix in batch order, but each
    /// vessel's slice is pre-sorted (stably, so equal timestamps keep
    /// arrival order) and spliced with one linear merge — a fully
    /// out-of-order batch costs O(n log n) instead of the per-fix
    /// path's O(n) insert each.
    pub fn append_batch(&mut self, fixes: impl IntoIterator<Item = Fix>) -> usize {
        // Stable-sort the batch by vessel: fixes of one vessel become a
        // contiguous run in their original relative order, so each run
        // costs one map lookup + one bulk merge instead of a lookup
        // per fix.
        let mut batch: Vec<Fix> = fixes.into_iter().collect();
        batch.sort_by_key(|f| f.id);
        let n = batch.len();
        let mut lo = 0;
        while lo < batch.len() {
            let id = batch[lo].id;
            let hi = lo + batch[lo..].partition_point(|f| f.id == id);
            let run = &mut batch[lo..hi];
            lo = hi;
            // Stable by time: equal timestamps stay in arrival order,
            // matching what sequential `append` would have produced.
            run.sort_by_key(|f| f.t);
            let v = self.by_vessel.entry(id).or_default();
            match v.last() {
                // Slow path: the run starts behind the stored tail.
                // Existing fixes with equal timestamps sort before
                // batch fixes (they arrived earlier), so split after
                // them and merge the tails.
                Some(last) if last.t > run[0].t => {
                    let split = v.partition_point(|f| f.t <= run[0].t);
                    let tail = v.split_off(split);
                    v.reserve(tail.len() + run.len());
                    let (mut ti, mut ri) = (0, 0);
                    while ti < tail.len() && ri < run.len() {
                        if tail[ti].t <= run[ri].t {
                            v.push(tail[ti]);
                            ti += 1;
                        } else {
                            v.push(run[ri]);
                            ri += 1;
                        }
                    }
                    v.extend_from_slice(&tail[ti..]);
                    v.extend_from_slice(&run[ri..]);
                }
                // Fast path: the run extends the trajectory wholesale.
                _ => v.extend_from_slice(run),
            }
        }
        self.len += n;
        n
    }

    /// Total stored fixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct vessels.
    pub fn vessel_count(&self) -> usize {
        self.by_vessel.len()
    }

    /// All vessel ids.
    pub fn vessels(&self) -> impl Iterator<Item = VesselId> + '_ {
        self.by_vessel.keys().copied()
    }

    /// Full trajectory of one vessel.
    pub fn trajectory(&self, id: VesselId) -> Option<&[Fix]> {
        self.by_vessel.get(&id).map(Vec::as_slice)
    }

    /// Fixes of one vessel in `[from, to]`.
    pub fn range(&self, id: VesselId, from: Timestamp, to: Timestamp) -> &[Fix] {
        let Some(v) = self.by_vessel.get(&id) else { return &[] };
        let lo = v.partition_point(|f| f.t < from);
        let hi = v.partition_point(|f| f.t <= to);
        &v[lo..hi]
    }

    /// The latest fix of a vessel at or before `t`.
    pub fn latest_at(&self, id: VesselId, t: Timestamp) -> Option<&Fix> {
        let v = self.by_vessel.get(&id)?;
        let idx = v.partition_point(|f| f.t <= t);
        idx.checked_sub(1).map(|i| &v[i])
    }

    /// The earliest fix of a vessel strictly after `t`.
    pub fn first_after(&self, id: VesselId, t: Timestamp) -> Option<&Fix> {
        let v = self.by_vessel.get(&id)?;
        v.get(v.partition_point(|f| f.t <= t))
    }

    /// Drain every fix older than `cut` (strictly) out of the store,
    /// grouped per vessel in time order. Vessels left empty are
    /// removed. This is the hot→cold rotation primitive behind
    /// [`seal_before`](crate::shards::ShardedTrajectoryStore::seal_before).
    pub fn take_before(&mut self, cut: Timestamp) -> Vec<(VesselId, Vec<Fix>)> {
        let mut out = Vec::new();
        let mut emptied = Vec::new();
        for (&id, v) in self.by_vessel.iter_mut() {
            let n = v.partition_point(|f| f.t < cut);
            if n == 0 {
                continue;
            }
            let moved: Vec<Fix> = v.drain(..n).collect();
            self.len -= moved.len();
            if v.is_empty() {
                emptied.push(id);
            }
            out.push((id, moved));
        }
        for id in emptied {
            self.by_vessel.remove(&id);
        }
        out
    }

    /// Interpolated position of a vessel at `t` (between the bracketing
    /// fixes; clamped at the trajectory ends). `None` if the vessel is
    /// unknown or `t` precedes its first fix by more than `max_extrap`.
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Option<Position> {
        let v = self.by_vessel.get(&id)?;
        if v.is_empty() {
            return None;
        }
        let idx = v.partition_point(|f| f.t <= t);
        if idx == 0 {
            return Some(v[0].pos);
        }
        if idx == v.len() {
            return Some(v[v.len() - 1].pos);
        }
        Some(interpolate_fixes(&v[idx - 1], &v[idx], t))
    }

    /// Replace a vessel's trajectory with a compacted version (e.g. its
    /// synopsis). Returns the number of fixes removed.
    pub fn compact(&mut self, id: VesselId, keep: impl Fn(&[Fix]) -> Vec<Fix>) -> usize {
        let Some(v) = self.by_vessel.get_mut(&id) else { return 0 };
        let before = v.len();
        let kept = keep(v);
        debug_assert!(kept.windows(2).all(|w| w[0].t <= w[1].t), "compaction must stay sorted");
        let removed = before.saturating_sub(kept.len());
        self.len = self.len - before + kept.len();
        *v = kept;
        removed
    }

    /// Iterate over all fixes of all vessels.
    pub fn iter(&self) -> impl Iterator<Item = &Fix> {
        self.by_vessel.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::Position;

    fn fix(id: u32, t_min: i64, lon: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(43.0, lon), 10.0, 90.0)
    }

    #[test]
    fn append_and_query_in_order() {
        let mut s = TrajectoryStore::new();
        for i in 0..10 {
            s.append(fix(1, i, 5.0 + i as f64 * 0.01));
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.vessel_count(), 1);
        let r = s.range(1, Timestamp::from_mins(3), Timestamp::from_mins(6));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].t, Timestamp::from_mins(3));
    }

    #[test]
    fn out_of_order_append_sorts() {
        let mut s = TrajectoryStore::new();
        s.append(fix(1, 5, 5.05));
        s.append(fix(1, 1, 5.01));
        s.append(fix(1, 3, 5.03));
        let traj = s.trajectory(1).unwrap();
        let times: Vec<i64> = traj.iter().map(|f| f.t.millis()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn latest_at_and_position_at() {
        let mut s = TrajectoryStore::new();
        for i in 0..10 {
            s.append(fix(1, i * 10, 5.0 + i as f64 * 0.1));
        }
        let latest = s.latest_at(1, Timestamp::from_mins(35)).unwrap();
        assert_eq!(latest.t, Timestamp::from_mins(30));
        assert!(s.latest_at(1, Timestamp::from_mins(-1)).is_none());
        // Interpolation halfway between minutes 30 and 40.
        let p = s.position_at(1, Timestamp::from_mins(35)).unwrap();
        assert!((p.lon - 5.35).abs() < 1e-9, "lon {}", p.lon);
        // Clamping.
        assert_eq!(s.position_at(1, Timestamp::from_mins(-5)).unwrap().lon, 5.0);
        assert_eq!(s.position_at(1, Timestamp::from_mins(500)).unwrap().lon, 5.9);
        assert!(s.position_at(99, Timestamp::from_mins(0)).is_none());
    }

    #[test]
    fn range_outside_data_is_empty() {
        let mut s = TrajectoryStore::new();
        s.append(fix(1, 10, 5.0));
        assert!(s.range(1, Timestamp::from_mins(20), Timestamp::from_mins(30)).is_empty());
        assert!(s.range(2, Timestamp::from_mins(0), Timestamp::from_mins(30)).is_empty());
    }

    #[test]
    fn compaction_updates_counts() {
        let mut s = TrajectoryStore::new();
        for i in 0..100 {
            s.append(fix(1, i, 5.0 + i as f64 * 0.001));
        }
        for i in 0..50 {
            s.append(fix(2, i, 6.0));
        }
        // Keep every 10th fix of vessel 1.
        let removed = s.compact(1, |fixes| fixes.iter().step_by(10).copied().collect());
        assert_eq!(removed, 90);
        assert_eq!(s.len(), 60);
        assert_eq!(s.trajectory(1).unwrap().len(), 10);
        assert_eq!(s.trajectory(2).unwrap().len(), 50);
        assert_eq!(s.compact(3, |f| f.to_vec()), 0);
    }

    #[test]
    fn append_batch_equals_sequential_appends() {
        let mut a = TrajectoryStore::new();
        let mut b = TrajectoryStore::new();
        // Interleaved vessels with one out-of-order straggler.
        let mut fixes = Vec::new();
        for i in 0..60 {
            fixes.push(fix((i % 3) as u32 + 1, i, 5.0 + i as f64 * 0.001));
        }
        fixes.push(fix(2, 5, 5.5)); // late fix, sort-inserted
        for f in &fixes {
            a.append(*f);
        }
        assert_eq!(b.append_batch(fixes), 61);
        assert_eq!(a.len(), b.len());
        for id in 1..=3u32 {
            assert_eq!(a.trajectory(id), b.trajectory(id), "vessel {id}");
        }
    }

    #[test]
    fn fully_out_of_order_batch_matches_sequential_appends() {
        let mut a = TrajectoryStore::new();
        let mut b = TrajectoryStore::new();
        // Reverse time order with duplicate timestamps sprinkled in.
        let mut fixes = Vec::new();
        for i in (0..80).rev() {
            fixes.push(fix((i % 4) as u32 + 1, i / 2, 5.0 + i as f64 * 0.001));
        }
        for f in &fixes {
            a.append(*f);
        }
        assert_eq!(b.append_batch(fixes), 80);
        for id in 1..=4u32 {
            assert_eq!(a.trajectory(id), b.trajectory(id), "vessel {id}");
        }
    }

    #[test]
    fn take_before_splits_and_drops_empty_vessels() {
        let mut s = TrajectoryStore::new();
        for i in 0..10 {
            s.append(fix(1, i, 5.0));
        }
        for i in 0..3 {
            s.append(fix(2, i, 6.0));
        }
        let taken = s.take_before(Timestamp::from_mins(5));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].0, 1);
        assert_eq!(taken[0].1.len(), 5);
        assert_eq!(taken[1].1.len(), 3, "vessel 2 is fully drained");
        assert_eq!(s.len(), 5);
        assert_eq!(s.vessels().collect::<Vec<_>>(), vec![1]);
        assert!(s.take_before(Timestamp::from_mins(0)).is_empty());
    }

    #[test]
    fn first_after_is_strict() {
        let mut s = TrajectoryStore::new();
        for i in 0..5 {
            s.append(fix(1, i * 10, 5.0));
        }
        assert_eq!(s.first_after(1, Timestamp::from_mins(10)).unwrap().t.millis(), 20 * 60_000);
        assert_eq!(s.first_after(1, Timestamp::from_mins(-1)).unwrap().t.millis(), 0);
        assert!(s.first_after(1, Timestamp::from_mins(40)).is_none());
        assert!(s.first_after(9, Timestamp::from_mins(0)).is_none());
    }

    #[test]
    fn iter_spans_vessels() {
        let mut s = TrajectoryStore::new();
        s.append(fix(1, 0, 5.0));
        s.append(fix(2, 0, 6.0));
        s.append(fix(1, 1, 5.1));
        assert_eq!(s.iter().count(), 3);
    }
}
