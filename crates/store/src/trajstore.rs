//! The per-vessel trajectory archive, stored struct-of-arrays.
//!
//! Each vessel's history is a [`Track`]: five parallel, time-sorted
//! columns (`t`, `lat`, `lon`, `sog`, `cog`) instead of one
//! `Vec<Fix>`. Read paths that touch one or two fields — time-range
//! binary searches, spatial window filters, seal encoding — become
//! branch-light linear passes over dense `f64`/`i64` slices the
//! compiler can vectorize, and sealing encodes straight from the
//! columns without an array-of-structs transpose. Borrowed reads hand
//! out a [`TrackView`] (column slices); owned reads materialize
//! [`Fix`]es only at the boundary.

use mda_geo::motion::interpolate_fixes;
use mda_geo::{BoundingBox, Fix, Position, Timestamp, VesselId};
use std::collections::BTreeMap;

/// One vessel's time-sorted history as five parallel columns.
///
/// Invariant: all columns have equal length and `t` is non-decreasing.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Track {
    t: Vec<Timestamp>,
    lat: Vec<f64>,
    lon: Vec<f64>,
    sog: Vec<f64>,
    cog: Vec<f64>,
}

impl Track {
    /// Build a track from time-sorted fixes.
    pub fn from_fixes(fixes: &[Fix]) -> Self {
        debug_assert!(fixes.windows(2).all(|w| w[0].t <= w[1].t), "track must be time-sorted");
        let mut tr = Self::with_capacity(fixes.len());
        for f in fixes {
            tr.push(f);
        }
        tr
    }

    fn with_capacity(n: usize) -> Self {
        Self {
            t: Vec::with_capacity(n),
            lat: Vec::with_capacity(n),
            lon: Vec::with_capacity(n),
            sog: Vec::with_capacity(n),
            cog: Vec::with_capacity(n),
        }
    }

    /// Number of stored fixes.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True when no fix is stored.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Borrow the columns as a [`TrackView`] for vessel `id`.
    pub fn view(&self, id: VesselId) -> TrackView<'_> {
        TrackView { id, t: &self.t, lat: &self.lat, lon: &self.lon, sog: &self.sog, cog: &self.cog }
    }

    fn push(&mut self, f: &Fix) {
        self.t.push(f.t);
        self.lat.push(f.pos.lat);
        self.lon.push(f.pos.lon);
        self.sog.push(f.sog_kn);
        self.cog.push(f.cog_deg);
    }

    fn insert(&mut self, i: usize, f: &Fix) {
        self.t.insert(i, f.t);
        self.lat.insert(i, f.pos.lat);
        self.lon.insert(i, f.pos.lon);
        self.sog.insert(i, f.sog_kn);
        self.cog.insert(i, f.cog_deg);
    }

    fn push_row_of(&mut self, other: &Track, i: usize) {
        self.t.push(other.t[i]);
        self.lat.push(other.lat[i]);
        self.lon.push(other.lon[i]);
        self.sog.push(other.sog[i]);
        self.cog.push(other.cog[i]);
    }

    /// Bulk-append a time-ordered slice of fixes, one columnar pass per
    /// field: a single reserve and a tight copy loop per column, instead
    /// of five capacity-checked pushes per fix.
    fn extend_fixes(&mut self, fixes: &[Fix]) {
        self.t.extend(fixes.iter().map(|f| f.t));
        self.lat.extend(fixes.iter().map(|f| f.pos.lat));
        self.lon.extend(fixes.iter().map(|f| f.pos.lon));
        self.sog.extend(fixes.iter().map(|f| f.sog_kn));
        self.cog.extend(fixes.iter().map(|f| f.cog_deg));
    }

    fn extend_rows(&mut self, other: &Track, from: usize) {
        self.t.extend_from_slice(&other.t[from..]);
        self.lat.extend_from_slice(&other.lat[from..]);
        self.lon.extend_from_slice(&other.lon[from..]);
        self.sog.extend_from_slice(&other.sog[from..]);
        self.cog.extend_from_slice(&other.cog[from..]);
    }

    /// Split off and return rows `at..`, like `Vec::split_off`.
    fn split_off(&mut self, at: usize) -> Track {
        Track {
            t: self.t.split_off(at),
            lat: self.lat.split_off(at),
            lon: self.lon.split_off(at),
            sog: self.sog.split_off(at),
            cog: self.cog.split_off(at),
        }
    }

    /// Remove and return the first `n` rows in order.
    fn drain_front(&mut self, n: usize) -> Track {
        let rest = self.split_off(n);
        std::mem::replace(self, rest)
    }
}

/// A borrowed, time-sorted columnar slice of one vessel's fixes.
///
/// The columnar twin of `&[Fix]`: cheap to sub-slice, iterate, and
/// scan per field. Equality compares the vessel id and the column
/// contents (bit-wise for the float columns via `==` on `f64`, which
/// matches the store's no-NaN data discipline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackView<'a> {
    /// The vessel these columns belong to.
    pub id: VesselId,
    /// Event times, non-decreasing.
    pub t: &'a [Timestamp],
    /// Latitudes, degrees.
    pub lat: &'a [f64],
    /// Longitudes, degrees.
    pub lon: &'a [f64],
    /// Speeds over ground, knots.
    pub sog: &'a [f64],
    /// Courses over ground, degrees.
    pub cog: &'a [f64],
}

impl<'a> TrackView<'a> {
    /// An empty view for vessel `id`.
    pub fn empty(id: VesselId) -> Self {
        Self { id, t: &[], lat: &[], lon: &[], sog: &[], cog: &[] }
    }

    /// Number of fixes in the view.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True when the view spans no fixes.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Materialize the fix at index `i`.
    pub fn get(&self, i: usize) -> Fix {
        Fix::new(
            self.id,
            self.t[i],
            Position::new(self.lat[i], self.lon[i]),
            self.sog[i],
            self.cog[i],
        )
    }

    /// The first fix, if any.
    pub fn first(&self) -> Option<Fix> {
        if self.is_empty() {
            None
        } else {
            Some(self.get(0))
        }
    }

    /// The last fix, if any.
    pub fn last(&self) -> Option<Fix> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// Sub-view of rows `lo..hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> TrackView<'a> {
        TrackView {
            id: self.id,
            t: &self.t[lo..hi],
            lat: &self.lat[lo..hi],
            lon: &self.lon[lo..hi],
            sog: &self.sog[lo..hi],
            cog: &self.cog[lo..hi],
        }
    }

    /// Iterate the fixes in time order (materialized on the fly).
    pub fn iter(&self) -> impl Iterator<Item = Fix> + 'a {
        let v = *self;
        (0..v.len()).map(move |i| v.get(i))
    }

    /// Materialize the whole view.
    pub fn to_vec(&self) -> Vec<Fix> {
        self.iter().collect()
    }
}

/// Append-mostly archive of trajectories, one columnar [`Track`] per
/// vessel.
#[derive(Debug, Default, Clone)]
pub struct TrajectoryStore {
    by_vessel: BTreeMap<VesselId, Track>,
    len: usize,
    disordered: u64,
}

impl TrajectoryStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a fix. Appending in time order is O(1); an out-of-order
    /// fix is sort-inserted (an O(n) column memmove — the regression
    /// guard counter [`TrajectoryStore::disordered_merges`] tracks this
    /// path; pipelines batch through [`TrajectoryStore::append_batch`]
    /// so a disordered trickle cannot go quadratic).
    pub fn append(&mut self, fix: Fix) {
        let v = self.by_vessel.entry(fix.id).or_default();
        match v.t.last() {
            Some(&last) if last > fix.t => {
                let pos = v.t.partition_point(|&t| t <= fix.t);
                v.insert(pos, &fix);
                self.disordered += 1;
            }
            _ => v.push(&fix),
        }
        self.len += 1;
    }

    /// Append a batch of fixes, amortising the per-vessel lookup across
    /// each vessel's fixes in the batch. Per-vessel input order is
    /// preserved; order between vessels is irrelevant to this store.
    /// Returns the number of fixes appended.
    ///
    /// Equivalent to appending each fix in batch order, but each
    /// vessel's slice is pre-sorted (stably, so equal timestamps keep
    /// arrival order) and spliced with one linear merge — a fully
    /// out-of-order batch costs O(n log n) instead of the per-fix
    /// path's O(n) insert each.
    pub fn append_batch(&mut self, fixes: impl IntoIterator<Item = Fix>) -> usize {
        // Group the batch by vessel without moving whole fixes: sort
        // lightweight `(id, position)` pairs. Including the position
        // makes the allocation-free unstable sort equivalent to a
        // stable sort by id — each vessel's run keeps arrival order —
        // while the sort shuffles 8-byte keys instead of 48-byte fixes.
        // (`u32` positions are safe: a batch of 2^32 fixes cannot fit
        // in memory.)
        let batch: Vec<Fix> = fixes.into_iter().collect();
        let n = batch.len();
        let mut idx: Vec<(VesselId, u32)> = Vec::with_capacity(n);
        idx.extend(batch.iter().enumerate().map(|(i, f)| (f.id, i as u32)));
        idx.sort_unstable();
        let mut run: Vec<Fix> = Vec::new();
        let mut lo = 0;
        while lo < idx.len() {
            let id = idx[lo].0;
            let hi = lo + idx[lo..].partition_point(|p| p.0 == id);
            run.clear();
            run.extend(idx[lo..hi].iter().map(|&(_, p)| batch[p as usize]));
            lo = hi;
            // Stable by time: equal timestamps stay in arrival order,
            // matching what sequential `append` would have produced.
            run.sort_by_key(|f| f.t);
            let v = self.by_vessel.entry(id).or_default();
            match v.t.last() {
                // Slow path: the run starts behind the stored tail.
                // Existing fixes with equal timestamps sort before
                // batch fixes (they arrived earlier), so split after
                // them and merge the tails.
                Some(&last) if last > run[0].t => {
                    self.disordered += 1;
                    let split = v.t.partition_point(|&t| t <= run[0].t);
                    let tail = v.split_off(split);
                    let (mut ti, mut ri) = (0, 0);
                    while ti < tail.len() && ri < run.len() {
                        if tail.t[ti] <= run[ri].t {
                            v.push_row_of(&tail, ti);
                            ti += 1;
                        } else {
                            v.push(&run[ri]);
                            ri += 1;
                        }
                    }
                    v.extend_rows(&tail, ti);
                    v.extend_fixes(&run[ri..]);
                }
                // Fast path: the run extends the trajectory wholesale.
                _ => v.extend_fixes(&run),
            }
        }
        self.len += n;
        n
    }

    /// Total stored fixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct vessels.
    pub fn vessel_count(&self) -> usize {
        self.by_vessel.len()
    }

    /// How many appends took the out-of-order merge path (single-fix
    /// sort-inserts and behind-the-tail batch splices). The ingest
    /// pipelines reorder upstream and batch their appends, so this
    /// staying near zero is the "no quadratic disordered trickle"
    /// regression guard.
    pub fn disordered_merges(&self) -> u64 {
        self.disordered
    }

    /// All vessel ids.
    pub fn vessels(&self) -> impl Iterator<Item = VesselId> + '_ {
        self.by_vessel.keys().copied()
    }

    /// Full trajectory of one vessel as a borrowed columnar view.
    pub fn trajectory(&self, id: VesselId) -> Option<TrackView<'_>> {
        self.by_vessel.get(&id).map(|tr| tr.view(id))
    }

    /// Fixes of one vessel in `[from, to]` (an empty view for unknown
    /// vessels — the columns are contiguous, so a range is two binary
    /// searches plus a sub-slice).
    pub fn range(&self, id: VesselId, from: Timestamp, to: Timestamp) -> TrackView<'_> {
        let Some(tr) = self.by_vessel.get(&id) else { return TrackView::empty(id) };
        let lo = tr.t.partition_point(|&t| t < from);
        let hi = tr.t.partition_point(|&t| t <= to);
        tr.view(id).slice(lo, hi)
    }

    /// The latest fix of a vessel at or before `t`.
    pub fn latest_at(&self, id: VesselId, t: Timestamp) -> Option<Fix> {
        let tr = self.by_vessel.get(&id)?;
        let idx = tr.t.partition_point(|&x| x <= t);
        idx.checked_sub(1).map(|i| tr.view(id).get(i))
    }

    /// The earliest fix of a vessel strictly after `t`.
    pub fn first_after(&self, id: VesselId, t: Timestamp) -> Option<Fix> {
        let tr = self.by_vessel.get(&id)?;
        let i = tr.t.partition_point(|&x| x <= t);
        (i < tr.len()).then(|| tr.view(id).get(i))
    }

    /// Drain every fix older than `cut` (strictly) out of the store,
    /// grouped per vessel in time order. Vessels left empty are
    /// removed. This is the hot→cold rotation primitive behind
    /// [`seal_before`](crate::shards::ShardedTrajectoryStore::seal_before);
    /// the drained columns feed segment sealing directly, with no
    /// row materialization in between.
    pub fn take_before(&mut self, cut: Timestamp) -> Vec<(VesselId, Track)> {
        let mut out = Vec::new();
        let mut emptied = Vec::new();
        for (&id, v) in self.by_vessel.iter_mut() {
            let n = v.t.partition_point(|&t| t < cut);
            if n == 0 {
                continue;
            }
            let moved = v.drain_front(n);
            self.len -= moved.len();
            if v.is_empty() {
                emptied.push(id);
            }
            out.push((id, moved));
        }
        for id in emptied {
            self.by_vessel.remove(&id);
        }
        out
    }

    /// Interpolated position of a vessel at `t` (between the bracketing
    /// fixes; clamped at the trajectory ends). `None` if the vessel is
    /// unknown.
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Option<Position> {
        let tr = self.by_vessel.get(&id)?;
        if tr.is_empty() {
            return None;
        }
        let idx = tr.t.partition_point(|&x| x <= t);
        if idx == 0 {
            return Some(Position::new(tr.lat[0], tr.lon[0]));
        }
        if idx == tr.len() {
            let i = tr.len() - 1;
            return Some(Position::new(tr.lat[i], tr.lon[i]));
        }
        let view = tr.view(id);
        Some(interpolate_fixes(&view.get(idx - 1), &view.get(idx), t))
    }

    /// Append every fix inside the spatio-temporal window to `out`, in
    /// (vessel, time) order: per vessel the time range is two binary
    /// searches on the contiguous `t` column, then one linear lat/lon
    /// pass materializing only the hits.
    pub fn window_into(
        &self,
        area: &BoundingBox,
        from: Timestamp,
        to: Timestamp,
        out: &mut Vec<Fix>,
    ) {
        for (&id, tr) in &self.by_vessel {
            let lo = tr.t.partition_point(|&t| t < from);
            let hi = tr.t.partition_point(|&t| t <= to);
            let view = tr.view(id);
            for i in lo..hi {
                let (lat, lon) = (tr.lat[i], tr.lon[i]);
                if lat >= area.min_lat
                    && lat <= area.max_lat
                    && lon >= area.min_lon
                    && lon <= area.max_lon
                {
                    out.push(view.get(i));
                }
            }
        }
    }

    /// Replace a vessel's trajectory with a compacted version (e.g. its
    /// synopsis). Returns the number of fixes removed.
    pub fn compact(&mut self, id: VesselId, keep: impl Fn(&[Fix]) -> Vec<Fix>) -> usize {
        let Some(v) = self.by_vessel.get_mut(&id) else { return 0 };
        let before = v.len();
        let kept = keep(&v.view(id).to_vec());
        debug_assert!(kept.windows(2).all(|w| w[0].t <= w[1].t), "compaction must stay sorted");
        let removed = before.saturating_sub(kept.len());
        self.len = self.len - before + kept.len();
        *v = Track::from_fixes(&kept);
        removed
    }

    /// Iterate over all fixes of all vessels (materialized on the fly,
    /// vessels in id order, time order within each).
    pub fn iter(&self) -> impl Iterator<Item = Fix> + '_ {
        self.by_vessel.iter().flat_map(|(&id, tr)| tr.view(id).iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::Position;

    fn fix(id: u32, t_min: i64, lon: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(43.0, lon), 10.0, 90.0)
    }

    #[test]
    fn append_and_query_in_order() {
        let mut s = TrajectoryStore::new();
        for i in 0..10 {
            s.append(fix(1, i, 5.0 + i as f64 * 0.01));
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.vessel_count(), 1);
        let r = s.range(1, Timestamp::from_mins(3), Timestamp::from_mins(6));
        assert_eq!(r.len(), 4);
        assert_eq!(r.t[0], Timestamp::from_mins(3));
        assert_eq!(s.disordered_merges(), 0);
    }

    #[test]
    fn out_of_order_append_sorts() {
        let mut s = TrajectoryStore::new();
        s.append(fix(1, 5, 5.05));
        s.append(fix(1, 1, 5.01));
        s.append(fix(1, 3, 5.03));
        let traj = s.trajectory(1).unwrap();
        let times: Vec<i64> = traj.t.iter().map(|t| t.millis()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(s.disordered_merges(), 2);
    }

    #[test]
    fn latest_at_and_position_at() {
        let mut s = TrajectoryStore::new();
        for i in 0..10 {
            s.append(fix(1, i * 10, 5.0 + i as f64 * 0.1));
        }
        let latest = s.latest_at(1, Timestamp::from_mins(35)).unwrap();
        assert_eq!(latest.t, Timestamp::from_mins(30));
        assert!(s.latest_at(1, Timestamp::from_mins(-1)).is_none());
        // Interpolation halfway between minutes 30 and 40.
        let p = s.position_at(1, Timestamp::from_mins(35)).unwrap();
        assert!((p.lon - 5.35).abs() < 1e-9, "lon {}", p.lon);
        // Clamping.
        assert_eq!(s.position_at(1, Timestamp::from_mins(-5)).unwrap().lon, 5.0);
        assert_eq!(s.position_at(1, Timestamp::from_mins(500)).unwrap().lon, 5.9);
        assert!(s.position_at(99, Timestamp::from_mins(0)).is_none());
    }

    #[test]
    fn range_outside_data_is_empty() {
        let mut s = TrajectoryStore::new();
        s.append(fix(1, 10, 5.0));
        assert!(s.range(1, Timestamp::from_mins(20), Timestamp::from_mins(30)).is_empty());
        assert!(s.range(2, Timestamp::from_mins(0), Timestamp::from_mins(30)).is_empty());
    }

    #[test]
    fn compaction_updates_counts() {
        let mut s = TrajectoryStore::new();
        for i in 0..100 {
            s.append(fix(1, i, 5.0 + i as f64 * 0.001));
        }
        for i in 0..50 {
            s.append(fix(2, i, 6.0));
        }
        // Keep every 10th fix of vessel 1.
        let removed = s.compact(1, |fixes| fixes.iter().step_by(10).copied().collect());
        assert_eq!(removed, 90);
        assert_eq!(s.len(), 60);
        assert_eq!(s.trajectory(1).unwrap().len(), 10);
        assert_eq!(s.trajectory(2).unwrap().len(), 50);
        assert_eq!(s.compact(3, |f| f.to_vec()), 0);
    }

    #[test]
    fn append_batch_equals_sequential_appends() {
        let mut a = TrajectoryStore::new();
        let mut b = TrajectoryStore::new();
        // Interleaved vessels with one out-of-order straggler.
        let mut fixes = Vec::new();
        for i in 0..60 {
            fixes.push(fix((i % 3) as u32 + 1, i, 5.0 + i as f64 * 0.001));
        }
        fixes.push(fix(2, 5, 5.5)); // late fix, sort-inserted
        for f in &fixes {
            a.append(*f);
        }
        assert_eq!(b.append_batch(fixes), 61);
        assert_eq!(a.len(), b.len());
        for id in 1..=3u32 {
            assert_eq!(a.trajectory(id), b.trajectory(id), "vessel {id}");
        }
    }

    #[test]
    fn fully_out_of_order_batch_matches_sequential_appends() {
        let mut a = TrajectoryStore::new();
        let mut b = TrajectoryStore::new();
        // Reverse time order with duplicate timestamps sprinkled in.
        let mut fixes = Vec::new();
        for i in (0..80).rev() {
            fixes.push(fix((i % 4) as u32 + 1, i / 2, 5.0 + i as f64 * 0.001));
        }
        for f in &fixes {
            a.append(*f);
        }
        assert_eq!(b.append_batch(fixes), 80);
        for id in 1..=4u32 {
            assert_eq!(a.trajectory(id), b.trajectory(id), "vessel {id}");
        }
    }

    #[test]
    fn take_before_splits_and_drops_empty_vessels() {
        let mut s = TrajectoryStore::new();
        for i in 0..10 {
            s.append(fix(1, i, 5.0));
        }
        for i in 0..3 {
            s.append(fix(2, i, 6.0));
        }
        let taken = s.take_before(Timestamp::from_mins(5));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].0, 1);
        assert_eq!(taken[0].1.len(), 5);
        assert_eq!(taken[1].1.len(), 3, "vessel 2 is fully drained");
        assert_eq!(s.len(), 5);
        assert_eq!(s.vessels().collect::<Vec<_>>(), vec![1]);
        assert!(s.take_before(Timestamp::from_mins(0)).is_empty());
    }

    #[test]
    fn first_after_is_strict() {
        let mut s = TrajectoryStore::new();
        for i in 0..5 {
            s.append(fix(1, i * 10, 5.0));
        }
        assert_eq!(s.first_after(1, Timestamp::from_mins(10)).unwrap().t.millis(), 20 * 60_000);
        assert_eq!(s.first_after(1, Timestamp::from_mins(-1)).unwrap().t.millis(), 0);
        assert!(s.first_after(1, Timestamp::from_mins(40)).is_none());
        assert!(s.first_after(9, Timestamp::from_mins(0)).is_none());
    }

    #[test]
    fn iter_spans_vessels() {
        let mut s = TrajectoryStore::new();
        s.append(fix(1, 0, 5.0));
        s.append(fix(2, 0, 6.0));
        s.append(fix(1, 1, 5.1));
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn window_into_matches_filtered_iter() {
        let mut s = TrajectoryStore::new();
        for v in 1..=4u32 {
            for i in 0..40 {
                s.append(Fix::new(
                    v,
                    Timestamp::from_mins(i),
                    Position::new(42.0 + f64::from(v) * 0.3, 4.0 + i as f64 * 0.02),
                    8.0,
                    90.0,
                ));
            }
        }
        let area = BoundingBox::new(42.2, 4.1, 42.9, 4.5);
        let (from, to) = (Timestamp::from_mins(5), Timestamp::from_mins(30));
        let mut fast = Vec::new();
        s.window_into(&area, from, to, &mut fast);
        let slow: Vec<Fix> = s
            .iter()
            .filter(|f| {
                f.t >= from
                    && f.t <= to
                    && f.pos.lat >= area.min_lat
                    && f.pos.lat <= area.max_lat
                    && f.pos.lon >= area.min_lon
                    && f.pos.lon <= area.max_lon
            })
            .collect();
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }

    #[test]
    fn track_view_slicing_and_materialization_agree() {
        let fixes: Vec<Fix> = (0..10).map(|i| fix(7, i, 5.0 + i as f64 * 0.01)).collect();
        let tr = Track::from_fixes(&fixes);
        let view = tr.view(7);
        assert_eq!(view.to_vec(), fixes);
        assert_eq!(view.slice(2, 6).to_vec(), fixes[2..6].to_vec());
        assert_eq!(view.first(), Some(fixes[0]));
        assert_eq!(view.last(), Some(fixes[9]));
        assert_eq!(TrackView::empty(7).last(), None);
    }
}
