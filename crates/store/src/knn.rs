//! k-nearest-neighbour queries over moving objects (ref 45).
//!
//! The engine keeps the latest fix per vessel in a cell hash. A snapshot
//! kNN query at time `t` dead-reckons each candidate to `t` and runs a
//! ring search outward from the query point: rings of cells are scanned
//! in increasing Chebyshev radius until the k-th best distance is closer
//! than anything an unvisited ring could contain. A brute-force path is
//! kept as the baseline (and oracle in tests).

use mda_geo::distance::equirectangular_m;
use mda_geo::units::EARTH_RADIUS_M;
use mda_geo::{DurationMs, Fix, Position, Timestamp, VesselId};
use std::collections::HashMap;

/// One kNN result row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnResult {
    /// The vessel.
    pub id: VesselId,
    /// Its (possibly dead-reckoned) position at query time.
    pub pos: Position,
    /// Distance to the query point, metres.
    pub dist_m: f64,
}

/// kNN engine over the live fleet.
#[derive(Debug)]
pub struct KnnEngine {
    cell_deg: f64,
    /// Do not extrapolate a stale vessel further than this.
    max_extrapolation: DurationMs,
    latest: HashMap<VesselId, Fix>,
    cells: HashMap<(i32, i32), Vec<VesselId>>,
}

impl KnnEngine {
    /// New engine with ~`cell_deg`-degree cells (0.1 ≈ 11 km works for
    /// regional fleets).
    pub fn new(cell_deg: f64, max_extrapolation: DurationMs) -> Self {
        assert!(cell_deg > 0.0);
        Self { cell_deg, max_extrapolation, latest: HashMap::new(), cells: HashMap::new() }
    }

    fn cell_of(&self, p: Position) -> (i32, i32) {
        ((p.lat / self.cell_deg).floor() as i32, (p.lon / self.cell_deg).floor() as i32)
    }

    /// Update a vessel's latest fix.
    pub fn update(&mut self, fix: Fix) {
        if let Some(old) = self.latest.insert(fix.id, fix) {
            let oc = self.cell_of(old.pos);
            let nc = self.cell_of(fix.pos);
            if oc != nc {
                if let Some(v) = self.cells.get_mut(&oc) {
                    v.retain(|id| *id != fix.id);
                    if v.is_empty() {
                        self.cells.remove(&oc);
                    }
                }
                self.cells.entry(nc).or_default().push(fix.id);
            }
        } else {
            let c = self.cell_of(fix.pos);
            self.cells.entry(c).or_default().push(fix.id);
        }
    }

    /// Update a vessel's latest fix only if `fix` is at least as recent
    /// as the one currently tracked. This is the ingest-time maintenance
    /// path for stores that may replay or receive out-of-order fixes:
    /// the index monotonically tracks the freshest position. Returns
    /// whether the index changed.
    pub fn update_if_newer(&mut self, fix: Fix) -> bool {
        if let Some(cur) = self.latest.get(&fix.id) {
            if cur.t > fix.t {
                return false;
            }
        }
        self.update(fix);
        true
    }

    /// Stop tracking a vessel (e.g. its archive entry was dropped).
    /// Returns whether it was tracked.
    pub fn remove(&mut self, id: VesselId) -> bool {
        let Some(old) = self.latest.remove(&id) else { return false };
        let cell = self.cell_of(old.pos);
        if let Some(v) = self.cells.get_mut(&cell) {
            v.retain(|i| *i != id);
            if v.is_empty() {
                self.cells.remove(&cell);
            }
        }
        true
    }

    /// Number of tracked vessels.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True when no vessel is tracked.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }

    fn position_at(&self, fix: &Fix, t: Timestamp) -> Option<Position> {
        // Dead-reckon forwards for stale fixes and backwards for fixes
        // newer than the query time (queries at the watermark are
        // slightly behind the freshest data); both within the horizon.
        let age = (t - fix.t).abs();
        if age > self.max_extrapolation {
            return None;
        }
        Some(fix.dead_reckon(t))
    }

    /// Brute-force kNN baseline: O(n) scan.
    pub fn knn_scan(&self, query: Position, t: Timestamp, k: usize) -> Vec<KnnResult> {
        let mut all: Vec<KnnResult> = self
            .latest
            .values()
            .filter_map(|f| {
                let pos = self.position_at(f, t)?;
                Some(KnnResult { id: f.id, pos, dist_m: equirectangular_m(query, pos) })
            })
            .collect();
        all.sort_by(rank);
        all.truncate(k);
        all
    }

    /// Grid-pruned ring-search kNN. Exact up to dead-reckoning drift
    /// outside the vessel's stored cell: the ring lower bound is relaxed
    /// by the maximum distance a vessel can travel within the
    /// extrapolation horizon, so results match the scan baseline.
    pub fn knn(&self, query: Position, t: Timestamp, k: usize) -> Vec<KnnResult> {
        if k == 0 || self.latest.is_empty() {
            return Vec::new();
        }
        let (qr, qc) = self.cell_of(query);
        // Metres per cell along the smaller (longitude) direction.
        let cell_m =
            self.cell_deg.to_radians() * EARTH_RADIUS_M * query.lat.to_radians().cos().max(0.2);
        // A vessel can have left its stored cell by at most this much.
        let slack_m = (self.max_extrapolation as f64 / 1_000.0) * 20.0; // 20 m/s ≈ 39 kn

        let mut best: Vec<KnnResult> = Vec::new();
        let max_ring = 1
            + (self.cells.keys().map(|(r, c)| (r - qr).abs().max((c - qc).abs())))
                .max()
                .unwrap_or(0);

        for ring in 0..=max_ring {
            // Prune: nothing in this ring can beat the kth best.
            if best.len() == k {
                let ring_lb = ((ring - 1).max(0) as f64) * cell_m - slack_m;
                if ring_lb > best[k - 1].dist_m {
                    break;
                }
            }
            for (r, c) in ring_cells(qr, qc, ring) {
                if let Some(ids) = self.cells.get(&(r, c)) {
                    for id in ids {
                        let f = &self.latest[id];
                        let Some(pos) = self.position_at(f, t) else { continue };
                        let d = equirectangular_m(query, pos);
                        let candidate = KnnResult { id: *id, pos, dist_m: d };
                        if best.len() < k {
                            best.push(candidate);
                            best.sort_by(rank);
                        } else if rank(&candidate, &best[k - 1]).is_lt() {
                            best[k - 1] = candidate;
                            best.sort_by(rank);
                        }
                    }
                }
            }
        }
        best
    }
}

/// The canonical kNN result order: ascending distance, ties broken by
/// vessel id. Every query path (scan, ring search, cross-shard merge)
/// ranks with this, so equal fleets give equal answers regardless of
/// insertion order or shard layout.
pub(crate) fn rank(a: &KnnResult, b: &KnnResult) -> std::cmp::Ordering {
    a.dist_m.total_cmp(&b.dist_m).then_with(|| a.id.cmp(&b.id))
}

/// Merge per-shard kNN candidate lists (each sorted by ascending
/// distance) into the global top `k`, via a k-way heap merge over the
/// list heads. Ties are broken by vessel id so the merged answer is
/// deterministic regardless of how candidates were sharded.
pub fn merge_candidates(parts: Vec<Vec<KnnResult>>, k: usize) -> Vec<KnnResult> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Min-heap entry: the head of one candidate list.
    struct Head {
        dist_m: f64,
        id: VesselId,
        list: usize,
        idx: usize,
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want the smallest
            // distance on top.
            other.dist_m.total_cmp(&self.dist_m).then_with(|| other.id.cmp(&self.id))
        }
    }

    let mut heap = BinaryHeap::with_capacity(parts.len());
    for (list, part) in parts.iter().enumerate() {
        debug_assert!(part.windows(2).all(|w| w[0].dist_m <= w[1].dist_m), "parts must be sorted");
        if let Some(head) = part.first() {
            heap.push(Head { dist_m: head.dist_m, id: head.id, list, idx: 0 });
        }
    }
    let mut out = Vec::with_capacity(k.min(parts.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(parts[head.list][head.idx]);
        if let Some(next) = parts[head.list].get(head.idx + 1) {
            heap.push(Head {
                dist_m: next.dist_m,
                id: next.id,
                list: head.list,
                idx: head.idx + 1,
            });
        }
    }
    out
}

/// Cells at exact Chebyshev distance `ring` from `(r0, c0)`.
fn ring_cells(r0: i32, c0: i32, ring: i32) -> Vec<(i32, i32)> {
    if ring == 0 {
        return vec![(r0, c0)];
    }
    let mut out = Vec::with_capacity((8 * ring) as usize);
    for dc in -ring..=ring {
        out.push((r0 - ring, c0 + dc));
        out.push((r0 + ring, c0 + dc));
    }
    for dr in (-ring + 1)..ring {
        out.push((r0 + dr, c0 - ring));
        out.push((r0 + dr, c0 + ring));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn engine_with_fleet(n: usize, seed: u64) -> KnnEngine {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut e = KnnEngine::new(0.1, 10 * MINUTE);
        for i in 0..n as u32 {
            e.update(Fix::new(
                i + 1,
                Timestamp::from_mins(rng.gen_range(0..5)),
                Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0)),
                rng.gen_range(0.0..18.0),
                rng.gen_range(0.0..360.0),
            ));
        }
        e
    }

    #[test]
    fn ring_cells_counts() {
        assert_eq!(ring_cells(0, 0, 0).len(), 1);
        assert_eq!(ring_cells(0, 0, 1).len(), 8);
        assert_eq!(ring_cells(0, 0, 2).len(), 16);
        // No duplicates.
        let mut r3 = ring_cells(5, -2, 3);
        let before = r3.len();
        r3.sort_unstable();
        r3.dedup();
        assert_eq!(r3.len(), before);
    }

    #[test]
    fn knn_matches_scan_baseline() {
        let e = engine_with_fleet(800, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..25 {
            let q = Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0));
            let t = Timestamp::from_mins(7);
            let fast: Vec<u32> = e.knn(q, t, 10).iter().map(|r| r.id).collect();
            let slow: Vec<u32> = e.knn_scan(q, t, 10).iter().map(|r| r.id).collect();
            assert_eq!(fast, slow, "query at {q}");
        }
    }

    #[test]
    fn results_sorted_and_bounded() {
        let e = engine_with_fleet(100, 5);
        let res = e.knn(Position::new(43.0, 4.5), Timestamp::from_mins(6), 15);
        assert_eq!(res.len(), 15);
        for w in res.windows(2) {
            assert!(w[0].dist_m <= w[1].dist_m);
        }
        // k larger than fleet.
        let all = e.knn(Position::new(43.0, 4.5), Timestamp::from_mins(6), 1_000);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn stale_vessels_excluded() {
        let mut e = KnnEngine::new(0.1, 10 * MINUTE);
        e.update(Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 10.0, 0.0));
        e.update(Fix::new(2, Timestamp::from_mins(58), Position::new(43.0, 5.1), 10.0, 0.0));
        // At minute 60, vessel 1 is 60 min stale (> horizon).
        let res = e.knn(Position::new(43.0, 5.0), Timestamp::from_mins(60), 5);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, 2);
    }

    #[test]
    fn dead_reckoning_moves_results() {
        let mut e = KnnEngine::new(0.1, 10 * MINUTE);
        // Vessel sailing east at 12 kn from lon 5.0.
        e.update(Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 12.0, 90.0));
        let now = e.knn(Position::new(43.0, 5.0), Timestamp::from_mins(0), 1);
        let later = e.knn(Position::new(43.0, 5.0), Timestamp::from_mins(10), 1);
        assert!(later[0].dist_m > now[0].dist_m + 3_000.0, "vessel should have moved");
    }

    #[test]
    fn update_replaces_position() {
        let mut e = KnnEngine::new(0.1, 60 * MINUTE);
        e.update(Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 0.0, 0.0));
        e.update(Fix::new(1, Timestamp::from_mins(5), Position::new(43.5, 5.5), 0.0, 0.0));
        assert_eq!(e.len(), 1);
        let res = e.knn(Position::new(43.5, 5.5), Timestamp::from_mins(5), 1);
        assert!(res[0].dist_m < 100.0);
    }

    #[test]
    fn update_if_newer_ignores_stale_fixes() {
        let mut e = KnnEngine::new(0.1, 60 * MINUTE);
        assert!(e.update_if_newer(Fix::new(
            1,
            Timestamp::from_mins(10),
            Position::new(43.0, 5.0),
            5.0,
            0.0
        )));
        // An older replayed fix must not regress the latest position.
        assert!(!e.update_if_newer(Fix::new(
            1,
            Timestamp::from_mins(5),
            Position::new(43.9, 5.9),
            5.0,
            0.0
        )));
        let res = e.knn(Position::new(43.0, 5.0), Timestamp::from_mins(10), 1);
        assert!(res[0].dist_m < 100.0, "stale fix must be ignored");
        // An equal-time or newer fix replaces.
        assert!(e.update_if_newer(Fix::new(
            1,
            Timestamp::from_mins(12),
            Position::new(43.5, 5.5),
            5.0,
            0.0
        )));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn merge_candidates_is_a_global_top_k() {
        let e = engine_with_fleet(500, 11);
        let q = Position::new(43.0, 4.5);
        let t = Timestamp::from_mins(6);
        let want = e.knn_scan(q, t, 12);
        // Split the fleet's results arbitrarily into "shards" and merge.
        let all = e.knn_scan(q, t, 500);
        let parts: Vec<Vec<KnnResult>> =
            (0..7).map(|s| all.iter().filter(|r| r.id % 7 == s).copied().collect()).collect();
        let merged = merge_candidates(parts, 12);
        assert_eq!(
            merged.iter().map(|r| r.id).collect::<Vec<_>>(),
            want.iter().map(|r| r.id).collect::<Vec<_>>()
        );
        for w in merged.windows(2) {
            assert!(w[0].dist_m <= w[1].dist_m);
        }
        // Degenerate shapes.
        assert!(merge_candidates(Vec::new(), 5).is_empty());
        assert_eq!(merge_candidates(vec![want.clone(), Vec::new()], 3).len(), 3);
    }

    #[test]
    fn empty_engine() {
        let e = KnnEngine::new(0.1, MINUTE);
        assert!(e.is_empty());
        assert!(e.knn(Position::new(0.0, 0.0), Timestamp::from_mins(0), 3).is_empty());
    }
}
