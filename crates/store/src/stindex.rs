//! Spatio-temporal grid index over archived fixes.
//!
//! Fixes are bucketed by (lat cell, lon cell, time slice); a window
//! query visits only the intersecting buckets and filters exactly. This
//! is the index that turns "all traffic in the approach area between
//! 02:00 and 03:00" from a full archive scan into a handful of bucket
//! scans.

use mda_geo::{BoundingBox, DurationMs, Fix, Timestamp};
use std::collections::HashMap;

/// Spatio-temporal grid index.
#[derive(Debug)]
pub struct StGrid {
    bounds: BoundingBox,
    cell_deg: f64,
    slice: DurationMs,
    buckets: HashMap<(i32, i32, i64), Vec<Fix>>,
    len: usize,
}

impl StGrid {
    /// New index over `bounds` with the given spatial cell size
    /// (degrees) and time slice (ms).
    pub fn new(bounds: BoundingBox, cell_deg: f64, slice: DurationMs) -> Self {
        assert!(cell_deg > 0.0 && slice > 0);
        Self { bounds, cell_deg, slice, buckets: HashMap::new(), len: 0 }
    }

    fn key_of(&self, fix: &Fix) -> (i32, i32, i64) {
        (
            ((fix.pos.lat - self.bounds.min_lat) / self.cell_deg).floor() as i32,
            ((fix.pos.lon - self.bounds.min_lon) / self.cell_deg).floor() as i32,
            fix.t.millis().div_euclid(self.slice),
        )
    }

    /// Insert a fix.
    pub fn insert(&mut self, fix: Fix) {
        let key = self.key_of(&fix);
        self.buckets.entry(key).or_default().push(fix);
        self.len += 1;
    }

    /// Remove a previously inserted fix (identified by vessel id, time
    /// and position). Returns whether anything was removed. This is the
    /// maintenance path for archive compaction: the index shrinks with
    /// the archive instead of being rebuilt.
    pub fn remove(&mut self, fix: &Fix) -> bool {
        let key = self.key_of(fix);
        let Some(bucket) = self.buckets.get_mut(&key) else { return false };
        let Some(i) =
            bucket.iter().position(|f| f.id == fix.id && f.t == fix.t && f.pos == fix.pos)
        else {
            return false;
        };
        bucket.swap_remove(i);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        self.len -= 1;
        true
    }

    /// Number of indexed fixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty buckets (index health metric).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// All fixes inside the spatial window and time range (inclusive).
    pub fn query(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        let mut out = Vec::new();
        if from > to {
            return out;
        }
        let r0 = ((area.min_lat - self.bounds.min_lat) / self.cell_deg).floor() as i32;
        let r1 = ((area.max_lat - self.bounds.min_lat) / self.cell_deg).floor() as i32;
        let c0 = ((area.min_lon - self.bounds.min_lon) / self.cell_deg).floor() as i32;
        let c1 = ((area.max_lon - self.bounds.min_lon) / self.cell_deg).floor() as i32;
        let t0 = from.millis().div_euclid(self.slice);
        let t1 = to.millis().div_euclid(self.slice);
        for r in r0..=r1 {
            for c in c0..=c1 {
                for ts in t0..=t1 {
                    if let Some(bucket) = self.buckets.get(&(r, c, ts)) {
                        for f in bucket {
                            if f.t >= from && f.t <= to && area.contains(f.pos) {
                                out.push(*f);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::Position;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn bounds() -> BoundingBox {
        BoundingBox::new(42.0, 3.0, 44.0, 6.0)
    }

    fn random_fixes(n: usize, seed: u64) -> Vec<Fix> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Fix::new(
                    (i % 50) as u32,
                    Timestamp(rng.gen_range(0..6 * mda_geo::time::HOUR)),
                    Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0)),
                    rng.gen_range(0.0..20.0),
                    rng.gen_range(0.0..360.0),
                )
            })
            .collect()
    }

    #[test]
    fn query_matches_scan() {
        let fixes = random_fixes(5_000, 17);
        let mut g = StGrid::new(bounds(), 0.25, 30 * MINUTE);
        for f in &fixes {
            g.insert(*f);
        }
        assert_eq!(g.len(), 5_000);
        let mut rng = StdRng::seed_from_u64(18);
        for _ in 0..20 {
            let lat = rng.gen_range(42.0..43.5);
            let lon = rng.gen_range(3.0..5.5);
            let area = BoundingBox::new(lat, lon, lat + 0.4, lon + 0.5);
            let from = Timestamp(rng.gen_range(0..3 * mda_geo::time::HOUR));
            let to = from + rng.gen_range(MINUTE..2 * mda_geo::time::HOUR);
            let mut got: Vec<_> = g.query(&area, from, to).iter().map(|f| (f.id, f.t)).collect();
            let mut want: Vec<_> = fixes
                .iter()
                .filter(|f| area.contains(f.pos) && f.t >= from && f.t <= to)
                .map(|f| (f.id, f.t))
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn inclusive_time_bounds() {
        let mut g = StGrid::new(bounds(), 0.5, MINUTE);
        let f = Fix::new(1, Timestamp::from_mins(10), Position::new(43.0, 5.0), 5.0, 0.0);
        g.insert(f);
        let area = bounds();
        assert_eq!(g.query(&area, Timestamp::from_mins(10), Timestamp::from_mins(10)).len(), 1);
        assert!(g.query(&area, Timestamp::from_mins(11), Timestamp::from_mins(20)).is_empty());
        assert!(
            g.query(&area, Timestamp::from_mins(20), Timestamp::from_mins(10)).is_empty(),
            "inverted range"
        );
    }

    #[test]
    fn bucket_count_grows_with_spread() {
        let fixes = random_fixes(2_000, 19);
        let mut g = StGrid::new(bounds(), 0.25, 30 * MINUTE);
        for f in &fixes {
            g.insert(*f);
        }
        assert!(g.bucket_count() > 100, "buckets {}", g.bucket_count());
        assert!(g.bucket_count() <= 2_000);
    }

    #[test]
    fn remove_undoes_insert() {
        let fixes = random_fixes(500, 23);
        let mut g = StGrid::new(bounds(), 0.25, 30 * MINUTE);
        for f in &fixes {
            g.insert(*f);
        }
        for f in fixes.iter().take(200) {
            assert!(g.remove(f), "inserted fix must be removable");
        }
        assert_eq!(g.len(), 300);
        // Removed fixes no longer appear in queries.
        let area = bounds();
        let got = g.query(&area, Timestamp(0), Timestamp(6 * mda_geo::time::HOUR));
        assert_eq!(got.len(), 300);
        // Unknown fix: no-op.
        let ghost = Fix::new(999, Timestamp::from_mins(1), Position::new(43.0, 5.0), 1.0, 0.0);
        assert!(!g.remove(&ghost));
        assert_eq!(g.len(), 300);
    }

    #[test]
    fn handles_fixes_outside_nominal_bounds() {
        // Fixes slightly outside bounds land in edge buckets and are
        // still found by a query covering them.
        let mut g = StGrid::new(bounds(), 0.5, MINUTE);
        let f = Fix::new(1, Timestamp::from_mins(0), Position::new(44.4, 6.4), 5.0, 0.0);
        g.insert(f);
        let area = BoundingBox::new(44.0, 6.0, 45.0, 7.0);
        assert_eq!(g.query(&area, Timestamp::from_mins(0), Timestamp::from_mins(1)).len(), 1);
    }
}
