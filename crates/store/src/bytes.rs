//! Shared bounds-checked byte cursor for every decode path in the
//! crate.
//!
//! Segments, WAL records and the manifest all decode untrusted disk
//! bytes; each used to carry its own cursor helpers. This module is
//! the single fallible primitive they share: every read is an
//! `Option`, truncation is `None`, and nothing here can panic
//! whatever the bytes (rule L2, `panic-free-decode`).

/// Bounds-checked little-endian cursor over an untrusted byte slice.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor at the start of `buf`.
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    /// Current byte offset — for error reports and framing checks.
    pub(crate) fn pos(&self) -> usize {
        self.at
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.at)
    }

    /// The next `n` bytes, advancing the cursor; `None` on truncation.
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    /// Little-endian `u32`; `None` on truncation.
    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Little-endian `u64`; `None` on truncation.
    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Little-endian `i64`; `None` on truncation.
    pub(crate) fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Little-endian IEEE-754 `f64`; `None` on truncation.
    pub(crate) fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_advance_and_truncation_is_none() {
        let mut bytes = 7u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&(-3i64).to_le_bytes());
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32(), Some(7));
        assert_eq!(r.pos(), 4);
        assert_eq!(r.i64(), Some(-3));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u32(), None, "reading past the end must be None, not a panic");
    }

    #[test]
    fn take_checks_overflowing_lengths() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(r.take(usize::MAX).is_none());
        assert_eq!(r.take(3).map(<[u8]>::len), Some(3));
    }
}
