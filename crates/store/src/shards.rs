//! Lock-striped, vessel-hash-sharded trajectory store.
//!
//! The single-`RwLock` store serialized every ingest worker through one
//! global writer lock, and spatio-temporal queries rebuilt their index
//! per batch. This module removes both bottlenecks:
//!
//! - **Lock striping** — trajectories are partitioned into `N`
//!   independent shards by a hash of the vessel id; each shard sits
//!   behind its own `RwLock`, so writers for different shards never
//!   contend and readers only block the shard they touch.
//! - **Incremental indexes** — each shard optionally owns a
//!   [`StGrid`] spatio-temporal index and a [`KnnEngine`] latest-fix
//!   index that are maintained *at ingest time* ([`StGrid::insert`],
//!   [`StGrid::remove`], [`KnnEngine::update_if_newer`]); queries never
//!   rebuild them.
//! - **Batch ingest** — [`ShardedTrajectoryStore::append_batch`] takes
//!   one writer lock per touched shard per batch (instead of one per
//!   fix) and amortises the per-vessel archive lookup across the batch.
//!
//! ## Ordering guarantees
//!
//! All routing is by vessel id, so one vessel's fixes always live in
//! exactly one shard. Appends from a single thread for a given vessel
//! are observed in that order; fixes arriving out of event-time order
//! are sort-inserted by the underlying [`TrajectoryStore`]. Cross-shard
//! read results ([`ShardedTrajectoryStore::vessels`],
//! [`ShardedTrajectoryStore::knn`]) are merged deterministically
//! (sorted by id / distance), so equal store contents always produce
//! equal answers regardless of shard count or ingest thread count.

use crate::knn::{merge_candidates, KnnEngine, KnnResult};
use crate::stindex::StGrid;
use crate::trajstore::TrajectoryStore;
use mda_geo::{BoundingBox, DurationMs, Fix, Position, Timestamp, VesselId};
use parking_lot::RwLock;
use std::sync::Arc;

/// Configuration of the per-shard spatio-temporal grid index.
#[derive(Debug, Clone)]
pub struct StIndexConfig {
    /// Nominal bounds of the indexed region (fixes outside land in edge
    /// buckets and are still found).
    pub bounds: BoundingBox,
    /// Spatial cell size, degrees.
    pub cell_deg: f64,
    /// Temporal slice, milliseconds.
    pub slice: DurationMs,
}

/// Configuration of the per-shard kNN (latest fix per vessel) index.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Spatial cell size of the kNN grid, degrees.
    pub cell_deg: f64,
    /// Maximum dead-reckoning horizon for snapshot queries.
    pub max_extrapolation: DurationMs,
}

/// Configuration of a [`ShardedTrajectoryStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of lock stripes. More shards mean less writer contention;
    /// 8 is plenty for typical ingest worker counts.
    pub shards: usize,
    /// Maintain a per-shard spatio-temporal grid index at ingest time.
    pub st_index: Option<StIndexConfig>,
    /// Maintain a per-shard latest-fix kNN index at ingest time.
    pub knn: Option<KnnConfig>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { shards: 8, st_index: None, knn: None }
    }
}

/// One lock stripe: the vessels hashing here, plus their incrementally
/// maintained indexes.
#[derive(Debug)]
struct Shard {
    archive: TrajectoryStore,
    grid: Option<StGrid>,
    knn: Option<KnnEngine>,
}

impl Shard {
    fn new(config: &StoreConfig) -> Self {
        Self {
            archive: TrajectoryStore::new(),
            grid: config.st_index.as_ref().map(|c| StGrid::new(c.bounds, c.cell_deg, c.slice)),
            knn: config.knn.as_ref().map(|c| KnnEngine::new(c.cell_deg, c.max_extrapolation)),
        }
    }

    fn append(&mut self, fix: Fix) {
        self.archive.append(fix);
        if let Some(grid) = &mut self.grid {
            grid.insert(fix);
        }
        if let Some(knn) = &mut self.knn {
            knn.update_if_newer(fix);
        }
    }

    fn append_batch(&mut self, fixes: Vec<Fix>) {
        // The index updates don't need the per-vessel grouping the
        // archive does, so run them over the batch first and keep the
        // archive's amortised bulk path.
        if let Some(grid) = &mut self.grid {
            for fix in &fixes {
                grid.insert(*fix);
            }
        }
        if let Some(knn) = &mut self.knn {
            for fix in &fixes {
                knn.update_if_newer(*fix);
            }
        }
        self.archive.append_batch(fixes);
    }

    fn compact(&mut self, id: VesselId, keep: &dyn Fn(&[Fix]) -> Vec<Fix>) -> usize {
        let old: Option<Vec<Fix>> =
            self.grid.is_some().then(|| self.archive.trajectory(id).map(<[Fix]>::to_vec)).flatten();
        let removed = self.archive.compact(id, keep);
        if let (Some(grid), Some(old)) = (&mut self.grid, old) {
            for f in &old {
                grid.remove(f);
            }
            if let Some(kept) = self.archive.trajectory(id) {
                for f in kept {
                    grid.insert(*f);
                }
            }
        }
        // Keep the kNN index consistent with the archive: track the
        // latest *kept* fix, or drop the vessel if nothing survived.
        if let Some(knn) = &mut self.knn {
            match self.archive.trajectory(id).and_then(<[Fix]>::last) {
                Some(last) => {
                    knn.update(*last);
                }
                None => {
                    knn.remove(id);
                }
            }
        }
        removed
    }
}

/// A cloneable handle to a lock-striped, vessel-hash-sharded trajectory
/// store (see the module docs for the design and its guarantees).
#[derive(Debug, Clone)]
pub struct ShardedTrajectoryStore {
    shards: Arc<[RwLock<Shard>]>,
}

impl Default for ShardedTrajectoryStore {
    fn default() -> Self {
        Self::with_config(StoreConfig::default())
    }
}

/// Finalizer step of splitmix64: cheap, well-mixed vessel-id hash so
/// consecutive MMSIs spread across shards.
fn mix(id: VesselId) -> u64 {
    let mut z = u64::from(id).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardedTrajectoryStore {
    /// New store with the default configuration (8 shards, no indexes).
    pub fn new() -> Self {
        Self::default()
    }

    /// New store with `shards` stripes and no indexes.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_config(StoreConfig { shards, ..StoreConfig::default() })
    }

    /// New store from a full configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let shards: Vec<RwLock<Shard>> =
            (0..config.shards).map(|_| RwLock::new(Shard::new(&config))).collect();
        Self { shards: shards.into() }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a vessel's data lives in. Stable for the lifetime
    /// of the store; use it to route ingest work shard-affine.
    pub fn shard_of(&self, id: VesselId) -> usize {
        (mix(id) % self.shards.len() as u64) as usize
    }

    /// Append a fix (routes to the owning shard).
    pub fn append(&self, fix: Fix) {
        self.shards[self.shard_of(fix.id)].write().append(fix);
    }

    /// Append a batch of fixes, taking each touched shard's writer lock
    /// once. Per-vessel input order is preserved. Returns the number of
    /// fixes appended.
    pub fn append_batch(&self, fixes: impl IntoIterator<Item = Fix>) -> usize {
        let fixes = fixes.into_iter();
        let cap = fixes.size_hint().0 / self.shards.len() + 1;
        let mut per_shard: Vec<Vec<Fix>> =
            (0..self.shards.len()).map(|_| Vec::with_capacity(cap)).collect();
        let mut n = 0;
        for fix in fixes {
            per_shard[self.shard_of(fix.id)].push(fix);
            n += 1;
        }
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                self.shards[idx].write().append_batch(batch);
            }
        }
        n
    }

    /// Total stored fixes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().archive.len()).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().archive.is_empty())
    }

    /// Number of distinct vessels.
    pub fn vessel_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().archive.vessel_count()).sum()
    }

    /// All vessel ids, ascending (deterministic across shard layouts).
    pub fn vessels(&self) -> Vec<VesselId> {
        let mut ids: Vec<VesselId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().archive.vessels().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Copy of a vessel's fixes in `[from, to]`.
    pub fn range(&self, id: VesselId, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        self.shards[self.shard_of(id)].read().archive.range(id, from, to).to_vec()
    }

    /// Copy of a vessel's whole trajectory.
    pub fn trajectory(&self, id: VesselId) -> Option<Vec<Fix>> {
        self.shards[self.shard_of(id)].read().archive.trajectory(id).map(<[Fix]>::to_vec)
    }

    /// The latest fix of a vessel at or before `t`.
    pub fn latest_at(&self, id: VesselId, t: Timestamp) -> Option<Fix> {
        self.shards[self.shard_of(id)].read().archive.latest_at(id, t).copied()
    }

    /// Interpolated position at `t`.
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Option<Position> {
        self.shards[self.shard_of(id)].read().archive.position_at(id, t)
    }

    /// Compact one vessel's trajectory (e.g. down to its synopsis). The
    /// shard's grid index is updated to match.
    pub fn compact(&self, id: VesselId, keep: impl Fn(&[Fix]) -> Vec<Fix>) -> usize {
        self.shards[self.shard_of(id)].write().compact(id, &keep)
    }

    /// All archived fixes inside the spatial window and time range,
    /// sorted by (vessel, time) — the order is independent of shard
    /// layout, ingest interleaving and compaction history. Served from
    /// the per-shard grid indexes when configured, falling back to an
    /// archive scan otherwise.
    pub fn window(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = shard.read();
            match &s.grid {
                Some(grid) => out.extend(grid.query(area, from, to)),
                None => out.extend(
                    s.archive
                        .iter()
                        .filter(|f| f.t >= from && f.t <= to && area.contains(f.pos))
                        .copied(),
                ),
            }
        }
        out.sort_unstable_by_key(|f| (f.id, f.t));
        out
    }

    /// Snapshot kNN at `t` over the live fleet: each shard's kNN index
    /// produces its own candidate list and the per-shard candidates are
    /// heap-merged into the global top `k`. Requires [`StoreConfig::knn`].
    pub fn knn(&self, query: Position, t: Timestamp, k: usize) -> Vec<KnnResult> {
        let parts: Vec<Vec<KnnResult>> = self
            .shards
            .iter()
            .map(|shard| {
                let s = shard.read();
                let knn = s.knn.as_ref().expect("StoreConfig::knn not configured");
                knn.knn(query, t, k)
            })
            .collect();
        merge_candidates(parts, k)
    }

    /// Run a closure over each shard's archive (read-locked one at a
    /// time), folding the results. Shards are visited in index order.
    pub fn fold_shards<A>(&self, init: A, mut f: impl FnMut(A, &TrajectoryStore) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            acc = f(acc, &shard.read().archive);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), 10.0, 90.0)
    }

    fn indexed_config(shards: usize) -> StoreConfig {
        StoreConfig {
            shards,
            st_index: Some(StIndexConfig {
                bounds: BoundingBox::new(42.0, 3.0, 44.0, 6.0),
                cell_deg: 0.25,
                slice: 30 * MINUTE,
            }),
            knn: Some(KnnConfig { cell_deg: 0.1, max_extrapolation: 60 * MINUTE }),
        }
    }

    #[test]
    fn routes_by_vessel_and_answers_queries() {
        let store = ShardedTrajectoryStore::with_shards(4);
        for i in 0..10 {
            store.append(fix(7, i * 10, 43.0, 5.0 + i as f64 * 0.1));
            store.append(fix(8, i * 10, 43.5, 5.0));
        }
        assert_eq!(store.len(), 20);
        assert_eq!(store.vessel_count(), 2);
        assert_eq!(store.vessels(), vec![7, 8]);
        assert_eq!(store.trajectory(7).unwrap().len(), 10);
        assert_eq!(store.range(7, Timestamp::from_mins(20), Timestamp::from_mins(40)).len(), 3);
        let p = store.position_at(7, Timestamp::from_mins(45)).unwrap();
        assert!((p.lon - 5.45).abs() < 1e-9);
        assert_eq!(store.latest_at(8, Timestamp::from_mins(35)).unwrap().t.millis(), 30 * MINUTE);
    }

    #[test]
    fn append_batch_matches_per_fix_appends() {
        let a = ShardedTrajectoryStore::with_shards(4);
        let b = ShardedTrajectoryStore::with_shards(4);
        let mut rng = StdRng::seed_from_u64(5);
        let fixes: Vec<Fix> = (0..500)
            .map(|i| fix(rng.gen_range(1..20u32), i, rng.gen_range(42.0..44.0), 5.0))
            .collect();
        for f in &fixes {
            a.append(*f);
        }
        assert_eq!(b.append_batch(fixes), 500);
        assert_eq!(a.len(), b.len());
        for id in a.vessels() {
            assert_eq!(a.trajectory(id), b.trajectory(id), "vessel {id}");
        }
    }

    #[test]
    fn shard_layout_does_not_change_answers() {
        let mut rng = StdRng::seed_from_u64(9);
        let fixes: Vec<Fix> = (0..800)
            .map(|i| {
                fix(
                    rng.gen_range(1..40u32),
                    i / 4,
                    rng.gen_range(42.0..44.0),
                    rng.gen_range(3.0..6.0),
                )
            })
            .collect();
        let one = ShardedTrajectoryStore::with_config(indexed_config(1));
        let many = ShardedTrajectoryStore::with_config(indexed_config(7));
        one.append_batch(fixes.clone());
        many.append_batch(fixes);
        assert_eq!(one.len(), many.len());
        assert_eq!(one.vessels(), many.vessels());
        let area = BoundingBox::new(42.5, 3.5, 43.5, 5.5);
        let (from, to) = (Timestamp::from_mins(10), Timestamp::from_mins(150));
        // window() is (vessel, time)-sorted, so equality is direct.
        assert_eq!(one.window(&area, from, to), many.window(&area, from, to));
        let q = Position::new(43.1, 4.7);
        let t = Timestamp::from_mins(210);
        let ka: Vec<u32> = one.knn(q, t, 12).iter().map(|r| r.id).collect();
        let kb: Vec<u32> = many.knn(q, t, 12).iter().map(|r| r.id).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn compact_keeps_grid_consistent() {
        let store = ShardedTrajectoryStore::with_config(indexed_config(3));
        for i in 0..100 {
            store.append(fix(5, i, 43.0, 5.0 + i as f64 * 0.001));
        }
        let area = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
        let all = |s: &ShardedTrajectoryStore| {
            s.window(&area, Timestamp::from_mins(0), Timestamp::from_mins(1_000)).len()
        };
        assert_eq!(all(&store), 100);
        let removed = store.compact(5, |f| f.iter().step_by(10).copied().collect());
        assert_eq!(removed, 90);
        assert_eq!(store.len(), 10);
        assert_eq!(all(&store), 10, "grid must shrink with the archive");
        // The kNN index tracks the latest *kept* fix after compaction...
        let near = store.knn(Position::new(43.0, 5.09), Timestamp::from_mins(95), 1);
        assert_eq!(near[0].id, 5);
        let kept_latest = store.trajectory(5).unwrap().last().copied().unwrap();
        assert_eq!(near[0].pos, kept_latest.dead_reckon(Timestamp::from_mins(95)));
        // ...and drops vessels whose whole trajectory was compacted away.
        assert_eq!(store.compact(5, |_| Vec::new()), 10);
        assert!(store.knn(Position::new(43.0, 5.0), Timestamp::from_mins(95), 1).is_empty());
        assert_eq!(all(&store), 0);
    }

    #[test]
    fn knn_merges_across_shards() {
        let store = ShardedTrajectoryStore::with_config(indexed_config(5));
        let mut rng = StdRng::seed_from_u64(21);
        let mut oracle = KnnEngine::new(0.1, 60 * MINUTE);
        for i in 0..300u32 {
            let f = Fix::new(
                i + 1,
                Timestamp::from_mins(rng.gen_range(0..10)),
                Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0)),
                rng.gen_range(0.0..18.0),
                rng.gen_range(0.0..360.0),
            );
            store.append(f);
            oracle.update(f);
        }
        let t = Timestamp::from_mins(15);
        for _ in 0..10 {
            let q = Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0));
            let got: Vec<u32> = store.knn(q, t, 9).iter().map(|r| r.id).collect();
            let want: Vec<u32> = oracle.knn_scan(q, t, 9).iter().map(|r| r.id).collect();
            assert_eq!(got, want, "query at {q}");
        }
    }

    #[test]
    fn fold_shards_visits_everything() {
        let store = ShardedTrajectoryStore::with_shards(6);
        for id in 1..30u32 {
            store.append(fix(id, 0, 43.0, 5.0));
        }
        let total = store.fold_shards(0usize, |acc, s| acc + s.len());
        assert_eq!(total, 29);
    }
}
