//! Lock-striped, vessel-hash-sharded trajectory store.
//!
//! The single-`RwLock` store serialized every ingest worker through one
//! global writer lock, and spatio-temporal queries rebuilt their index
//! per batch. This module removes both bottlenecks:
//!
//! - **Lock striping** — trajectories are partitioned into `N`
//!   independent shards by a hash of the vessel id; each shard sits
//!   behind its own `RwLock`, so writers for different shards never
//!   contend and readers only block the shard they touch.
//! - **Incremental indexes** — each shard optionally owns a
//!   [`StGrid`] spatio-temporal index and a [`KnnEngine`] latest-fix
//!   index that are maintained *at ingest time* ([`StGrid::insert`],
//!   [`StGrid::remove`], [`KnnEngine::update_if_newer`]); queries never
//!   rebuild them.
//! - **Batch ingest** — [`ShardedTrajectoryStore::append_batch`] takes
//!   one writer lock per touched shard per batch (instead of one per
//!   fix) and amortises the per-vessel archive lookup across the batch.
//!
//! ## Ordering guarantees
//!
//! All routing is by vessel id, so one vessel's fixes always live in
//! exactly one shard. Appends from a single thread for a given vessel
//! are observed in that order; fixes arriving out of event-time order
//! are sort-inserted by the underlying [`TrajectoryStore`]. Cross-shard
//! read results ([`ShardedTrajectoryStore::vessels`],
//! [`ShardedTrajectoryStore::knn`]) are merged deterministically
//! (sorted by id / distance), so equal store contents always produce
//! equal answers regardless of shard count or ingest thread count.
//!
//! ## Hot/cold tiering
//!
//! Each shard owns two tiers: the mutable hot [`TrajectoryStore`]
//! archive and a cold [`ColdTier`] of immutable, compressed
//! [`TrajectorySegment`](crate::segment::TrajectorySegment)s.
//! [`ShardedTrajectoryStore::seal_before`] rotates fixes older than a
//! watermark out of the hot tier into sealed segments (shard-affine —
//! [`ShardedTrajectoryStore::seal_shard_before`] composes with
//! `run_shard_affine` ingest workers). Every read path is served by a
//! unified cross-tier merge:
//!
//! - [`range`](ShardedTrajectoryStore::range) /
//!   [`trajectory`](ShardedTrajectoryStore::trajectory) merge cold
//!   segments and hot fixes by event time, breaking ties in arrival
//!   order (sealed-earlier first, hot last) — exactly the order the
//!   hot store's sort-insert would have produced.
//! - [`window`](ShardedTrajectoryStore::window) unions the hot grid
//!   index (or scan) with fence-filtered segment decodes, then applies
//!   the canonical (vessel, time) sort.
//! - [`latest_at`](ShardedTrajectoryStore::latest_at) /
//!   [`position_at`](ShardedTrajectoryStore::position_at) bracket the
//!   query instant across both tiers.
//! - [`knn`](ShardedTrajectoryStore::knn) spans tiers by construction:
//!   the per-shard latest-fix index is maintained at ingest and sealing
//!   never evicts it; index-less stores fall back to a cross-tier
//!   linear scan.
//!
//! With a lossless seal configuration ([`SegmentConfig::lossless`],
//! the default) every query answers bit-identically to a never-sealed
//! store; lossy configurations record a per-segment error bound.

use crate::knn::{merge_candidates, rank, KnnEngine, KnnResult};
use crate::segment::SegmentConfig;
use crate::snapshot::StoreSnapshot;
use crate::stindex::StGrid;
use crate::tier::{ColdTier, FenceError, TierStats};
use crate::trajstore::{TrackView, TrajectoryStore};
use mda_geo::distance::equirectangular_m;
use mda_geo::motion::interpolate_fixes;
use mda_geo::{BoundingBox, DurationMs, Fix, Position, Timestamp, VesselId};
use parking_lot::RwLock;
use std::sync::Arc;

/// Configuration of the per-shard spatio-temporal grid index.
#[derive(Debug, Clone)]
pub struct StIndexConfig {
    /// Nominal bounds of the indexed region (fixes outside land in edge
    /// buckets and are still found).
    pub bounds: BoundingBox,
    /// Spatial cell size, degrees.
    pub cell_deg: f64,
    /// Temporal slice, milliseconds.
    pub slice: DurationMs,
}

/// Configuration of the per-shard kNN (latest fix per vessel) index.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Spatial cell size of the kNN grid, degrees.
    pub cell_deg: f64,
    /// Maximum dead-reckoning horizon for snapshot queries.
    pub max_extrapolation: DurationMs,
}

/// Configuration of a [`ShardedTrajectoryStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of lock stripes. More shards mean less writer contention;
    /// 8 is plenty for typical ingest worker counts.
    pub shards: usize,
    /// Maintain a per-shard spatio-temporal grid index at ingest time.
    pub st_index: Option<StIndexConfig>,
    /// Maintain a per-shard latest-fix kNN index at ingest time.
    pub knn: Option<KnnConfig>,
    /// How [`ShardedTrajectoryStore::seal_before`] compresses rotated
    /// fixes. Defaults to lossless sealing (bit-exact answers); set a
    /// tolerance to store cold slabs as bounded-error synopses.
    pub seal: SegmentConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { shards: 8, st_index: None, knn: None, seal: SegmentConfig::lossless() }
    }
}

/// One lock stripe: the vessels hashing here (hot archive + sealed
/// cold tier), plus their incrementally maintained indexes.
#[derive(Debug)]
struct Shard {
    archive: TrajectoryStore,
    cold: ColdTier,
    grid: Option<StGrid>,
    knn: Option<KnnEngine>,
    /// High-water mark of seal cuts already applied: repeat sweeps at
    /// the same (aligned) cut early-out instead of re-scanning every
    /// vessel under the write lock.
    sealed_to: Timestamp,
    /// Bumped on every content mutation (append, seal, compact). The
    /// snapshot path compares versions to reuse a previously published
    /// [`crate::snapshot::ShardSnapshot`] wholesale when nothing
    /// changed — the versioned-reuse pattern the event engine's
    /// `LiveIndex` sweeps introduced.
    version: u64,
}

impl Shard {
    fn new(config: &StoreConfig) -> Self {
        Self {
            archive: TrajectoryStore::new(),
            cold: ColdTier::new(),
            grid: config.st_index.as_ref().map(|c| StGrid::new(c.bounds, c.cell_deg, c.slice)),
            knn: config.knn.as_ref().map(|c| KnnEngine::new(c.cell_deg, c.max_extrapolation)),
            sealed_to: Timestamp::MIN,
            version: 0,
        }
    }

    fn append(&mut self, fix: Fix) {
        self.version += 1;
        self.archive.append(fix);
        if let Some(grid) = &mut self.grid {
            grid.insert(fix);
        }
        if let Some(knn) = &mut self.knn {
            knn.update_if_newer(fix);
        }
    }

    fn append_batch(&mut self, fixes: Vec<Fix>) {
        self.version += 1;
        // The index updates don't need the per-vessel grouping the
        // archive does, so run them over the batch first and keep the
        // archive's amortised bulk path.
        if let Some(grid) = &mut self.grid {
            for fix in &fixes {
                grid.insert(*fix);
            }
        }
        if let Some(knn) = &mut self.knn {
            for fix in &fixes {
                knn.update_if_newer(*fix);
            }
        }
        self.archive.append_batch(fixes);
    }

    fn compact(&mut self, id: VesselId, keep: &dyn Fn(&[Fix]) -> Vec<Fix>) -> usize {
        self.version += 1;
        let old: Option<Vec<Fix>> =
            self.grid.is_some().then(|| self.archive.trajectory(id).map(|v| v.to_vec())).flatten();
        let removed = self.archive.compact(id, keep);
        if let (Some(grid), Some(old)) = (&mut self.grid, old) {
            for f in &old {
                grid.remove(f);
            }
            if let Some(kept) = self.archive.trajectory(id) {
                for f in kept.iter() {
                    grid.insert(f);
                }
            }
        }
        // Keep the kNN index consistent with what survived: track the
        // freshest remaining fix *across tiers* — the hot survivor may
        // be older than sealed history (a compacted-away late arrival),
        // and blindly tracking it would regress the index. Drop the
        // vessel only when neither tier knows it.
        let freshest = self.latest(id);
        if let Some(knn) = &mut self.knn {
            match freshest {
                Some(f) => {
                    knn.update(f);
                }
                None => {
                    knn.remove(id);
                }
            }
        }
        removed
    }

    /// Rotate every hot fix older than `cut` into sealed cold segments
    /// split at `max_span`-aligned slab boundaries. The grid index
    /// shrinks with the hot tier; the kNN index is intentionally left
    /// alone — it tracks the latest fix per vessel *across* tiers, and
    /// sealing old fixes never changes which fix is latest. Returns
    /// the sealed fix count and the created segments (shared handles
    /// to the same bytes the cold tier now serves — what the durable
    /// tier persists).
    fn seal_before(
        &mut self,
        cut: Timestamp,
        config: &SegmentConfig,
    ) -> (usize, Vec<Arc<crate::segment::TrajectorySegment>>) {
        // Repeat sweeps at a cut we already applied have nothing new to
        // rotate (late arrivals older than it wait for the next cut).
        if cut <= self.sealed_to {
            return (0, Vec::new());
        }
        self.sealed_to = cut;
        let runs = self.archive.take_before(cut);
        if !runs.is_empty() {
            // A no-op sweep (nothing old enough here) leaves the version
            // alone, so published snapshots of idle shards stay shared.
            self.version += 1;
        }
        let mut fixes = 0;
        let mut segments = Vec::new();
        for (id, run) in &runs {
            fixes += run.len();
            let view = run.view(*id);
            if let Some(grid) = &mut self.grid {
                for f in view.iter() {
                    grid.remove(&f);
                }
            }
            // Slab-split on the contiguous timestamp column, then seal
            // each slab straight from the columns — no row transpose.
            let mut rest = view;
            while let Some(&first_t) = rest.t.first() {
                let slab_end = first_t.window_start(config.max_span) + config.max_span;
                let n = rest.t.partition_point(|&t| t < slab_end);
                let slab = rest.slice(0, n);
                rest = rest.slice(n, rest.len());
                if let Some(seg) = crate::segment::TrajectorySegment::seal_track(&slab, config) {
                    let seg = Arc::new(seg);
                    segments.push(Arc::clone(&seg));
                    if let Err(e) = self.cold.try_push_shared(seg) {
                        // Unreachable: `seal` always produces fenced
                        // segments. Louder than silently losing data.
                        panic!("in-process sealed segment violated its fences: {e}");
                    }
                }
            }
        }
        (fixes, segments)
    }

    /// Adopt a fence-validated recovered segment into the cold tier
    /// and fold its endpoint into the kNN index — cold-only vessels
    /// must stay visible to nearest-neighbour queries after a restart.
    fn adopt_segment(
        &mut self,
        segment: crate::segment::TrajectorySegment,
    ) -> Result<(), FenceError> {
        let last = *segment.last();
        self.cold.try_push(segment)?;
        if let Some(knn) = &mut self.knn {
            knn.update_if_newer(last);
        }
        self.version += 1;
        Ok(())
    }

    /// All vessel ids present in either tier, ascending and deduped.
    fn merged_vessels(&self) -> impl Iterator<Item = VesselId> + '_ {
        tiers::merged_vessels(&self.archive, &self.cold)
    }

    /// All vessel ids present in either tier, ascending and deduped.
    fn vessels(&self) -> Vec<VesselId> {
        self.merged_vessels().collect()
    }

    /// Number of distinct vessels across tiers, without materializing
    /// the id list.
    fn vessel_count(&self) -> usize {
        self.merged_vessels().count()
    }

    /// The freshest fix of a vessel across tiers.
    fn latest(&self, id: VesselId) -> Option<Fix> {
        tiers::latest(&self.archive, &self.cold, id)
    }

    /// The last fix of a vessel at or before `t`, across tiers.
    fn latest_at(&self, id: VesselId, t: Timestamp) -> Option<Fix> {
        tiers::latest_at(&self.archive, &self.cold, id, t)
    }
}

/// Cross-tier read primitives shared by the live (locked) shards and
/// the immutable [`crate::snapshot::ShardSnapshot`]s, so both fronts
/// answer with identical merge semantics by construction.
pub(crate) mod tiers {
    use super::*;

    /// All vessel ids present in either tier, ascending and deduped —
    /// a two-pointer merge of the tiers' already-sorted key iterators
    /// (no sort, no intermediate allocation).
    pub(crate) fn merged_vessels<'a>(
        hot: &'a TrajectoryStore,
        cold: &'a ColdTier,
    ) -> impl Iterator<Item = VesselId> + 'a {
        let mut hot = hot.vessels().peekable();
        let mut cold = cold.vessels().peekable();
        std::iter::from_fn(move || match (hot.peek(), cold.peek()) {
            (Some(&h), Some(&c)) => {
                if h <= c {
                    if h == c {
                        cold.next();
                    }
                    hot.next();
                    Some(h)
                } else {
                    cold.next();
                    Some(c)
                }
            }
            (Some(_), None) => hot.next(),
            (None, Some(_)) => cold.next(),
            (None, None) => None,
        })
    }

    /// The freshest fix of a vessel across tiers (hot wins timestamp
    /// ties — it arrived after anything sealed). O(1) on the cold side
    /// via the per-vessel latest cache, unlike `latest_at`, which scans
    /// segment fences — the kNN fallback calls this per vessel.
    pub(crate) fn latest(hot: &TrajectoryStore, cold: &ColdTier, id: VesselId) -> Option<Fix> {
        let h = hot.trajectory(id).and_then(|v| v.last());
        let c = cold.latest(id).copied();
        match (h, c) {
            (Some(h), Some(c)) => Some(if h.t >= c.t { h } else { c }),
            (h, c) => h.or(c),
        }
    }

    /// The last fix of a vessel at or before `t`, across tiers (hot
    /// wins ties — it arrived after anything sealed).
    pub(crate) fn latest_at(
        hot: &TrajectoryStore,
        cold: &ColdTier,
        id: VesselId,
        t: Timestamp,
    ) -> Option<Fix> {
        let h = hot.latest_at(id, t);
        let c = cold.latest_at(id, t);
        match (h, c) {
            (Some(h), Some(c)) => Some(if h.t >= c.t { h } else { c }),
            (h, c) => h.or(c),
        }
    }

    /// The first fix of a vessel strictly after `t`, across tiers
    /// (cold wins ties — it sorts first in merged order).
    pub(crate) fn first_after(
        hot: &TrajectoryStore,
        cold: &ColdTier,
        id: VesselId,
        t: Timestamp,
    ) -> Option<Fix> {
        let h = hot.first_after(id, t);
        let c = cold.first_after(id, t);
        match (h, c) {
            (Some(h), Some(c)) => Some(if c.t <= h.t { c } else { h }),
            (h, c) => h.or(c),
        }
    }

    /// Interpolated position at `t`, bracketing the instant across
    /// tiers (clamped at the trajectory ends, like the hot store).
    pub(crate) fn position_at(
        hot: &TrajectoryStore,
        cold: &ColdTier,
        id: VesselId,
        t: Timestamp,
    ) -> Option<Position> {
        let before = latest_at(hot, cold, id, t);
        let after = first_after(hot, cold, id, t);
        match (before, after) {
            (None, None) => None,
            (None, Some(a)) => Some(a.pos),
            (Some(b), None) => Some(b.pos),
            (Some(b), Some(a)) => Some(interpolate_fixes(&b, &a, t)),
        }
    }

    /// The index-less snapshot-kNN path: dead-reckon each vessel's
    /// freshest cross-tier fix to `t`, rank by (distance, id), keep the
    /// best `k`. Shared verbatim between the sharded store's fallback
    /// and the snapshot front, so the two answer identically.
    pub(crate) fn scan_knn(
        hot: &TrajectoryStore,
        cold: &ColdTier,
        query: Position,
        t: Timestamp,
        k: usize,
    ) -> Vec<KnnResult> {
        let mut cands: Vec<KnnResult> = merged_vessels(hot, cold)
            .filter_map(|id| {
                let latest = latest(hot, cold, id)?;
                let pos = latest.dead_reckon(t);
                Some(KnnResult { id, pos, dist_m: equirectangular_m(query, pos) })
            })
            .collect();
        cands.sort_by(rank);
        cands.truncate(k);
        cands
    }

    /// Apply the canonical window order: (vessel, time), with the
    /// remaining fix fields as bit-pattern tiebreaks so equal contents
    /// always serialize identically, sealed or not.
    pub(crate) fn canonical_window_sort(out: &mut [Fix]) {
        out.sort_unstable_by_key(|f| {
            (
                f.id,
                f.t,
                f.pos.lat.to_bits(),
                f.pos.lon.to_bits(),
                f.sog_kn.to_bits(),
                f.cog_deg.to_bits(),
            )
        });
    }
}

/// What one [`ShardedTrajectoryStore::seal_before`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealOutcome {
    /// The effective cut: fixes strictly older than this were sealed.
    /// Aligned down to a slab boundary, so every sealed segment covers
    /// a complete `max_span` slab of what was present at seal time.
    pub cut: Timestamp,
    /// Fixes rotated out of the hot tier.
    pub fixes: usize,
    /// Segments created.
    pub segments: usize,
}

/// Merge a vessel's cold fixes and hot columns (each time-sorted) by
/// event time. Ties go to the cold side: sealed fixes arrived before
/// anything still hot, so this reproduces the arrival order the hot
/// store's sort-insert maintains. The hot side is compared on its
/// timestamp column and materialized only as rows are emitted.
pub(crate) fn merge_tiers(cold: Vec<Fix>, hot: TrackView<'_>) -> Vec<Fix> {
    if cold.is_empty() {
        return hot.to_vec();
    }
    if hot.is_empty() {
        return cold;
    }
    let mut out = Vec::with_capacity(cold.len() + hot.len());
    let (mut ci, mut hi) = (0, 0);
    while ci < cold.len() && hi < hot.len() {
        if cold[ci].t <= hot.t[hi] {
            out.push(cold[ci]);
            ci += 1;
        } else {
            out.push(hot.get(hi));
            hi += 1;
        }
    }
    out.extend_from_slice(&cold[ci..]);
    out.extend(hot.slice(hi, hot.len()).iter());
    out
}

/// A cloneable handle to a lock-striped, vessel-hash-sharded trajectory
/// store (see the module docs for the design and its guarantees).
#[derive(Debug, Clone)]
pub struct ShardedTrajectoryStore {
    shards: Arc<[RwLock<Shard>]>,
    seal: SegmentConfig,
    /// Process-unique store identity, shared by handle clones. Stamped
    /// onto published snapshots so `snapshot(prev)` can never reuse a
    /// shard from a *different* store whose version counters happen to
    /// collide (they start at 0 everywhere, so collisions would be the
    /// common case, not the rare one).
    id: u64,
}

impl Default for ShardedTrajectoryStore {
    fn default() -> Self {
        Self::with_config(StoreConfig::default())
    }
}

/// Finalizer step of splitmix64: cheap, well-mixed vessel-id hash so
/// consecutive MMSIs spread across shards.
impl ShardedTrajectoryStore {
    /// New store with the default configuration (8 shards, no indexes).
    pub fn new() -> Self {
        Self::default()
    }

    /// New store with `shards` stripes and no indexes.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_config(StoreConfig { shards, ..StoreConfig::default() })
    }

    /// New store from a full configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.seal.max_span > 0, "seal slabs need a positive span");
        static NEXT_STORE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let shards: Vec<RwLock<Shard>> =
            (0..config.shards).map(|_| RwLock::new(Shard::new(&config))).collect();
        Self {
            shards: shards.into(),
            seal: config.seal,
            id: NEXT_STORE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a vessel's data lives in. Stable for the lifetime
    /// of the store; use it to route ingest work shard-affine. Routing
    /// is the workspace-wide [`mda_geo::vessel_shard`] hash, so an
    /// event-engine shard and a store shard with equal shard counts
    /// own the same vessels.
    pub fn shard_of(&self, id: VesselId) -> usize {
        mda_geo::vessel_shard(id, self.shards.len())
    }

    /// Append a fix (routes to the owning shard).
    pub fn append(&self, fix: Fix) {
        self.shards[self.shard_of(fix.id)].write().append(fix);
    }

    /// Append a batch of fixes, taking each touched shard's writer lock
    /// once. Per-vessel input order is preserved. Returns the number of
    /// fixes appended.
    pub fn append_batch(&self, fixes: impl IntoIterator<Item = Fix>) -> usize {
        let batch: Vec<Fix> = fixes.into_iter().collect();
        let Some(first) = batch.first() else {
            return 0;
        };
        // Shard-affine ingest workers hand over batches that land
        // entirely in one shard; a key scan detects that and skips the
        // re-partition copy (one hash per fix instead of a 48-byte move
        // each into freshly allocated per-shard buffers).
        let s0 = self.shard_of(first.id);
        if batch.iter().all(|f| self.shard_of(f.id) == s0) {
            let n = batch.len();
            self.shards[s0].write().append_batch(batch);
            return n;
        }
        let cap = batch.len() / self.shards.len() + 1;
        let mut per_shard: Vec<Vec<Fix>> =
            (0..self.shards.len()).map(|_| Vec::with_capacity(cap)).collect();
        let mut n = 0;
        for fix in batch {
            per_shard[self.shard_of(fix.id)].push(fix);
            n += 1;
        }
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                self.shards[idx].write().append_batch(batch);
            }
        }
        n
    }

    /// Total stored fixes across both tiers.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.read();
                s.archive.len() + s.cold.len()
            })
            .sum()
    }

    /// Fixes in the hot (mutable) tier only — the seal backlog the
    /// adaptive controller watches. O(shards): per-shard counts are
    /// maintained incrementally.
    pub fn hot_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().archive.len()).sum()
    }

    /// True when both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| {
            let s = s.read();
            s.archive.is_empty() && s.cold.is_empty()
        })
    }

    /// Number of distinct vessels across both tiers.
    pub fn vessel_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().vessel_count()).sum()
    }

    /// All vessel ids across both tiers, ascending (deterministic
    /// across shard layouts and sealing histories).
    pub fn vessels(&self) -> Vec<VesselId> {
        let mut ids: Vec<VesselId> = self.shards.iter().flat_map(|s| s.read().vessels()).collect();
        ids.sort_unstable();
        ids
    }

    /// Rotate every fix older than `watermark` (aligned down to a
    /// whole seal slab) out of the hot shards into sealed, compressed
    /// cold segments, using [`StoreConfig::seal`]. Queries keep
    /// answering across both tiers; with a lossless seal configuration
    /// they answer bit-identically to a never-sealed store.
    ///
    /// ```
    /// use mda_geo::{Fix, Position, Timestamp};
    /// use mda_store::ShardedTrajectoryStore;
    ///
    /// let store = ShardedTrajectoryStore::new();
    /// for i in 0..120i64 {
    ///     let t = Timestamp::from_mins(i);
    ///     store.append(Fix::new(1, t, Position::new(43.0, 5.0 + 0.001 * i as f64), 10.0, 90.0));
    /// }
    /// let before = store.trajectory(1);
    /// let sealed = store.seal_before(Timestamp::from_mins(90));
    /// assert!(sealed.fixes > 0);
    /// assert!(store.tier_stats().cold_segments > 0);
    /// // The default seal configuration is lossless: reads are unchanged.
    /// assert_eq!(store.trajectory(1), before);
    /// ```
    pub fn seal_before(&self, watermark: Timestamp) -> SealOutcome {
        self.seal_before_collect(watermark).0
    }

    /// Like [`Self::seal_before`], additionally returning the created
    /// segments per shard (shared handles to the exact bytes the cold
    /// tier now serves). This is the durable tier's hook: the same
    /// seal that rotates fixes in memory hands back what must be
    /// appended to the per-shard segment files.
    pub fn seal_before_collect(
        &self,
        watermark: Timestamp,
    ) -> (SealOutcome, Vec<Vec<Arc<crate::segment::TrajectorySegment>>>) {
        let Some(cut) = self.seal_cut(watermark) else {
            return (SealOutcome::default(), vec![Vec::new(); self.shards.len()]);
        };
        let mut outcome = SealOutcome { cut, ..SealOutcome::default() };
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            let (fixes, segments) = shard.write().seal_before(cut, &self.seal);
            outcome.fixes += fixes;
            outcome.segments += segments.len();
            per_shard.push(segments);
        }
        (outcome, per_shard)
    }

    /// Shard-affine sealing: like [`Self::seal_before`] but for one
    /// shard only, so `run_shard_affine` ingest workers can seal the
    /// shards they exclusively own without touching anyone else's
    /// locks.
    pub fn seal_shard_before(&self, shard: usize, watermark: Timestamp) -> SealOutcome {
        let Some(cut) = self.seal_cut(watermark) else { return SealOutcome::default() };
        let (fixes, segments) = self.shards[shard].write().seal_before(cut, &self.seal);
        SealOutcome { cut, fixes, segments: segments.len() }
    }

    /// Adopt a segment recovered from disk: fence-validate it into the
    /// owning shard's cold tier and fold its endpoint into the kNN
    /// index (a vessel whose entire history is cold would otherwise
    /// vanish from nearest-neighbour answers after a restart). Routing
    /// is by vessel hash, so recovery is correct even if the shard
    /// count changed across the restart.
    pub(crate) fn adopt_segment(
        &self,
        segment: crate::segment::TrajectorySegment,
    ) -> Result<(), FenceError> {
        self.shards[self.shard_of(segment.vessel())].write().adopt_segment(segment)
    }

    /// Restore the seal high-water mark on every shard after recovery,
    /// so post-restart seal sweeps at already-applied cuts early-out
    /// exactly as they would have without the crash.
    pub(crate) fn restore_sealed_to(&self, cut: Timestamp) {
        for shard in self.shards.iter() {
            shard.write().sealed_to = cut;
        }
    }

    /// The slab-aligned effective cut for a seal at `watermark`
    /// (`None` when nothing can be older than it).
    fn seal_cut(&self, watermark: Timestamp) -> Option<Timestamp> {
        if watermark == Timestamp::MIN {
            return None;
        }
        Some(watermark.window_start(self.seal.max_span))
    }

    /// Per-tier size accounting (fix counts, approximate bytes,
    /// segment count), summed over all shards.
    pub fn tier_stats(&self) -> TierStats {
        self.shards.iter().fold(TierStats::default(), |mut acc, shard| {
            let s = shard.read();
            acc.merge(&TierStats {
                hot_fixes: s.archive.len(),
                // Five dense 8-byte columns per fix in the SoA hot tier.
                hot_bytes: s.archive.len() * 5 * std::mem::size_of::<f64>(),
                ..s.cold.stats()
            });
            acc
        })
    }

    /// Copy of a vessel's fixes in `[from, to]`, merged across tiers
    /// (time order; arrival order on ties).
    pub fn range(&self, id: VesselId, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        let s = self.shards[self.shard_of(id)].read();
        merge_tiers(s.cold.range(id, from, to), s.archive.range(id, from, to))
    }

    /// Copy of a vessel's whole trajectory, merged across tiers.
    pub fn trajectory(&self, id: VesselId) -> Option<Vec<Fix>> {
        let s = self.shards[self.shard_of(id)].read();
        let cold = s.cold.trajectory(id);
        let hot = s.archive.trajectory(id);
        if cold.is_empty() && hot.is_none() {
            return None;
        }
        Some(merge_tiers(cold, hot.unwrap_or_else(|| TrackView::empty(id))))
    }

    /// The latest fix of a vessel at or before `t`, across tiers.
    pub fn latest_at(&self, id: VesselId, t: Timestamp) -> Option<Fix> {
        self.shards[self.shard_of(id)].read().latest_at(id, t)
    }

    /// Interpolated position at `t`, bracketing the instant across
    /// tiers (clamped at the trajectory ends, like the hot store).
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Option<Position> {
        let s = self.shards[self.shard_of(id)].read();
        tiers::position_at(&s.archive, &s.cold, id, t)
    }

    /// Compact one vessel's *hot* trajectory (e.g. down to its
    /// synopsis); sealed segments are immutable and unaffected. The
    /// shard's grid index is updated to match.
    pub fn compact(&self, id: VesselId, keep: impl Fn(&[Fix]) -> Vec<Fix>) -> usize {
        self.shards[self.shard_of(id)].write().compact(id, &keep)
    }

    /// All archived fixes inside the spatial window and time range,
    /// sorted by (vessel, time) — the order is independent of shard
    /// layout, ingest interleaving, sealing and compaction history.
    /// The hot tier is served from the per-shard grid indexes when
    /// configured (archive scan otherwise); the cold tier decodes only
    /// segments whose time/bbox fences intersect the window.
    pub fn window(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = shard.read();
            match &s.grid {
                Some(grid) => out.extend(grid.query(area, from, to)),
                None => s.archive.window_into(area, from, to, &mut out),
            }
            s.cold.window_into(area, from, to, &mut out);
        }
        tiers::canonical_window_sort(&mut out);
        out
    }

    /// Snapshot kNN at `t` over the live fleet, ranked by (distance,
    /// vessel id). With [`StoreConfig::knn`] configured, each shard's
    /// latest-fix index produces its candidates (the index spans tiers:
    /// it is maintained at ingest and sealing never evicts it) and the
    /// per-shard lists are heap-merged into the global top `k`.
    /// Index-less stores fall back to a cross-tier linear scan over
    /// each vessel's freshest fix — the `c7_knn/scan` path — with no
    /// staleness cutoff.
    pub fn knn(&self, query: Position, t: Timestamp, k: usize) -> Vec<KnnResult> {
        let parts: Vec<Vec<KnnResult>> = self
            .shards
            .iter()
            .map(|shard| {
                let s = shard.read();
                match s.knn.as_ref() {
                    Some(knn) => knn.knn(query, t, k),
                    None => tiers::scan_knn(&s.archive, &s.cold, query, t, k),
                }
            })
            .collect();
        merge_candidates(parts, k)
    }

    /// Publish an immutable [`StoreSnapshot`]
    /// of every shard's two tiers.
    ///
    /// Pass the previously published snapshot to enable versioned
    /// reuse: shards whose version counter did not move since `prev`
    /// was built are shared (`Arc` clone) instead of re-cloned, so the
    /// cost of a publication is proportional to what actually changed.
    /// Sealed segments are `Arc`-shared either way.
    ///
    /// Each shard is captured under its read lock. When one thread
    /// both writes and snapshots (the pipeline's publication
    /// discipline), the snapshot is globally consistent; with
    /// concurrent writers (e.g. a parallel backfill) it is per-shard
    /// consistent.
    ///
    /// ```
    /// use mda_geo::{Fix, Position, Timestamp};
    /// use mda_store::ShardedTrajectoryStore;
    ///
    /// let store = ShardedTrajectoryStore::new();
    /// store.append(Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 10.0, 90.0));
    /// let snap = store.snapshot(None);
    /// store.append(Fix::new(1, Timestamp::from_mins(1), Position::new(43.0, 5.1), 10.0, 90.0));
    /// assert_eq!(snap.trajectory(1).unwrap().len(), 1, "snapshot is frozen");
    /// assert_eq!(store.snapshot(Some(&snap)).trajectory(1).unwrap().len(), 2);
    /// ```
    pub fn snapshot(&self, prev: Option<&crate::snapshot::StoreSnapshot>) -> StoreSnapshot {
        // Only this store's own snapshots are reusable: version
        // counters are per-store sequences, so a foreign snapshot with
        // colliding versions must be ignored, not trusted.
        let prev = prev.filter(|p| p.store_id() == self.id && p.shard_count() == self.shards.len());
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(idx, lock)| {
                let s = lock.read();
                if let Some(reusable) =
                    prev.and_then(|p| p.shard(idx)).filter(|shard| shard.version() == s.version)
                {
                    return Arc::clone(reusable);
                }
                Arc::new(crate::snapshot::ShardSnapshot::new(
                    s.version,
                    s.archive.clone(),
                    s.cold.clone(),
                ))
            })
            .collect();
        StoreSnapshot::from_shards(self.id, shards)
    }

    /// Run a closure over each shard's *hot* archive (read-locked one
    /// at a time), folding the results. Shards are visited in index
    /// order. For consumers that must see sealed history too, use
    /// [`Self::fold_tiers`].
    pub fn fold_shards<A>(&self, init: A, mut f: impl FnMut(A, &TrajectoryStore) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            acc = f(acc, &shard.read().archive);
        }
        acc
    }

    /// Run a closure over each shard's hot archive *and* cold tier
    /// (read-locked one at a time), folding the results — the
    /// cross-tier counterpart of [`Self::fold_shards`].
    pub fn fold_tiers<A>(
        &self,
        init: A,
        mut f: impl FnMut(A, &TrajectoryStore, &ColdTier) -> A,
    ) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            let s = shard.read();
            acc = f(acc, &s.archive, &s.cold);
        }
        acc
    }

    /// A shard-set-scoped ingest handle for writer lane `lane` of
    /// `lanes`: the lane owns store shards `{s : s % lanes == lane}`
    /// (the `mda_stream::runner::run_shard_affine_indexed` ownership
    /// convention — the same one the event engine's lanes use, so an
    /// engine lane and a store lane with matching counts own the same
    /// vessels). See [`StoreLane`].
    pub fn lane(&self, lane: usize, lanes: usize) -> StoreLane {
        assert!(lanes >= 1 && lane < lanes, "lane {lane} of {lanes}");
        StoreLane { store: self.clone(), lane, lanes }
    }
}

/// A writer lane's scoped handle onto a [`ShardedTrajectoryStore`].
///
/// Appends assert (debug builds) that the fix belongs to one of the
/// lane's owned shards, turning an ingest-routing bug — two lanes
/// silently interleaving writes into one shard, destroying per-vessel
/// arrival order — into an immediate failure instead of a
/// nondeterministic archive. Reads are unrestricted: snapshots and
/// queries stay whole-store operations on the underlying handle.
#[derive(Debug, Clone)]
pub struct StoreLane {
    store: ShardedTrajectoryStore,
    lane: usize,
    lanes: usize,
}

impl StoreLane {
    /// True if this lane owns `id`'s store shard.
    pub fn owns(&self, id: VesselId) -> bool {
        self.store.shard_of(id) % self.lanes == self.lane
    }

    /// This lane's index.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Append a fix to an owned shard.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `fix.id` hashes to a shard another lane
    /// owns.
    pub fn append(&self, fix: Fix) {
        debug_assert!(
            self.owns(fix.id),
            "lane {} of {} appended vessel {} owned by lane {}",
            self.lane,
            self.lanes,
            fix.id,
            self.store.shard_of(fix.id) % self.lanes
        );
        self.store.append(fix);
    }

    /// Append a batch of fixes to owned shards, taking each shard's
    /// writer lock once instead of once per fix.
    ///
    /// # Panics
    ///
    /// Debug builds panic if any fix hashes to a shard another lane
    /// owns.
    pub fn append_batch(&self, fixes: impl IntoIterator<Item = Fix>) -> usize {
        self.store.append_batch(fixes.into_iter().inspect(|fix| {
            debug_assert!(
                self.owns(fix.id),
                "lane {} of {} appended vessel {} owned by lane {}",
                self.lane,
                self.lanes,
                fix.id,
                self.store.shard_of(fix.id) % self.lanes
            );
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), 10.0, 90.0)
    }

    fn indexed_config(shards: usize) -> StoreConfig {
        StoreConfig {
            shards,
            st_index: Some(StIndexConfig {
                bounds: BoundingBox::new(42.0, 3.0, 44.0, 6.0),
                cell_deg: 0.25,
                slice: 30 * MINUTE,
            }),
            knn: Some(KnnConfig { cell_deg: 0.1, max_extrapolation: 60 * MINUTE }),
            ..StoreConfig::default()
        }
    }

    #[test]
    fn routes_by_vessel_and_answers_queries() {
        let store = ShardedTrajectoryStore::with_shards(4);
        for i in 0..10 {
            store.append(fix(7, i * 10, 43.0, 5.0 + i as f64 * 0.1));
            store.append(fix(8, i * 10, 43.5, 5.0));
        }
        assert_eq!(store.len(), 20);
        assert_eq!(store.vessel_count(), 2);
        assert_eq!(store.vessels(), vec![7, 8]);
        assert_eq!(store.trajectory(7).unwrap().len(), 10);
        assert_eq!(store.range(7, Timestamp::from_mins(20), Timestamp::from_mins(40)).len(), 3);
        let p = store.position_at(7, Timestamp::from_mins(45)).unwrap();
        assert!((p.lon - 5.45).abs() < 1e-9);
        assert_eq!(store.latest_at(8, Timestamp::from_mins(35)).unwrap().t.millis(), 30 * MINUTE);
    }

    #[test]
    fn append_batch_matches_per_fix_appends() {
        let a = ShardedTrajectoryStore::with_shards(4);
        let b = ShardedTrajectoryStore::with_shards(4);
        let mut rng = StdRng::seed_from_u64(5);
        let fixes: Vec<Fix> = (0..500)
            .map(|i| fix(rng.gen_range(1..20u32), i, rng.gen_range(42.0..44.0), 5.0))
            .collect();
        for f in &fixes {
            a.append(*f);
        }
        assert_eq!(b.append_batch(fixes), 500);
        assert_eq!(a.len(), b.len());
        for id in a.vessels() {
            assert_eq!(a.trajectory(id), b.trajectory(id), "vessel {id}");
        }
    }

    #[test]
    fn shard_layout_does_not_change_answers() {
        let mut rng = StdRng::seed_from_u64(9);
        let fixes: Vec<Fix> = (0..800)
            .map(|i| {
                fix(
                    rng.gen_range(1..40u32),
                    i / 4,
                    rng.gen_range(42.0..44.0),
                    rng.gen_range(3.0..6.0),
                )
            })
            .collect();
        let one = ShardedTrajectoryStore::with_config(indexed_config(1));
        let many = ShardedTrajectoryStore::with_config(indexed_config(7));
        one.append_batch(fixes.clone());
        many.append_batch(fixes);
        assert_eq!(one.len(), many.len());
        assert_eq!(one.vessels(), many.vessels());
        let area = BoundingBox::new(42.5, 3.5, 43.5, 5.5);
        let (from, to) = (Timestamp::from_mins(10), Timestamp::from_mins(150));
        // window() is (vessel, time)-sorted, so equality is direct.
        assert_eq!(one.window(&area, from, to), many.window(&area, from, to));
        let q = Position::new(43.1, 4.7);
        let t = Timestamp::from_mins(210);
        let ka: Vec<u32> = one.knn(q, t, 12).iter().map(|r| r.id).collect();
        let kb: Vec<u32> = many.knn(q, t, 12).iter().map(|r| r.id).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn compact_keeps_grid_consistent() {
        let store = ShardedTrajectoryStore::with_config(indexed_config(3));
        for i in 0..100 {
            store.append(fix(5, i, 43.0, 5.0 + i as f64 * 0.001));
        }
        let area = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
        let all = |s: &ShardedTrajectoryStore| {
            s.window(&area, Timestamp::from_mins(0), Timestamp::from_mins(1_000)).len()
        };
        assert_eq!(all(&store), 100);
        let removed = store.compact(5, |f| f.iter().step_by(10).copied().collect());
        assert_eq!(removed, 90);
        assert_eq!(store.len(), 10);
        assert_eq!(all(&store), 10, "grid must shrink with the archive");
        // The kNN index tracks the latest *kept* fix after compaction...
        let near = store.knn(Position::new(43.0, 5.09), Timestamp::from_mins(95), 1);
        assert_eq!(near[0].id, 5);
        let kept_latest = store.trajectory(5).unwrap().last().copied().unwrap();
        assert_eq!(near[0].pos, kept_latest.dead_reckon(Timestamp::from_mins(95)));
        // ...and drops vessels whose whole trajectory was compacted away.
        assert_eq!(store.compact(5, |_| Vec::new()), 10);
        assert!(store.knn(Position::new(43.0, 5.0), Timestamp::from_mins(95), 1).is_empty());
        assert_eq!(all(&store), 0);
    }

    #[test]
    fn knn_merges_across_shards() {
        let store = ShardedTrajectoryStore::with_config(indexed_config(5));
        let mut rng = StdRng::seed_from_u64(21);
        let mut oracle = KnnEngine::new(0.1, 60 * MINUTE);
        for i in 0..300u32 {
            let f = Fix::new(
                i + 1,
                Timestamp::from_mins(rng.gen_range(0..10)),
                Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0)),
                rng.gen_range(0.0..18.0),
                rng.gen_range(0.0..360.0),
            );
            store.append(f);
            oracle.update(f);
        }
        let t = Timestamp::from_mins(15);
        for _ in 0..10 {
            let q = Position::new(rng.gen_range(42.0..44.0), rng.gen_range(3.0..6.0));
            let got: Vec<u32> = store.knn(q, t, 9).iter().map(|r| r.id).collect();
            let want: Vec<u32> = oracle.knn_scan(q, t, 9).iter().map(|r| r.id).collect();
            assert_eq!(got, want, "query at {q}");
        }
    }

    #[test]
    fn compact_after_seal_keeps_knn_on_freshest_tier() {
        // Regression: vessel 1's freshest fix is sealed cold (t=100);
        // a late hot fix at t=50 arrives afterwards. Compacting the hot
        // tier must not re-point the kNN index at the stale hot fix.
        let store = ShardedTrajectoryStore::with_config(indexed_config(2));
        for i in 0..=10 {
            store.append(fix(1, i * 10, 43.1, 5.0));
        }
        store.seal_before(Timestamp::from_mins(120));
        store.append(fix(1, 50, 43.05, 5.5)); // late arrival, lands hot
        store.compact(1, |f| f.to_vec());
        let got = store.knn(Position::new(43.1, 5.0), Timestamp::from_mins(100), 1);
        assert_eq!(got[0].id, 1);
        assert!(got[0].dist_m < 1.0, "kNN regressed to the stale hot fix: {:?}", got[0]);
    }

    #[test]
    fn knn_without_index_falls_back_to_scan() {
        // An index-less store must not panic; it scans each vessel's
        // freshest fix instead.
        let store = ShardedTrajectoryStore::with_shards(4);
        for i in 0..20u32 {
            store.append(fix(i + 1, 0, 43.0 + f64::from(i) * 0.01, 5.0));
        }
        let got = store.knn(Position::new(43.0, 5.0), Timestamp::from_mins(0), 5);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].id, 1, "nearest vessel first");
        assert!(got.windows(2).all(|w| w[0].dist_m <= w[1].dist_m));
        // Sealing keeps the fallback's answers: the freshest fix per
        // vessel is found in the cold tier.
        let sealed = store.seal_before(Timestamp::from_mins(60));
        assert_eq!(sealed.fixes, 20);
        let after = store.knn(Position::new(43.0, 5.0), Timestamp::from_mins(0), 5);
        assert_eq!(
            got.iter().map(|r| r.id).collect::<Vec<_>>(),
            after.iter().map(|r| r.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sealing_preserves_every_read_path_losslessly() {
        let mut rng = StdRng::seed_from_u64(33);
        let fixes: Vec<Fix> = (0..1_200)
            .map(|i| {
                fix(
                    rng.gen_range(1..25u32),
                    i / 3,
                    rng.gen_range(42.0..44.0),
                    rng.gen_range(3.0..6.0),
                )
            })
            .collect();
        let sealed = ShardedTrajectoryStore::with_config(indexed_config(4));
        let plain = ShardedTrajectoryStore::with_config(indexed_config(4));
        sealed.append_batch(fixes.clone());
        plain.append_batch(fixes);
        // Seal in two sweeps to exercise multi-segment vessels.
        sealed.seal_before(Timestamp::from_mins(150));
        let outcome = sealed.seal_before(Timestamp::from_mins(300));
        assert!(outcome.fixes > 0);
        let stats = sealed.tier_stats();
        assert!(stats.cold_fixes > 0 && stats.cold_segments > 0);

        assert_eq!(sealed.len(), plain.len());
        assert_eq!(sealed.vessels(), plain.vessels());
        assert_eq!(sealed.vessel_count(), plain.vessel_count());
        for id in plain.vessels() {
            assert_eq!(sealed.trajectory(id), plain.trajectory(id), "trajectory {id}");
            let (a, b) = (Timestamp::from_mins(100), Timestamp::from_mins(260));
            assert_eq!(sealed.range(id, a, b), plain.range(id, a, b), "range {id}");
            for t in [0i64, 149, 150, 250, 500] {
                let t = Timestamp::from_mins(t);
                assert_eq!(sealed.latest_at(id, t), plain.latest_at(id, t), "latest {id} {t}");
                assert_eq!(sealed.position_at(id, t), plain.position_at(id, t), "pos {id} {t}");
            }
        }
        let area = BoundingBox::new(42.4, 3.4, 43.6, 5.6);
        let (from, to) = (Timestamp::from_mins(50), Timestamp::from_mins(280));
        assert_eq!(sealed.window(&area, from, to), plain.window(&area, from, to));
        let q = Position::new(43.1, 4.7);
        let t = Timestamp::from_mins(400);
        assert_eq!(sealed.knn(q, t, 10), plain.knn(q, t, 10));
    }

    #[test]
    fn lossy_sealing_shrinks_bytes_within_bound() {
        let config = StoreConfig {
            shards: 2,
            seal: SegmentConfig {
                tolerance_m: 100.0,
                max_span: 2 * 60 * MINUTE,
                ..SegmentConfig::default()
            },
            ..StoreConfig::default()
        };
        let store = ShardedTrajectoryStore::with_config(config);
        // A smooth eastbound track: highly threshold-compressible.
        let start = fix(3, 0, 43.0, 3.0);
        for i in 0..600i64 {
            let t = Timestamp::from_mins(i);
            store.append(Fix { t, pos: start.dead_reckon(t), ..start });
        }
        let hot_before = store.tier_stats().hot_bytes;
        let outcome = store.seal_before(Timestamp::from_mins(600));
        assert!(outcome.fixes > 500);
        let stats = store.tier_stats();
        assert!(stats.cold_bytes * 5 < hot_before, "cold {} hot {hot_before}", stats.cold_bytes);
        // The recorded bound is honoured by every decoded fix.
        let decoded = store.trajectory(3).unwrap();
        assert!(decoded.len() < 100, "synopsis should be small, got {}", decoded.len());
        store.fold_tiers((), |(), _, cold| {
            for seg in cold.iter_segments() {
                assert!(seg.error_bound_m() >= 100.0);
            }
        });
    }

    #[test]
    fn fold_shards_visits_everything() {
        let store = ShardedTrajectoryStore::with_shards(6);
        for id in 1..30u32 {
            store.append(fix(id, 0, 43.0, 5.0));
        }
        let total = store.fold_shards(0usize, |acc, s| acc + s.len());
        assert_eq!(total, 29);
    }
}
