//! Thread-safe wrapper around the trajectory store.
//!
//! The live pipeline writes from ingest workers while analytics read
//! concurrently; `parking_lot::RwLock` keeps readers cheap.

use crate::trajstore::TrajectoryStore;
use mda_geo::{Fix, Position, Timestamp, VesselId};
use parking_lot::RwLock;
use std::sync::Arc;

/// A cloneable handle to a shared trajectory store.
#[derive(Debug, Clone, Default)]
pub struct SharedTrajectoryStore {
    inner: Arc<RwLock<TrajectoryStore>>,
}

impl SharedTrajectoryStore {
    /// New empty shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a fix.
    pub fn append(&self, fix: Fix) {
        self.inner.write().append(fix);
    }

    /// Total stored fixes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Number of distinct vessels.
    pub fn vessel_count(&self) -> usize {
        self.inner.read().vessel_count()
    }

    /// Copy of a vessel's fixes in `[from, to]`.
    pub fn range(&self, id: VesselId, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        self.inner.read().range(id, from, to).to_vec()
    }

    /// Copy of a vessel's whole trajectory.
    pub fn trajectory(&self, id: VesselId) -> Option<Vec<Fix>> {
        self.inner.read().trajectory(id).map(<[Fix]>::to_vec)
    }

    /// Interpolated position at `t`.
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Option<Position> {
        self.inner.read().position_at(id, t)
    }

    /// Run a closure with read access to the underlying store.
    pub fn with_read<R>(&self, f: impl FnOnce(&TrajectoryStore) -> R) -> R {
        f(&self.inner.read())
    }

    /// Compact one vessel's trajectory.
    pub fn compact(&self, id: VesselId, keep: impl Fn(&[Fix]) -> Vec<Fix>) -> usize {
        self.inner.write().compact(id, keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::Position;
    use std::thread;

    fn fix(id: u32, t_s: i64) -> Fix {
        Fix::new(id, Timestamp::from_secs(t_s), Position::new(43.0, 5.0), 10.0, 0.0)
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let store = SharedTrajectoryStore::new();
        thread::scope(|s| {
            for w in 0..4u32 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        store.append(fix(w + 1, i));
                    }
                });
            }
            let reader = store.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let _ = reader.len();
                    let _ = reader.vessel_count();
                }
            });
        });
        assert_eq!(store.len(), 1_000);
        assert_eq!(store.vessel_count(), 4);
    }

    #[test]
    fn queries_through_handle() {
        let store = SharedTrajectoryStore::new();
        for i in 0..10 {
            store.append(fix(1, i * 60));
        }
        assert_eq!(store.range(1, Timestamp::from_secs(120), Timestamp::from_secs(300)).len(), 4);
        assert!(store.position_at(1, Timestamp::from_secs(90)).is_some());
        assert_eq!(store.trajectory(1).unwrap().len(), 10);
        let removed = store.compact(1, |f| f.iter().step_by(2).copied().collect());
        assert_eq!(removed, 5);
        let total = store.with_read(|s| s.len());
        assert_eq!(total, 5);
    }
}
