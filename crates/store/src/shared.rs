//! Thread-safe handle to the trajectory store used by the live
//! pipeline.
//!
//! Historically this was a single `RwLock<TrajectoryStore>`, which
//! serialized every ingest worker through one global writer lock. The
//! store is now lock-striped and vessel-hash-sharded (see
//! [`crate::shards`] for the design and its ordering guarantees); this
//! module keeps the established name as the pipeline-facing handle.

use crate::shards::ShardedTrajectoryStore;

/// A cloneable handle to a shared (sharded, lock-striped) trajectory
/// store. Alias of [`ShardedTrajectoryStore`]; see its docs for the
/// full API, configuration and guarantees.
pub type SharedTrajectoryStore = ShardedTrajectoryStore;

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::{Fix, Position, Timestamp};
    use std::thread;

    fn fix(id: u32, t_s: i64) -> Fix {
        Fix::new(id, Timestamp::from_secs(t_s), Position::new(43.0, 5.0), 10.0, 0.0)
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let store = SharedTrajectoryStore::new();
        thread::scope(|s| {
            for w in 0..4u32 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        store.append(fix(w + 1, i));
                    }
                });
            }
            let reader = store.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let _ = reader.len();
                    let _ = reader.vessel_count();
                }
            });
        });
        assert_eq!(store.len(), 1_000);
        assert_eq!(store.vessel_count(), 4);
    }

    #[test]
    fn queries_through_handle() {
        let store = SharedTrajectoryStore::new();
        for i in 0..10 {
            store.append(fix(1, i * 60));
        }
        assert_eq!(store.range(1, Timestamp::from_secs(120), Timestamp::from_secs(300)).len(), 4);
        assert!(store.position_at(1, Timestamp::from_secs(90)).is_some());
        assert_eq!(store.trajectory(1).unwrap().len(), 10);
        let removed = store.compact(1, |f| f.iter().step_by(2).copied().collect());
        assert_eq!(removed, 5);
        assert_eq!(store.len(), 5);
        assert_eq!(store.vessels(), vec![1]);
    }
}
