//! Scenario assembly: reproducible multi-sensor maritime worlds.
//!
//! [`Scenario::generate`] produces a [`SimOutput`]: ground-truth tracks
//! for every vessel plus the observed streams (AIS with reception
//! effects and labelled corruption, radar plots, VMS reports), all
//! deterministic in the seed.

use crate::corruption::{carve_episodes, corrupt_static, CorruptionLabel, Episode, SpoofOffset};
use crate::kinematics::VesselMotion;
use crate::receivers::{
    ais_report_interval, vms_poll, AisReception, RadarPlot, RadarStation, VmsReport, VMS_PERIOD,
};
use crate::vessel::{Behavior, VesselSpec};
use crate::weather::WeatherField;
use crate::world::World;
use mda_ais::messages::{AisMessage, NavigationalStatus, PositionReport, ShipType};
use mda_geo::distance::destination;
use mda_geo::{DurationMs, Fix, Position, Timestamp, VesselId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which prebuilt world a scenario runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// Gulf of Lion regional world (all experiments except Figure 1).
    GulfOfLion,
    /// Global trade-lane world (Figure 1).
    Global,
}

/// Scenario parameters. Defaults encode the paper's quantitative
/// figures.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// RNG seed: same seed, same scenario.
    pub seed: u64,
    /// Number of vessels.
    pub n_vessels: usize,
    /// Scenario duration.
    pub duration: DurationMs,
    /// Ground-truth time step.
    pub step: DurationMs,
    /// Which world to use.
    pub region: Region,
    /// Fraction of ships that go dark at all (paper: 27%).
    pub dark_ship_fraction: f64,
    /// Fraction of time those ships are dark (paper: ≥10%).
    pub dark_time_fraction: f64,
    /// Fraction of ships that GPS-spoof for part of the run.
    pub spoof_fraction: f64,
    /// Fraction of ships that commit identity fraud.
    pub identity_fraud_fraction: f64,
    /// Static-message corruption rate (paper: ~5%).
    pub static_error_rate: f64,
    /// Generate coastal radar plots.
    pub with_radar: bool,
    /// Generate VMS reports for fishing vessels.
    pub with_vms: bool,
}

impl ScenarioConfig {
    /// A regional surveillance scenario with the paper's deception
    /// rates.
    pub fn regional(seed: u64, n_vessels: usize, duration: DurationMs) -> Self {
        Self {
            seed,
            n_vessels,
            duration,
            step: 10 * mda_geo::time::SECOND,
            region: Region::GulfOfLion,
            dark_ship_fraction: 0.27,
            dark_time_fraction: 0.15,
            spoof_fraction: 0.05,
            identity_fraud_fraction: 0.03,
            static_error_rate: 0.05,
            with_radar: true,
            with_vms: true,
        }
    }

    /// An honest regional scenario (no deception) for accuracy-focused
    /// experiments.
    pub fn regional_honest(seed: u64, n_vessels: usize, duration: DurationMs) -> Self {
        Self {
            dark_ship_fraction: 0.0,
            dark_time_fraction: 0.0,
            spoof_fraction: 0.0,
            identity_fraud_fraction: 0.0,
            static_error_rate: 0.0,
            ..Self::regional(seed, n_vessels, duration)
        }
    }

    /// The global satellite-coverage scenario of Figure 1.
    pub fn global(seed: u64, n_vessels: usize, duration: DurationMs) -> Self {
        Self {
            seed,
            n_vessels,
            duration,
            step: 60 * mda_geo::time::SECOND,
            region: Region::Global,
            dark_ship_fraction: 0.1,
            dark_time_fraction: 0.1,
            spoof_fraction: 0.0,
            identity_fraud_fraction: 0.0,
            static_error_rate: 0.05,
            with_radar: false,
            with_vms: false,
        }
    }
}

/// One received AIS message with provenance and ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AisObservation {
    /// Transmission (event) time.
    pub t_sent: Timestamp,
    /// Reception time (delivery order of the stream).
    pub t_received: Timestamp,
    /// True if received via satellite (delayed path).
    pub via_satellite: bool,
    /// The decoded message as the receiver sees it.
    pub msg: AisMessage,
    /// Ground-truth corruption label.
    pub label: CorruptionLabel,
    /// The vessel that *actually* transmitted (differs from
    /// `msg.mmsi()` under identity fraud).
    pub truth_id: VesselId,
}

/// Everything a scenario produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The world the scenario ran in.
    pub world: World,
    /// The configuration used.
    pub config: ScenarioConfig,
    /// Vessel specifications.
    pub vessels: Vec<VesselSpec>,
    /// Ground-truth fixes per vessel, in time order.
    pub truth: BTreeMap<VesselId, Vec<Fix>>,
    /// Received AIS observations, sorted by reception time.
    pub ais: Vec<AisObservation>,
    /// Anonymous radar plots, sorted by time.
    pub radar: Vec<RadarPlot>,
    /// VMS reports, sorted by time.
    pub vms: Vec<VmsReport>,
    /// Ground-truth dark episodes per vessel.
    pub dark_episodes: BTreeMap<VesselId, Vec<Episode>>,
    /// Ground-truth spoofing episodes per vessel.
    pub spoof_episodes: BTreeMap<VesselId, Vec<(Episode, SpoofOffset)>>,
    /// Ground-truth identity-fraud episodes per vessel.
    pub fraud_episodes: BTreeMap<VesselId, Vec<Episode>>,
    /// The weather field active during the scenario.
    pub weather: WeatherField,
}

impl SimOutput {
    /// Kinematic fixes as the *receiver* would extract them from the AIS
    /// stream (claimed identity, reception order).
    pub fn ais_fixes(&self) -> Vec<Fix> {
        self.ais.iter().filter_map(|o| o.msg.to_fix(o.t_sent)).collect()
    }

    /// Total number of ground-truth fixes.
    pub fn truth_len(&self) -> usize {
        self.truth.values().map(Vec::len).sum()
    }
}

/// Scenario generator.
pub struct Scenario;

impl Scenario {
    /// Generate a full scenario from a configuration.
    pub fn generate(config: ScenarioConfig) -> SimOutput {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let world = match config.region {
            Region::GulfOfLion => World::gulf_of_lion(),
            Region::Global => World::global_trade(),
        };
        let vessels = Self::mint_fleet(&config, &world, &mut rng);

        // Deception episodes.
        let mut dark_episodes = BTreeMap::new();
        let mut spoof_episodes = BTreeMap::new();
        let mut fraud_episodes = BTreeMap::new();
        for v in &vessels {
            if v.deception.dark_fraction > 0.0 {
                dark_episodes.insert(
                    v.mmsi,
                    carve_episodes(
                        Timestamp(0),
                        config.duration,
                        v.deception.dark_fraction,
                        2,
                        &mut rng,
                    ),
                );
            }
            if v.deception.gps_spoofing {
                let eps = carve_episodes(Timestamp(0), config.duration, 0.2, 1, &mut rng);
                spoof_episodes.insert(
                    v.mmsi,
                    eps.into_iter().map(|e| (e, SpoofOffset::random(&mut rng))).collect::<Vec<_>>(),
                );
            }
            if v.deception.cloned_mmsi.is_some() {
                fraud_episodes.insert(
                    v.mmsi,
                    carve_episodes(Timestamp(0), config.duration, 0.25, 1, &mut rng),
                );
            }
        }

        // Receivers.
        let reception = match config.region {
            Region::GulfOfLion => AisReception::regional(vec![
                world.ports[0].pos,
                world.ports[1].pos,
                world.ports[2].pos,
            ]),
            Region::Global => AisReception::satellite_only(0.55),
        };
        let radars: Vec<RadarStation> = if config.with_radar {
            vec![
                RadarStation::coastal(world.ports[0].pos),
                RadarStation::coastal(world.ports[1].pos),
            ]
        } else {
            Vec::new()
        };

        // Simulate.
        let mut motions: Vec<VesselMotion> = vessels
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let phase = (i as f64 * 0.618_034) % 1.0; // golden-ratio stagger
                VesselMotion::new(v.mmsi, &v.behavior, &world, phase)
            })
            .collect();

        let mut truth: BTreeMap<VesselId, Vec<Fix>> = BTreeMap::new();
        let mut ais: Vec<AisObservation> = Vec::new();
        let mut radar: Vec<RadarPlot> = Vec::new();
        let mut vms: Vec<VmsReport> = Vec::new();
        let mut next_position_report: Vec<Timestamp> =
            vessels.iter().map(|_| Timestamp(rng.gen_range(0..10_000))).collect();
        let mut next_static_report: Vec<Timestamp> = vessels
            .iter()
            .map(|_| Timestamp(rng.gen_range(0..30 * mda_geo::time::MINUTE)))
            .collect();
        let mut next_vms: Vec<Timestamp> =
            vessels.iter().map(|_| Timestamp(rng.gen_range(0..VMS_PERIOD))).collect();

        let steps = config.duration / config.step;
        for si in 0..steps {
            let t = Timestamp(si * config.step);
            for (vi, motion) in motions.iter_mut().enumerate() {
                let spec = &vessels[vi];
                let fix = motion.step(t, config.step, &mut rng);
                truth.entry(spec.mmsi).or_default().push(fix);

                let is_dark = dark_episodes
                    .get(&spec.mmsi)
                    .map(|eps| eps.iter().any(|e| e.contains(t)))
                    .unwrap_or(false);

                // AIS position reports.
                if t >= next_position_report[vi] {
                    next_position_report[vi] = t + ais_report_interval(fix.sog_kn);
                    if !is_dark {
                        if let Some(obs) = Self::make_position_obs(
                            spec,
                            &fix,
                            &spoof_episodes,
                            &fraud_episodes,
                            &reception,
                            &mut rng,
                        ) {
                            ais.push(obs);
                        }
                    }
                }

                // AIS static reports (every ~30 min when transmitting).
                if t >= next_static_report[vi] {
                    next_static_report[vi] = t + 30 * mda_geo::time::MINUTE;
                    if !is_dark {
                        if let Some(obs) = Self::make_static_obs(
                            spec,
                            &fix,
                            config.static_error_rate,
                            &reception,
                            &mut rng,
                        ) {
                            ais.push(obs);
                        }
                    }
                }

                // VMS (fishing vessels only; works while "dark" on AIS).
                if config.with_vms && spec.ship_type == ShipType::Fishing && t >= next_vms[vi] {
                    next_vms[vi] = t + VMS_PERIOD;
                    vms.push(vms_poll(&fix, &mut rng));
                }
            }

            // Radar scans (aligned to scan periods).
            for station in &radars {
                if t.millis() % station.scan_period == 0 {
                    for motion in &motions {
                        if let Some(pos) = station.observe(motion.position(), &mut rng) {
                            radar.push(RadarPlot { t, pos, truth_id: motion_id(motion) });
                        }
                    }
                }
            }
        }

        ais.sort_by_key(|o| o.t_received);
        SimOutput {
            world,
            config,
            vessels,
            truth,
            ais,
            radar,
            vms,
            dark_episodes,
            spoof_episodes,
            fraud_episodes,
            weather: WeatherField::new(config.seed),
        }
    }

    fn mint_fleet(config: &ScenarioConfig, world: &World, rng: &mut StdRng) -> Vec<VesselSpec> {
        let n = config.n_vessels;
        let mut vessels = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let roll = rng.gen_range(0.0..1.0);
            let (ship_type, behavior) = if roll < 0.45 {
                let lane = rng.gen_range(0..world.lanes.len());
                let st = if rng.gen_bool(0.6) { ShipType::Cargo } else { ShipType::Tanker };
                (
                    st,
                    Behavior::LaneTransit {
                        lane,
                        speed_kn: rng.gen_range(10.0..18.0),
                        dwell_min: rng.gen_range(45..180),
                    },
                )
            } else if roll < 0.65 {
                let lane = rng.gen_range(0..world.lanes.len());
                (
                    ShipType::Passenger,
                    Behavior::LaneTransit {
                        lane,
                        speed_kn: rng.gen_range(18.0..26.0),
                        dwell_min: rng.gen_range(20..60),
                    },
                )
            } else if roll < 0.9 && config.region == Region::GulfOfLion {
                let ground = Position::new(rng.gen_range(42.3..43.0), rng.gen_range(3.8..5.8));
                (
                    ShipType::Fishing,
                    Behavior::Fishing {
                        ground,
                        radius_m: rng.gen_range(2_000.0..6_000.0),
                        transit_kn: rng.gen_range(7.0..11.0),
                        fishing_kn: rng.gen_range(2.0..4.5),
                        home_port: rng.gen_range(0..world.ports.len()),
                    },
                )
            } else if config.region == Region::Global {
                let lane = rng.gen_range(0..world.lanes.len());
                (
                    ShipType::Cargo,
                    Behavior::LaneTransit {
                        lane,
                        speed_kn: rng.gen_range(12.0..20.0),
                        dwell_min: rng.gen_range(120..600),
                    },
                )
            } else {
                let center = Position::new(rng.gen_range(42.3..43.2), rng.gen_range(3.5..6.0));
                (
                    ShipType::Other,
                    Behavior::Loiter { center, radius_m: rng.gen_range(1_000.0..4_000.0) },
                )
            };
            vessels.push(VesselSpec::mint(i + 1, ship_type, behavior, rng));
        }

        // Assign deception profiles.
        let n_dark = (n as f64 * config.dark_ship_fraction).round() as usize;
        let n_spoof = (n as f64 * config.spoof_fraction).round() as usize;
        let n_fraud = (n as f64 * config.identity_fraud_fraction).round() as usize;
        for vessel in vessels.iter_mut().take(n_dark.min(n)) {
            vessel.deception.dark_fraction = config.dark_time_fraction;
        }
        for i in 0..n_spoof.min(n) {
            let idx = n.saturating_sub(1 + i);
            vessels[idx].deception.gps_spoofing = true;
        }
        for i in 0..n_fraud.min(n.saturating_sub(1)) {
            let idx = n / 2 + i;
            if idx < n {
                // Steal the identity of the "next" vessel.
                let victim = vessels[(idx + 1) % n].mmsi;
                vessels[idx].deception.cloned_mmsi = Some(victim);
            }
        }
        vessels
    }

    fn make_position_obs(
        spec: &VesselSpec,
        fix: &Fix,
        spoof_episodes: &BTreeMap<VesselId, Vec<(Episode, SpoofOffset)>>,
        fraud_episodes: &BTreeMap<VesselId, Vec<Episode>>,
        reception: &AisReception,
        rng: &mut StdRng,
    ) -> Option<AisObservation> {
        // GPS noise ~10 m (the accuracy figure of §2.5).
        let mut pos = destination(fix.pos, rng.gen_range(0.0..360.0), rng.gen_range(0.0..15.0));
        let mut label = CorruptionLabel::Clean;
        let mut mmsi = spec.mmsi;

        if let Some(eps) = spoof_episodes.get(&spec.mmsi) {
            if let Some((_, off)) = eps.iter().find(|(e, _)| e.contains(fix.t)) {
                pos = off.apply(pos);
                label = CorruptionLabel::Spoofed;
            }
        }
        if let Some(eps) = fraud_episodes.get(&spec.mmsi) {
            if eps.iter().any(|e| e.contains(fix.t)) {
                if let Some(cloned) = spec.deception.cloned_mmsi {
                    mmsi = cloned;
                    label = CorruptionLabel::IdentityFraud;
                }
            }
        }

        let (t_received, via_satellite) = reception.receive(fix.t, fix.pos, rng)?;
        let status = if fix.sog_kn < 0.5 {
            NavigationalStatus::Moored
        } else if spec.ship_type == ShipType::Fishing && fix.sog_kn < 5.0 {
            NavigationalStatus::EngagedInFishing
        } else {
            NavigationalStatus::UnderWayUsingEngine
        };
        let msg = AisMessage::Position(PositionReport {
            msg_type: 1,
            repeat: 0,
            mmsi,
            status,
            rot_deg_min: None,
            sog_kn: Some((fix.sog_kn * 10.0).round() / 10.0),
            position_accuracy: true,
            pos: Some(pos),
            cog_deg: Some((fix.cog_deg * 10.0).round() / 10.0),
            heading_deg: Some(fix.cog_deg.round() as u16 % 360),
            utc_second: ((fix.t.millis() / 1_000) % 60) as u8,
        });
        Some(AisObservation {
            t_sent: fix.t,
            t_received,
            via_satellite,
            msg,
            label,
            truth_id: spec.mmsi,
        })
    }

    fn make_static_obs(
        spec: &VesselSpec,
        fix: &Fix,
        error_rate: f64,
        reception: &AisReception,
        rng: &mut StdRng,
    ) -> Option<AisObservation> {
        let mut sv = spec.static_voyage("MARSEILLE");
        let label = corrupt_static(&mut sv, error_rate, rng);
        let (t_received, via_satellite) = reception.receive(fix.t, fix.pos, rng)?;
        Some(AisObservation {
            t_sent: fix.t,
            t_received,
            via_satellite,
            msg: AisMessage::StaticVoyage(sv),
            label,
            truth_id: spec.mmsi,
        })
    }
}

fn motion_id(m: &VesselMotion) -> VesselId {
    // VesselMotion does not expose its id publicly; reconstruct from the
    // fix it would produce. Cheap accessor to avoid a pub field.
    m.id()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::HOUR;

    fn small() -> SimOutput {
        Scenario::generate(ScenarioConfig::regional(42, 20, 2 * HOUR))
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Scenario::generate(ScenarioConfig::regional(7, 10, HOUR));
        let b = Scenario::generate(ScenarioConfig::regional(7, 10, HOUR));
        assert_eq!(a.ais.len(), b.ais.len());
        assert_eq!(a.radar.len(), b.radar.len());
        assert_eq!(a.ais.first().map(|o| o.t_received), b.ais.first().map(|o| o.t_received));
        let c = Scenario::generate(ScenarioConfig::regional(8, 10, HOUR));
        assert_ne!(a.ais.len(), c.ais.len());
    }

    #[test]
    fn output_is_arrival_sorted_and_nonempty() {
        let out = small();
        assert!(!out.ais.is_empty());
        assert!(!out.radar.is_empty());
        assert!(!out.vms.is_empty());
        for w in out.ais.windows(2) {
            assert!(w[0].t_received <= w[1].t_received);
        }
        assert_eq!(out.truth.len(), 20);
        assert!(out.truth_len() > 10_000);
    }

    #[test]
    fn satellite_messages_arrive_late_and_out_of_event_order() {
        let out = small();
        let sat: Vec<_> = out.ais.iter().filter(|o| o.via_satellite).collect();
        assert!(!sat.is_empty(), "some traffic must be offshore");
        for o in &sat {
            assert!(o.t_received - o.t_sent >= 5 * mda_geo::time::MINUTE);
        }
        // The merged stream is NOT event-time sorted (disorder exists).
        let disordered = out.ais.windows(2).any(|w| w[0].t_sent > w[1].t_sent);
        assert!(disordered, "satellite batching must create event-time disorder");
    }

    #[test]
    fn deception_rates_roughly_match_config() {
        let out = Scenario::generate(ScenarioConfig::regional(3, 100, HOUR));
        let dark_ships = out.dark_episodes.len();
        assert!((20..=35).contains(&dark_ships), "dark ships {dark_ships}");
        assert_eq!(out.spoof_episodes.len(), 5);
        assert_eq!(out.fraud_episodes.len(), 3);

        // Static error rate ~5%.
        let statics: Vec<_> =
            out.ais.iter().filter(|o| matches!(o.msg, AisMessage::StaticVoyage(_))).collect();
        let bad = statics.iter().filter(|o| o.label == CorruptionLabel::StaticError).count();
        let rate = bad as f64 / statics.len().max(1) as f64;
        assert!((0.01..0.12).contains(&rate), "static error rate {rate}");
    }

    #[test]
    fn dark_vessels_stop_transmitting_but_truth_continues() {
        let out = small();
        let (dark_id, eps) = out.dark_episodes.iter().next().expect("some dark vessel");
        let ep = eps[0];
        assert!(ep.duration() > 0);
        // No AIS position transmission during the episode...
        let tx_during = out
            .ais
            .iter()
            .filter(|o| o.truth_id == *dark_id && matches!(o.msg, AisMessage::Position(_)))
            .filter(|o| ep.contains(o.t_sent))
            .count();
        assert_eq!(tx_during, 0, "dark vessel transmitted positions");
        // ...while ground truth continues.
        let truth_during = out.truth[dark_id].iter().filter(|f| ep.contains(f.t)).count();
        assert!(truth_during > 0);
    }

    #[test]
    fn identity_fraud_changes_claimed_mmsi() {
        let out = Scenario::generate(ScenarioConfig::regional(5, 40, 3 * HOUR));
        let fraudulent: Vec<_> =
            out.ais.iter().filter(|o| o.label == CorruptionLabel::IdentityFraud).collect();
        assert!(!fraudulent.is_empty(), "fraud episodes must produce messages");
        for o in &fraudulent {
            assert_ne!(o.msg.mmsi(), o.truth_id, "claimed MMSI differs from truth");
        }
    }

    #[test]
    fn spoofed_positions_are_far_from_truth() {
        let out = Scenario::generate(ScenarioConfig::regional(5, 40, 3 * HOUR));
        let spoofed: Vec<_> =
            out.ais.iter().filter(|o| o.label == CorruptionLabel::Spoofed).collect();
        assert!(!spoofed.is_empty());
        for o in spoofed.iter().take(20) {
            let truth_fix =
                out.truth[&o.truth_id].iter().min_by_key(|f| (f.t - o.t_sent).abs()).unwrap();
            let d =
                mda_geo::distance::haversine_m(o.msg.to_fix(o.t_sent).unwrap().pos, truth_fix.pos);
            assert!(d > 15_000.0, "spoof displacement only {d} m");
        }
    }

    #[test]
    fn global_scenario_spans_world() {
        let out = Scenario::generate(ScenarioConfig::global(11, 60, 2 * HOUR));
        assert!(out.radar.is_empty());
        let fixes = out.ais_fixes();
        assert!(!fixes.is_empty());
        let lons: Vec<f64> = fixes.iter().map(|f| f.pos.lon).collect();
        let min = lons.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lons.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 90.0, "coverage should span oceans: {min}..{max}");
        // Everything arrives via satellite there.
        assert!(out.ais.iter().all(|o| o.via_satellite));
    }

    #[test]
    fn vms_only_from_fishing_vessels() {
        let out = small();
        let fishing: std::collections::HashSet<u32> = out
            .vessels
            .iter()
            .filter(|v| v.ship_type == ShipType::Fishing)
            .map(|v| v.mmsi)
            .collect();
        assert!(!out.vms.is_empty());
        for r in &out.vms {
            assert!(fishing.contains(&r.id));
        }
    }
}
