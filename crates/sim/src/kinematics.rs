//! Vessel motion: waypoint following with turn-rate limits, port dwell,
//! fishing/loitering random walks.
//!
//! The stepper produces ground-truth [`Fix`]es at a fixed cadence; the
//! receiver models in [`crate::receivers`] decide what of that truth is
//! ever observed.

use crate::vessel::Behavior;
use crate::world::World;
use mda_geo::distance::{destination, haversine_m, initial_bearing_deg};
use mda_geo::units::norm_deg_360;
use mda_geo::{DurationMs, Fix, Position, Timestamp, VesselId};
use rand::Rng;

/// Maximum heading change, degrees per minute.
const MAX_TURN_RATE: f64 = 60.0;
/// Maximum speed change, knots per minute.
const MAX_ACCEL: f64 = 6.0;
/// Duration of one fishing episode.
const FISHING_EPISODE: DurationMs = 3 * mda_geo::time::HOUR;

#[derive(Debug, Clone)]
enum Mode {
    /// Following `route`, heading for `route[next]`.
    Underway { route: Vec<Position>, next: usize, then: AfterRoute },
    /// Stationary until `until`.
    Dwell { until: Timestamp, then: AfterDwell },
    /// Random-walking inside a disc until `until` (fishing) or forever
    /// (loiter).
    Walk { center: Position, radius_m: f64, until: Option<Timestamp> },
}

#[derive(Debug, Clone, Copy)]
enum AfterRoute {
    /// Dwell then sail the reverse route.
    TurnAround { dwell: DurationMs },
    /// Begin a fishing episode at the ground.
    Fish { radius_m: f64 },
}

#[derive(Debug, Clone, Copy)]
enum AfterDwell {
    ReverseRoute,
}

/// Ground-truth motion state of one vessel.
#[derive(Debug, Clone)]
pub struct VesselMotion {
    id: VesselId,
    pos: Position,
    sog_kn: f64,
    cog_deg: f64,
    cruise_kn: f64,
    /// Speed used while in a fishing Walk episode.
    fishing_kn: f64,
    mode: Mode,
    /// Stashed route for fishing vessels returning home.
    home_route: Option<Vec<Position>>,
}

impl VesselMotion {
    /// Initialise motion from a behaviour profile. `phase` in `[0,1)`
    /// staggers vessels along their routes so a fleet does not sail in
    /// lockstep.
    pub fn new(id: VesselId, behavior: &Behavior, world: &World, phase: f64) -> Self {
        match behavior {
            Behavior::LaneTransit { lane, speed_kn, dwell_min } => {
                let mut route = world.lanes[*lane].waypoints.clone();
                // Odd phases sail the lane backwards.
                if phase >= 0.5 {
                    route.reverse();
                }
                let leg = ((phase * 2.0) % 1.0 * (route.len() - 1) as f64) as usize;
                let start = route[leg];
                Self {
                    id,
                    pos: start,
                    sog_kn: *speed_kn,
                    cog_deg: initial_bearing_deg(start, route[leg + 1]),
                    cruise_kn: *speed_kn,
                    fishing_kn: 3.0,
                    mode: Mode::Underway {
                        route,
                        next: leg + 1,
                        then: AfterRoute::TurnAround { dwell: dwell_min * mda_geo::time::MINUTE },
                    },
                    home_route: None,
                }
            }
            Behavior::Fishing { ground, radius_m, transit_kn, fishing_kn, home_port } => {
                let home = world.ports[*home_port].pos;
                let route = vec![home, *ground];
                Self {
                    id,
                    pos: home,
                    sog_kn: *transit_kn,
                    cog_deg: initial_bearing_deg(home, *ground),
                    cruise_kn: *transit_kn,
                    fishing_kn: *fishing_kn,
                    mode: Mode::Underway {
                        route: route.clone(),
                        next: 1,
                        then: AfterRoute::Fish { radius_m: *radius_m },
                    },
                    home_route: Some({
                        let mut r = route;
                        r.reverse();
                        r
                    }),
                }
            }
            Behavior::Loiter { center, radius_m } => Self {
                id,
                pos: *center,
                sog_kn: 2.0,
                cog_deg: phase * 360.0,
                cruise_kn: 2.0,
                fishing_kn: 3.0,
                mode: Mode::Walk { center: *center, radius_m: *radius_m, until: None },
                home_route: None,
            },
        }
    }

    /// Advance the vessel by `dt` milliseconds to time `t` and return
    /// the ground-truth fix at `t`.
    pub fn step(&mut self, t: Timestamp, dt: DurationMs, rng: &mut impl Rng) -> Fix {
        let dt_min = dt as f64 / 60_000.0;
        match &mut self.mode {
            Mode::Underway { route, next, then } => {
                let target = route[*next];
                let dist_to_target = haversine_m(self.pos, target);
                let step_m = mda_geo::units::knots_to_mps(self.sog_kn) * (dt as f64 / 1_000.0);
                if dist_to_target <= step_m.max(50.0) {
                    // Waypoint reached.
                    self.pos = target;
                    if *next + 1 < route.len() {
                        *next += 1;
                        self.cog_deg = initial_bearing_deg(self.pos, route[*next]);
                    } else {
                        // Route finished.
                        match *then {
                            AfterRoute::TurnAround { dwell } => {
                                let mut reversed = route.clone();
                                reversed.reverse();
                                self.sog_kn = 0.0;
                                self.mode = Mode::Dwell {
                                    until: t + dwell,
                                    then: AfterDwell::ReverseRoute,
                                };
                                self.home_route = Some(reversed);
                            }
                            AfterRoute::Fish { radius_m } => {
                                self.sog_kn = self.fishing_kn;
                                self.mode = Mode::Walk {
                                    center: self.pos,
                                    radius_m,
                                    until: Some(t + FISHING_EPISODE),
                                };
                            }
                        }
                    }
                } else {
                    // Steer toward the target with limited turn rate.
                    let want = initial_bearing_deg(self.pos, target);
                    self.turn_towards(want, dt_min);
                    self.accelerate_towards(self.cruise_kn, dt_min);
                    self.pos = destination(self.pos, self.cog_deg, step_m);
                }
            }
            Mode::Dwell { until, then } => {
                self.sog_kn = 0.0;
                if t >= *until {
                    match then {
                        AfterDwell::ReverseRoute => {
                            let route =
                                self.home_route.take().unwrap_or_else(|| vec![self.pos, self.pos]);
                            let next = 1.min(route.len() - 1);
                            self.cog_deg = initial_bearing_deg(self.pos, route[next]);
                            self.sog_kn = self.cruise_kn;
                            self.mode = Mode::Underway {
                                route,
                                next,
                                then: AfterRoute::TurnAround { dwell: 30 * mda_geo::time::MINUTE },
                            };
                        }
                    }
                }
            }
            Mode::Walk { center, radius_m, until } => {
                // Finished fishing: head home.
                if let Some(end) = until {
                    if t >= *end {
                        if let Some(route) = self.home_route.take() {
                            self.cog_deg = initial_bearing_deg(self.pos, *route.last().unwrap());
                            self.sog_kn = self.cruise_kn;
                            self.mode = Mode::Underway {
                                route,
                                next: 1,
                                then: AfterRoute::TurnAround {
                                    dwell: 8 * 60 * mda_geo::time::MINUTE,
                                },
                            };
                            return self.fix(t);
                        }
                        *until = None;
                    }
                }
                // Random walk: wander, curving back when near the edge.
                let speed = if until.is_some() { self.fishing_kn } else { self.cruise_kn };
                self.sog_kn = speed.max(0.5);
                let step_m = mda_geo::units::knots_to_mps(self.sog_kn) * (dt as f64 / 1_000.0);
                let to_center = initial_bearing_deg(self.pos, *center);
                let off_center = haversine_m(self.pos, *center);
                let want = if off_center > *radius_m {
                    to_center
                } else {
                    norm_deg_360(self.cog_deg + rng.gen_range(-30.0..30.0))
                };
                self.turn_towards(want, dt_min);
                self.pos = destination(self.pos, self.cog_deg, step_m);
            }
        }
        self.fix(t)
    }

    fn turn_towards(&mut self, want_deg: f64, dt_min: f64) {
        let max = MAX_TURN_RATE * dt_min;
        let delta = mda_geo::units::norm_deg_180(want_deg - self.cog_deg);
        let change = delta.clamp(-max, max);
        self.cog_deg = norm_deg_360(self.cog_deg + change);
    }

    fn accelerate_towards(&mut self, want_kn: f64, dt_min: f64) {
        let max = MAX_ACCEL * dt_min;
        let delta = (want_kn - self.sog_kn).clamp(-max, max);
        self.sog_kn += delta;
    }

    fn fix(&self, t: Timestamp) -> Fix {
        Fix::new(self.id, t, self.pos, self.sog_kn, self.cog_deg)
    }

    /// The vessel this motion state belongs to.
    pub fn id(&self) -> VesselId {
        self.id
    }

    /// Current true position.
    pub fn position(&self) -> Position {
        self.pos
    }

    /// Current true speed in knots.
    pub fn speed_kn(&self) -> f64 {
        self.sog_kn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vessel::Behavior;
    use rand::{rngs::StdRng, SeedableRng};

    fn world() -> World {
        World::gulf_of_lion()
    }

    fn run(mut m: VesselMotion, hours: i64, dt_s: i64) -> Vec<Fix> {
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        let steps = hours * 3600 / dt_s;
        for i in 0..steps {
            let t = Timestamp::from_secs(i * dt_s);
            out.push(m.step(t, dt_s * 1000, &mut rng));
        }
        out
    }

    #[test]
    fn transit_reaches_destination_and_dwells() {
        let w = world();
        let behavior = Behavior::LaneTransit { lane: 0, speed_kn: 15.0, dwell_min: 60 };
        let m = VesselMotion::new(1, &behavior, &w, 0.0);
        let fixes = run(m, 6, 30);
        // Marseille–Toulon ~ 30 NM: at 15 kn reached in ~2h, then dwell.
        let toulon = w.ports[1].pos;
        let arrived = fixes.iter().any(|f| haversine_m(f.pos, toulon) < 500.0);
        assert!(arrived, "vessel never arrived");
        let stopped = fixes.iter().filter(|f| f.sog_kn == 0.0).count();
        assert!(stopped > 10, "vessel never dwelled");
        // All positions remain in the region.
        for f in &fixes {
            assert!(w.bounds.contains(f.pos), "left the region at {}", f.pos);
        }
    }

    #[test]
    fn transit_round_trips() {
        let w = world();
        let behavior = Behavior::LaneTransit { lane: 0, speed_kn: 18.0, dwell_min: 30 };
        let m = VesselMotion::new(1, &behavior, &w, 0.0);
        let fixes = run(m, 12, 30);
        let marseille = w.ports[0].pos;
        // After going out and dwelling it must head back toward Marseille.
        let last_quarter = &fixes[fixes.len() * 3 / 4..];
        let came_back = last_quarter.iter().any(|f| haversine_m(f.pos, marseille) < 3_000.0);
        assert!(came_back, "vessel never returned");
    }

    #[test]
    fn phase_staggers_start_positions() {
        let w = world();
        let behavior = Behavior::LaneTransit { lane: 2, speed_kn: 12.0, dwell_min: 30 };
        let a = VesselMotion::new(1, &behavior, &w, 0.0);
        let b = VesselMotion::new(2, &behavior, &w, 0.3);
        let c = VesselMotion::new(3, &behavior, &w, 0.7);
        assert!(haversine_m(a.position(), b.position()) > 1_000.0);
        assert!(haversine_m(a.position(), c.position()) > 1_000.0);
    }

    #[test]
    fn fishing_vessel_fishes_then_returns() {
        let w = world();
        let ground = Position::new(42.7, 4.5);
        let behavior = Behavior::Fishing {
            ground,
            radius_m: 3_000.0,
            transit_kn: 9.0,
            fishing_kn: 3.0,
            home_port: 0,
        };
        let m = VesselMotion::new(9, &behavior, &w, 0.0);
        let fixes = run(m, 20, 60);
        // Some fixes slow near the ground.
        let fishing: Vec<&Fix> = fixes
            .iter()
            .filter(|f| haversine_m(f.pos, ground) < 5_000.0 && f.sog_kn < 5.0)
            .collect();
        assert!(fishing.len() > 30, "fished for {} fixes", fishing.len());
        // Eventually back near home.
        let home = w.ports[0].pos;
        let back = fixes[fixes.len() - 60..].iter().any(|f| haversine_m(f.pos, home) < 2_000.0);
        assert!(back, "never returned home");
    }

    #[test]
    fn loiterer_stays_in_disc() {
        let center = Position::new(42.6, 4.9);
        let behavior = Behavior::Loiter { center, radius_m: 2_000.0 };
        let m = VesselMotion::new(3, &behavior, &world(), 0.25);
        let fixes = run(m, 6, 30);
        for f in &fixes {
            assert!(
                haversine_m(f.pos, center) < 4_000.0,
                "wandered {} m away",
                haversine_m(f.pos, center)
            );
        }
        // And actually moves.
        let moved = haversine_m(fixes[0].pos, fixes[40].pos);
        assert!(moved > 100.0);
    }

    #[test]
    fn speeds_and_courses_are_sane() {
        let w = world();
        let behavior = Behavior::LaneTransit { lane: 1, speed_kn: 14.0, dwell_min: 45 };
        let m = VesselMotion::new(4, &behavior, &w, 0.1);
        let fixes = run(m, 8, 30);
        for f in &fixes {
            assert!(f.sog_kn >= 0.0 && f.sog_kn <= 30.0);
            assert!((0.0..360.0).contains(&f.cog_deg), "cog {}", f.cog_deg);
        }
    }
}
