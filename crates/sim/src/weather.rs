//! Synthetic met-ocean fields.
//!
//! §2.5 describes the resolution mismatch of contextual sources: "freely
//! available meteorologic data have spatial resolution of few kilometres
//! ... provided with hourly and daily means". The synthetic field here
//! is smooth in space and time (sums of drifting sinusoids), sampled
//! either continuously or as the hourly gridded product the enrichment
//! layer joins against.

use mda_geo::{BoundingBox, Position, Timestamp};
use serde::{Deserialize, Serialize};

/// Weather at one point: the variables the paper's use-cases need.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherSample {
    /// Wind speed, m/s.
    pub wind_mps: f64,
    /// Wind direction (from), degrees.
    pub wind_dir_deg: f64,
    /// Significant wave height, metres.
    pub wave_height_m: f64,
    /// Surface current speed, m/s.
    pub current_mps: f64,
}

/// A deterministic synthetic weather field parameterised by a seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherField {
    seed: f64,
}

impl WeatherField {
    /// Create a field; different seeds give different (but equally
    /// smooth) weather systems.
    pub fn new(seed: u64) -> Self {
        Self { seed: (seed % 1_000) as f64 * 0.37 }
    }

    /// Sample the field at a position and time.
    pub fn sample(&self, p: Position, t: Timestamp) -> WeatherSample {
        let th = t.as_secs_f64() / 3_600.0; // hours
        let (la, lo) = (p.lat, p.lon);
        let s = self.seed;
        // Smooth pseudo-random combinations; amplitudes tuned to
        // plausible Mediterranean ranges.
        let wind = 6.0
            + 4.0 * ((la * 0.8 + s).sin() * (lo * 0.6 - th * 0.15 + s).cos())
            + 2.0 * ((lo * 1.3 + th * 0.05).sin());
        let dir = 180.0 + 170.0 * ((la * 0.5 - lo * 0.4 + th * 0.02 + s).sin());
        let wave =
            (0.4 + wind.max(0.0) * 0.22 + 0.5 * ((la * 1.1 + lo * 0.9 - th * 0.1).cos())).max(0.1);
        let current = 0.2 + 0.15 * ((la * 2.0 - th * 0.08 + s).cos()).abs();
        WeatherSample {
            wind_mps: wind.clamp(0.0, 30.0),
            wind_dir_deg: mda_geo::units::norm_deg_360(dir),
            wave_height_m: wave.min(9.0),
            current_mps: current,
        }
    }

    /// The hourly gridded product: samples at cell centres of an
    /// `rows × cols` grid over `bounds`, at the top of the hour
    /// containing `t`. This is what the semantic-integration layer joins
    /// trajectories against (coarse in space *and* time, per §2.5).
    pub fn gridded(
        &self,
        bounds: &BoundingBox,
        rows: usize,
        cols: usize,
        t: Timestamp,
    ) -> Vec<(Position, WeatherSample)> {
        let hour = t.window_start(mda_geo::time::HOUR);
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let lat = bounds.min_lat + bounds.lat_span() * (r as f64 + 0.5) / rows as f64;
                let lon = bounds.min_lon + bounds.lon_span() * (c as f64 + 0.5) / cols as f64;
                let p = Position::new(lat, lon);
                out.push((p, self.sample(p, hour)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::{HOUR, MINUTE};

    #[test]
    fn samples_are_in_physical_ranges() {
        let f = WeatherField::new(7);
        for i in 0..200 {
            let p = Position::new(40.0 + (i % 20) as f64 * 0.3, 2.0 + (i / 20) as f64 * 0.5);
            let s = f.sample(p, Timestamp::from_secs(i * 600));
            assert!((0.0..=30.0).contains(&s.wind_mps));
            assert!((0.0..360.0).contains(&s.wind_dir_deg));
            assert!(s.wave_height_m > 0.0 && s.wave_height_m <= 9.0);
            assert!(s.current_mps >= 0.0 && s.current_mps < 2.0);
        }
    }

    #[test]
    fn field_is_smooth_in_space() {
        let f = WeatherField::new(1);
        let t = Timestamp::from_secs(3_600);
        let a = f.sample(Position::new(43.0, 5.0), t);
        let b = f.sample(Position::new(43.01, 5.01), t);
        assert!((a.wind_mps - b.wind_mps).abs() < 0.5, "1 km apart, similar wind");
    }

    #[test]
    fn field_is_smooth_in_time() {
        let f = WeatherField::new(1);
        let p = Position::new(43.0, 5.0);
        let a = f.sample(p, Timestamp::from_secs(0));
        let b = f.sample(p, Timestamp(10 * MINUTE));
        assert!((a.wind_mps - b.wind_mps).abs() < 1.0);
    }

    #[test]
    fn different_seeds_differ() {
        let t = Timestamp::from_secs(0);
        let p = Position::new(43.0, 5.0);
        let a = WeatherField::new(1).sample(p, t);
        let b = WeatherField::new(2).sample(p, t);
        assert!((a.wind_mps - b.wind_mps).abs() > 1e-6);
    }

    #[test]
    fn gridded_product_is_hourly_constant() {
        let f = WeatherField::new(3);
        let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
        let g1 = f.gridded(&bounds, 4, 6, Timestamp(HOUR + 5 * MINUTE));
        let g2 = f.gridded(&bounds, 4, 6, Timestamp(HOUR + 50 * MINUTE));
        assert_eq!(g1.len(), 24);
        for (a, b) in g1.iter().zip(&g2) {
            assert_eq!(a.1, b.1, "same hour, same product");
        }
        let g3 = f.gridded(&bounds, 4, 6, Timestamp(2 * HOUR + 5 * MINUTE));
        assert!(g1.iter().zip(&g3).any(|(a, b)| a.1 != b.1), "new hour, new product");
    }

    #[test]
    fn grid_cells_inside_bounds() {
        let f = WeatherField::new(4);
        let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
        for (p, _) in f.gridded(&bounds, 3, 3, Timestamp(0)) {
            assert!(bounds.contains(p));
        }
    }
}
