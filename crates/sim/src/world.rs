//! World models: ports, lanes, zones and prebuilt scenario regions.

use mda_geo::{BoundingBox, Polygon, Position};
use serde::{Deserialize, Serialize};

/// A port (named anchor point of traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port name (also used as destination string in type-5 messages).
    pub name: String,
    /// Port position.
    pub pos: Position,
}

/// What a zone means to the event detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZoneKind {
    /// Fishing or navigation prohibited.
    ProtectedArea,
    /// Designated anchorage.
    Anchorage,
    /// Port approach area.
    PortApproach,
    /// Generic surveillance region of interest.
    Surveillance,
}

/// A named polygonal zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// Zone name.
    pub name: String,
    /// Zone semantics.
    pub kind: ZoneKind,
    /// Zone geometry.
    pub area: Polygon,
}

/// A shipping lane: an ordered waypoint polyline between two ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lane {
    /// Index of the origin port in [`World::ports`].
    pub from: usize,
    /// Index of the destination port.
    pub to: usize,
    /// Waypoints from origin to destination (inclusive of both port
    /// positions).
    pub waypoints: Vec<Position>,
}

/// A complete scenario world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// Region of interest.
    pub bounds: BoundingBox,
    /// Ports.
    pub ports: Vec<Port>,
    /// Lanes between ports.
    pub lanes: Vec<Lane>,
    /// Zones of interest.
    pub zones: Vec<Zone>,
}

impl World {
    /// Zones of a given kind.
    pub fn zones_of(&self, kind: ZoneKind) -> impl Iterator<Item = &Zone> {
        self.zones.iter().filter(move |z| z.kind == kind)
    }

    /// Find a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// A regional world modelled on the Gulf of Lion (NW Mediterranean):
    /// three ports, criss-crossing lanes, one protected area, one
    /// anchorage. All experiments except Figure 1 run here.
    pub fn gulf_of_lion() -> World {
        let marseille = Port { name: "MARSEILLE".into(), pos: Position::new(43.28, 5.33) };
        let toulon = Port { name: "TOULON".into(), pos: Position::new(43.08, 5.93) };
        let sete = Port { name: "SETE".into(), pos: Position::new(43.37, 3.69) };
        let offshore = Position::new(42.5, 4.8); // open-sea waypoint

        let lanes = vec![
            Lane {
                from: 0,
                to: 1,
                waypoints: vec![
                    marseille.pos,
                    Position::new(43.15, 5.40),
                    Position::new(43.02, 5.70),
                    toulon.pos,
                ],
            },
            Lane {
                from: 0,
                to: 2,
                waypoints: vec![
                    marseille.pos,
                    Position::new(43.10, 4.90),
                    Position::new(43.20, 4.20),
                    sete.pos,
                ],
            },
            Lane {
                from: 1,
                to: 2,
                waypoints: vec![
                    toulon.pos,
                    Position::new(42.85, 5.30),
                    offshore,
                    Position::new(43.00, 4.00),
                    sete.pos,
                ],
            },
        ];

        let protected = Zone {
            name: "CALANQUES-RESERVE".into(),
            kind: ZoneKind::ProtectedArea,
            area: Polygon::new(vec![
                Position::new(43.10, 5.35),
                Position::new(43.10, 5.60),
                Position::new(43.22, 5.60),
                Position::new(43.22, 5.35),
            ])
            .expect("4 vertices"),
        };
        let anchorage = Zone {
            name: "MARSEILLE-ANCHORAGE".into(),
            kind: ZoneKind::Anchorage,
            area: Polygon::circle(Position::new(43.24, 5.25), 4_000.0),
        };
        let approach = Zone {
            name: "MARSEILLE-APPROACH".into(),
            kind: ZoneKind::PortApproach,
            area: Polygon::circle(marseille.pos, 9_000.0),
        };

        World {
            bounds: BoundingBox::new(42.0, 3.0, 43.9, 6.5),
            ports: vec![marseille, toulon, sete],
            lanes,
            zones: vec![protected, anchorage, approach],
        }
    }

    /// A global world: major ports on all continents connected by
    /// long-haul trade lanes. Used by the Figure-1 coverage experiment.
    pub fn global_trade() -> World {
        let ports = [
            ("ROTTERDAM", 51.95, 4.05),
            ("NEW YORK", 40.50, -73.80),
            ("SANTOS", -24.05, -46.25),
            ("CAPE TOWN", -33.90, 18.30),
            ("SINGAPORE", 1.20, 103.80),
            ("SHANGHAI", 31.00, 122.20),
            ("TOKYO", 35.30, 139.90),
            ("LOS ANGELES", 33.60, -118.30),
            ("SYDNEY", -33.95, 151.30),
            ("DUBAI", 25.20, 55.20),
            ("MUMBAI", 18.85, 72.75),
            ("LAGOS", 6.30, 3.30),
        ]
        .iter()
        .map(|(n, lat, lon)| Port { name: (*n).into(), pos: Position::new(*lat, *lon) })
        .collect::<Vec<_>>();

        // Lanes as port-index pairs with optional via-waypoints; the
        // routes are stylised great-circle-ish polylines avoiding land
        // only approximately — adequate for coverage statistics.
        let route = |from: usize, to: usize, via: &[(f64, f64)]| {
            let mut waypoints = vec![ports[from].pos];
            waypoints.extend(via.iter().map(|(a, b)| Position::new(*a, *b)));
            waypoints.push(ports[to].pos);
            Lane { from, to, waypoints }
        };

        let lanes = vec![
            route(0, 1, &[(49.0, -10.0), (45.0, -40.0)]), // N Atlantic
            route(1, 2, &[(25.0, -65.0), (0.0, -40.0)]),  // Americas
            route(2, 3, &[(-30.0, -20.0)]),               // S Atlantic
            route(3, 4, &[(-35.0, 40.0), (-10.0, 80.0), (0.0, 95.0)]), // Indian Ocean
            route(4, 5, &[(5.0, 108.0), (20.0, 117.0)]),  // SCS
            route(5, 6, &[(32.0, 128.0)]),                // ECS
            route(6, 7, &[(40.0, 160.0), (40.0, -150.0)]), // N Pacific
            route(4, 8, &[(-10.0, 110.0), (-25.0, 130.0)]), // Australia
            route(9, 4, &[(22.0, 62.0), (8.0, 75.0)]),    // Gulf–Asia
            route(0, 9, &[(36.0, -6.0), (33.0, 15.0), (31.5, 32.3), (27.0, 34.0), (12.5, 45.0)]), // Suez
            route(10, 9, &[(20.0, 65.0)]), // Mumbai–Dubai
            route(11, 0, &[(15.0, -18.0), (36.0, -7.0)]), // W Africa–Europe
        ];

        World { bounds: BoundingBox::WORLD, ports, lanes, zones: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gulf_world_is_consistent() {
        let w = World::gulf_of_lion();
        assert_eq!(w.ports.len(), 3);
        assert!(!w.lanes.is_empty());
        for lane in &w.lanes {
            assert!(lane.from < w.ports.len() && lane.to < w.ports.len());
            assert!(lane.waypoints.len() >= 2);
            // Lane endpoints coincide with the port positions.
            assert_eq!(lane.waypoints[0], w.ports[lane.from].pos);
            assert_eq!(*lane.waypoints.last().unwrap(), w.ports[lane.to].pos);
            for p in &lane.waypoints {
                assert!(w.bounds.contains(*p), "waypoint {p} outside bounds");
            }
        }
        assert_eq!(w.zones_of(ZoneKind::ProtectedArea).count(), 1);
        assert!(w.port("MARSEILLE").is_some());
        assert!(w.port("ATLANTIS").is_none());
    }

    #[test]
    fn global_world_spans_oceans() {
        let w = World::global_trade();
        assert!(w.ports.len() >= 10);
        assert!(w.lanes.len() >= 10);
        let lon_span: Vec<f64> = w.ports.iter().map(|p| p.pos.lon).collect();
        assert!(lon_span.iter().cloned().fold(f64::INFINITY, f64::min) < -70.0);
        assert!(lon_span.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 130.0);
        for lane in &w.lanes {
            assert!(lane.waypoints.len() >= 2);
            for p in &lane.waypoints {
                assert!(p.is_valid());
            }
        }
    }
}
