//! Sensor/receiver models: terrestrial AIS, satellite AIS, coastal
//! radar, VMS.
//!
//! These models decide what of the ground truth is observed, when it
//! arrives, and how distorted it is — the volume/velocity/veracity
//! texture of real maritime feeds:
//!
//! - terrestrial AIS: range-limited, near-real-time, rare loss;
//! - satellite AIS: global but lossy (message collisions) and delivered
//!   in *delayed batches*, which is where out-of-order arrival comes
//!   from;
//! - coastal radar: range-limited, anonymous, coarse, but sees vessels
//!   whose transponder is off;
//! - VMS: fisheries-only, sparse polling, identity-bearing.

use mda_geo::distance::{destination, haversine_m};
use mda_geo::units::nm_to_meters;
use mda_geo::{DurationMs, Fix, Position, Timestamp, VesselId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Class-A AIS reporting interval as a function of speed (simplified
/// SOTDMA schedule).
pub fn ais_report_interval(sog_kn: f64) -> DurationMs {
    if sog_kn < 0.5 {
        3 * mda_geo::time::MINUTE // at anchor/moored
    } else if sog_kn < 14.0 {
        10 * mda_geo::time::SECOND
    } else if sog_kn < 23.0 {
        6 * mda_geo::time::SECOND
    } else {
        2 * mda_geo::time::SECOND
    }
}

/// A shore AIS receiving station.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShoreStation {
    /// Station position.
    pub pos: Position,
    /// Reception range in nautical miles (VHF horizon).
    pub range_nm: f64,
}

impl ShoreStation {
    /// True if a transmitter at `p` is within range.
    pub fn covers(&self, p: Position) -> bool {
        haversine_m(self.pos, p) <= nm_to_meters(self.range_nm)
    }
}

/// The terrestrial + satellite AIS reception model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AisReception {
    /// Shore stations.
    pub stations: Vec<ShoreStation>,
    /// Probability a satellite decodes a message outside shore coverage
    /// (message collisions in dense areas make this well below 1).
    pub satellite_decode_prob: f64,
    /// Satellite downlink batching period.
    pub satellite_batch: DurationMs,
    /// Additional satellite processing delay bounds (uniform).
    pub satellite_delay: (DurationMs, DurationMs),
}

impl AisReception {
    /// Typical regional setup: stations at the given points, moderate
    /// satellite pickup.
    pub fn regional(stations: Vec<Position>) -> Self {
        Self {
            stations: stations
                .into_iter()
                .map(|pos| ShoreStation { pos, range_nm: 40.0 })
                .collect(),
            satellite_decode_prob: 0.6,
            satellite_batch: 15 * mda_geo::time::MINUTE,
            satellite_delay: (5 * mda_geo::time::MINUTE, 30 * mda_geo::time::MINUTE),
        }
    }

    /// Satellite-only reception (the Figure-1 global picture).
    pub fn satellite_only(decode_prob: f64) -> Self {
        Self {
            stations: Vec::new(),
            satellite_decode_prob: decode_prob,
            satellite_batch: 15 * mda_geo::time::MINUTE,
            satellite_delay: (5 * mda_geo::time::MINUTE, 30 * mda_geo::time::MINUTE),
        }
    }

    /// Decide reception of a message transmitted at `t` from `pos`.
    /// Returns `(received_at, via_satellite)` or `None` if lost.
    pub fn receive(
        &self,
        t: Timestamp,
        pos: Position,
        rng: &mut impl Rng,
    ) -> Option<(Timestamp, bool)> {
        if self.stations.iter().any(|s| s.covers(pos)) {
            // Terrestrial: tiny latency, 2% loss.
            if rng.gen_bool(0.98) {
                return Some((t + rng.gen_range(0..2_000), false));
            }
            return None;
        }
        if rng.gen_bool(self.satellite_decode_prob) {
            // Delivered at the end of the batch window plus a processing
            // delay: late and out of order relative to terrestrial.
            let batch_end =
                Timestamp((t.millis().div_euclid(self.satellite_batch) + 1) * self.satellite_batch);
            let delay = rng.gen_range(self.satellite_delay.0..=self.satellite_delay.1);
            return Some((batch_end + delay, true));
        }
        None
    }
}

/// A coastal radar station.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadarStation {
    /// Antenna position.
    pub pos: Position,
    /// Instrumented range in nautical miles.
    pub range_nm: f64,
    /// Scan (revisit) period.
    pub scan_period: DurationMs,
    /// Probability of detecting a vessel in range on one scan.
    pub detection_prob: f64,
    /// 1-sigma plot noise in metres.
    pub sigma_m: f64,
}

impl RadarStation {
    /// Default coastal surveillance radar at `pos`.
    pub fn coastal(pos: Position) -> Self {
        Self {
            pos,
            range_nm: 24.0,
            scan_period: 30 * mda_geo::time::SECOND,
            detection_prob: 0.9,
            sigma_m: 150.0,
        }
    }

    /// Attempt to detect a true position on one scan; returns the noisy
    /// plot position.
    pub fn observe(&self, true_pos: Position, rng: &mut impl Rng) -> Option<Position> {
        if haversine_m(self.pos, true_pos) > nm_to_meters(self.range_nm) {
            return None;
        }
        if !rng.gen_bool(self.detection_prob) {
            return None;
        }
        // Rayleigh-ish radial error: uniform bearing, |N(0,sigma)| radius.
        let r: f64 = rng.gen_range(0.0f64..1.0);
        let radius = self.sigma_m * (-2.0 * (1.0 - r).max(1e-12).ln()).sqrt() / 1.414;
        Some(destination(true_pos, rng.gen_range(0.0..360.0), radius))
    }
}

/// An anonymous radar plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadarPlot {
    /// Plot time.
    pub t: Timestamp,
    /// Measured position.
    pub pos: Position,
    /// The true vessel that caused the plot — ground truth for scoring,
    /// never shown to the analytics.
    pub truth_id: VesselId,
}

/// A VMS position report (fisheries monitoring).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmsReport {
    /// Report time (VMS delivery is effectively reliable).
    pub t: Timestamp,
    /// Reported position.
    pub pos: Position,
    /// Vessel identity (VMS is a regulated, identity-bearing channel).
    pub id: VesselId,
}

/// VMS polling period for fishing vessels.
pub const VMS_PERIOD: DurationMs = 2 * mda_geo::time::HOUR;

/// Generate a VMS report for a fix if the poll timer fires at `t`.
pub fn vms_poll(fix: &Fix, rng: &mut impl Rng) -> VmsReport {
    // VMS terminals use GPS too but are often older units: 30 m noise.
    let noisy = destination(fix.pos, rng.gen_range(0.0..360.0), rng.gen_range(0.0..30.0));
    VmsReport { t: fix.t, pos: noisy, id: fix.id }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn reporting_interval_by_speed() {
        assert_eq!(ais_report_interval(0.0), 180_000);
        assert_eq!(ais_report_interval(10.0), 10_000);
        assert_eq!(ais_report_interval(20.0), 6_000);
        assert_eq!(ais_report_interval(28.0), 2_000);
    }

    #[test]
    fn shore_coverage_is_range_limited() {
        let s = ShoreStation { pos: Position::new(43.3, 5.3), range_nm: 40.0 };
        assert!(s.covers(Position::new(43.0, 5.3)));
        assert!(!s.covers(Position::new(41.0, 5.3)));
    }

    #[test]
    fn terrestrial_reception_is_prompt() {
        let rx = AisReception::regional(vec![Position::new(43.3, 5.3)]);
        let mut rng = StdRng::seed_from_u64(1);
        let t = Timestamp::from_secs(1_000);
        let mut latencies = Vec::new();
        for _ in 0..100 {
            if let Some((rt, sat)) = rx.receive(t, Position::new(43.2, 5.3), &mut rng) {
                assert!(!sat);
                latencies.push(rt - t);
            }
        }
        assert!(latencies.len() > 90, "low loss expected");
        assert!(latencies.iter().all(|l| *l < 2_000));
    }

    #[test]
    fn satellite_reception_is_late_and_lossy() {
        let rx = AisReception::regional(vec![Position::new(43.3, 5.3)]);
        let mut rng = StdRng::seed_from_u64(2);
        let t = Timestamp::from_secs(1_000);
        let far = Position::new(40.0, 5.3); // outside shore range
        let mut received = 0;
        for _ in 0..200 {
            if let Some((rt, sat)) = rx.receive(t, far, &mut rng) {
                assert!(sat);
                assert!(rt - t >= 5 * mda_geo::time::MINUTE, "latency {}", rt - t);
                received += 1;
            }
        }
        let rate = received as f64 / 200.0;
        assert!((0.4..0.8).contains(&rate), "decode rate {rate}");
    }

    #[test]
    fn satellite_batching_quantises_delivery() {
        let rx = AisReception::satellite_only(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let far = Position::new(0.0, -30.0);
        // Two transmissions in the same batch window arrive after the
        // same batch boundary.
        let (r1, _) = rx.receive(Timestamp::from_secs(60), far, &mut rng).unwrap();
        let (r2, _) = rx.receive(Timestamp::from_secs(120), far, &mut rng).unwrap();
        let boundary = Timestamp(15 * mda_geo::time::MINUTE);
        assert!(r1 >= boundary && r2 >= boundary);
    }

    #[test]
    fn radar_detects_in_range_with_noise() {
        let radar = RadarStation::coastal(Position::new(43.3, 5.3));
        let mut rng = StdRng::seed_from_u64(4);
        let target = Position::new(43.1, 5.3);
        let mut detections = 0;
        let mut total_err = 0.0;
        for _ in 0..200 {
            if let Some(plot) = radar.observe(target, &mut rng) {
                detections += 1;
                total_err += haversine_m(plot, target);
            }
        }
        assert!(detections > 150, "detections {detections}");
        let mean_err = total_err / detections as f64;
        assert!((30.0..400.0).contains(&mean_err), "mean error {mean_err}");
        // Out of range: never detected.
        assert!(radar.observe(Position::new(40.0, 5.3), &mut rng).is_none());
    }

    #[test]
    fn vms_is_identity_bearing_and_mildly_noisy() {
        let mut rng = StdRng::seed_from_u64(5);
        let fix = Fix::new(42, Timestamp::from_secs(0), Position::new(42.5, 4.5), 4.0, 120.0);
        let r = vms_poll(&fix, &mut rng);
        assert_eq!(r.id, 42);
        assert!(haversine_m(r.pos, fix.pos) < 31.0);
    }
}
