//! Labelled corruption injection: the veracity dimension.
//!
//! Every corrupted artefact carries its ground-truth label so the C2/C3
//! experiments can score detector precision and recall instead of
//! guessing. Rates default to the figures the paper quotes: ~5% of
//! static transmissions carry errors; 27% of ships going dark at least
//! 10% of the time.

use mda_ais::messages::StaticVoyageData;
use mda_geo::distance::destination;
use mda_geo::{DurationMs, Position, Timestamp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth label attached to every simulated observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionLabel {
    /// Unmodified.
    Clean,
    /// A static field was corrupted before transmission.
    StaticError,
    /// The position was offset by GPS spoofing.
    Spoofed,
    /// Transmitted under a stolen identity.
    IdentityFraud,
}

/// A time interval (closed) during which some deception is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// Start of the episode.
    pub start: Timestamp,
    /// End of the episode.
    pub end: Timestamp,
}

impl Episode {
    /// True if `t` falls inside the episode.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t <= self.end
    }

    /// Episode length.
    pub fn duration(&self) -> DurationMs {
        self.end - self.start
    }
}

/// Carve `count` non-overlapping episodes totalling `fraction` of
/// `[t0, t0+duration]`.
pub fn carve_episodes(
    t0: Timestamp,
    duration: DurationMs,
    fraction: f64,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<Episode> {
    if fraction <= 0.0 || count == 0 || duration <= 0 {
        return Vec::new();
    }
    let total_dark = (duration as f64 * fraction.min(0.95)) as DurationMs;
    let each = total_dark / count as i64;
    let slot = duration / count as i64;
    (0..count)
        .map(|i| {
            let slot_start = t0 + slot * i as i64;
            let wiggle = (slot - each).max(1);
            let start = slot_start + rng.gen_range(0..wiggle);
            Episode { start, end: start + each }
        })
        .collect()
}

/// Corrupt one static & voyage message in place; returns what was done.
///
/// With probability `rate` one of the classical defects is injected:
/// broken IMO check digit, blanked name, blanked destination ("obscured
/// destination"), zeroed dimensions, absurd ETA.
pub fn corrupt_static(
    msg: &mut StaticVoyageData,
    rate: f64,
    rng: &mut impl Rng,
) -> CorruptionLabel {
    if !rng.gen_bool(rate.clamp(0.0, 1.0)) {
        return CorruptionLabel::Clean;
    }
    match rng.gen_range(0..5) {
        0 => msg.imo = msg.imo.wrapping_add(1), // breaks the check digit
        1 => msg.name = String::new(),
        2 => msg.destination = String::new(),
        3 => {
            msg.dim_to_bow = 0;
            msg.dim_to_stern = 0;
            msg.dim_to_port = 0;
            msg.dim_to_starboard = 0;
        }
        _ => {
            msg.eta_month = 13;
            msg.eta_day = 32;
        }
    }
    CorruptionLabel::StaticError
}

/// A GPS spoofing offset: positions reported during the episode are
/// displaced by a fixed vector (consistent with real spoofing traces,
/// where the fake track is smooth but elsewhere).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpoofOffset {
    /// Bearing of the displacement, degrees.
    pub bearing_deg: f64,
    /// Magnitude of the displacement, metres.
    pub distance_m: f64,
}

impl SpoofOffset {
    /// Random offset between 20 and 80 km — far enough to matter, close
    /// enough to be plausible.
    pub fn random(rng: &mut impl Rng) -> Self {
        Self {
            bearing_deg: rng.gen_range(0.0..360.0),
            distance_m: rng.gen_range(20_000.0..80_000.0),
        }
    }

    /// Apply the offset to a true position.
    pub fn apply(&self, p: Position) -> Position {
        destination(p, self.bearing_deg, self.distance_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_ais::messages::ShipType;
    use mda_ais::quality::{imo_from_stem, validate_static};
    use rand::{rngs::StdRng, SeedableRng};

    fn clean_static() -> StaticVoyageData {
        StaticVoyageData {
            repeat: 0,
            mmsi: 227_000_001,
            imo: imo_from_stem(900_001),
            callsign: "FC0001".into(),
            name: "ASTER 1".into(),
            ship_type: ShipType::Cargo,
            dim_to_bow: 90,
            dim_to_stern: 30,
            dim_to_port: 8,
            dim_to_starboard: 8,
            eta_month: 6,
            eta_day: 15,
            eta_hour: 12,
            eta_minute: 0,
            draught_m: 7.0,
            destination: "MARSEILLE".into(),
        }
    }

    #[test]
    fn episodes_cover_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        let day = mda_geo::time::DAY;
        let eps = carve_episodes(Timestamp(0), day, 0.2, 3, &mut rng);
        assert_eq!(eps.len(), 3);
        let total: i64 = eps.iter().map(|e| e.duration()).sum();
        let frac = total as f64 / day as f64;
        assert!((frac - 0.2).abs() < 0.02, "fraction {frac}");
        // Non-overlapping and ordered.
        for w in eps.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn zero_fraction_no_episodes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(carve_episodes(Timestamp(0), 1_000_000, 0.0, 3, &mut rng).is_empty());
        assert!(carve_episodes(Timestamp(0), 1_000_000, 0.5, 0, &mut rng).is_empty());
    }

    #[test]
    fn episode_membership() {
        let e = Episode { start: Timestamp(100), end: Timestamp(200) };
        assert!(e.contains(Timestamp(100)));
        assert!(e.contains(Timestamp(150)));
        assert!(e.contains(Timestamp(200)));
        assert!(!e.contains(Timestamp(201)));
        assert_eq!(e.duration(), 100);
    }

    #[test]
    fn corruption_rate_matches_and_is_detectable() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4_000;
        let mut corrupted = 0;
        let mut detected = 0;
        for _ in 0..n {
            let mut msg = clean_static();
            let label = corrupt_static(&mut msg, 0.05, &mut rng);
            if label == CorruptionLabel::StaticError {
                corrupted += 1;
                if !validate_static(&msg).is_clean() {
                    detected += 1;
                }
            } else {
                assert!(validate_static(&msg).is_clean(), "clean message flagged");
            }
        }
        let rate = corrupted as f64 / n as f64;
        assert!((0.035..0.065).contains(&rate), "rate {rate}");
        // Every injected defect is of a kind the validator can see.
        assert_eq!(detected, corrupted);
    }

    #[test]
    fn spoof_offset_is_consistent() {
        let mut rng = StdRng::seed_from_u64(4);
        let off = SpoofOffset::random(&mut rng);
        let p1 = Position::new(43.0, 5.0);
        let p2 = Position::new(43.01, 5.01);
        let d1 = mda_geo::distance::haversine_m(p1, off.apply(p1));
        let d2 = mda_geo::distance::haversine_m(p2, off.apply(p2));
        assert!((d1 - off.distance_m).abs() < 5.0);
        assert!((d1 - d2).abs() < 50.0, "offset is rigid");
        assert!(off.distance_m >= 20_000.0 && off.distance_m <= 80_000.0);
    }
}
