//! Maritime world simulator — the data substitution substrate.
//!
//! The paper's experiments presume data nobody can ship in a library:
//! live terrestrial + satellite AIS feeds (~18M positions/day), coastal
//! radar, VMS, and real deceptive behaviour (spoofing, identity fraud,
//! going dark). This crate synthesises all of it with the statistical
//! structure the analytics must face, plus ground-truth labels so
//! detection quality can be *scored* rather than eyeballed:
//!
//! - [`world`] — ports, shipping lanes, zones (protected areas,
//!   anchorages), scenario regions: a Gulf-of-Lion regional world and a
//!   global trade-lane world for the Figure-1 experiment.
//! - [`vessel`] — vessel specifications (MMSI/IMO/name/type) and
//!   behaviour profiles (lane transit, ferry, fishing, loitering).
//! - [`kinematics`] — waypoint-following motion with turn-rate limits,
//!   port dwell, fishing random walks; produces ground-truth tracks.
//! - [`receivers`] — terrestrial AIS stations (range-limited, low
//!   latency), satellite AIS (global, lossy, batch-delayed — the source
//!   of out-of-order arrivals), coastal radar and VMS models.
//! - [`corruption`] — labelled injection of the paper's veracity
//!   problems: ~5% static-data errors, GPS spoofing, identity fraud,
//!   go-dark intervals (27% of ships dark ≥10% of the time).
//! - [`weather`] — smooth synthetic wind/wave/current fields at the
//!   coarse resolution the paper describes for met-ocean data.
//! - [`scenario`] — ties everything into a reproducible [`scenario::SimOutput`]:
//!   ground truth + observed multi-sensor streams, sorted by arrival.
//!
//! ## Example
//!
//! ```
//! use mda_sim::{Scenario, ScenarioConfig};
//!
//! // Ten simulated minutes of a four-vessel fleet in the Gulf of Lion.
//! let sim = Scenario::generate(ScenarioConfig::regional(7, 4, 10 * mda_geo::time::MINUTE));
//! assert!(!sim.ais.is_empty(), "receivers heard AIS traffic");
//! assert!(!sim.truth.is_empty(), "ground-truth tracks were recorded");
//! ```

pub mod corruption;
pub mod kinematics;
pub mod receivers;
pub mod scenario;
pub mod vessel;
pub mod weather;
pub mod world;

pub use scenario::{Scenario, ScenarioConfig, SimOutput};
pub use vessel::{Behavior, DeceptionProfile, VesselSpec};
pub use world::{Port, World, Zone, ZoneKind};
