//! Vessel specifications and behaviour profiles.

use mda_ais::messages::ShipType;
use mda_ais::quality::imo_from_stem;
use mda_geo::{Position, VesselId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a vessel moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Sail a lane from origin to destination, dwell, come back.
    LaneTransit {
        /// Index into [`crate::world::World::lanes`].
        lane: usize,
        /// Cruise speed in knots.
        speed_kn: f64,
        /// Dwell time at each end, minutes.
        dwell_min: i64,
    },
    /// Transit to a fishing ground, fish (slow random walk), return.
    Fishing {
        /// Centre of the fishing ground.
        ground: Position,
        /// Radius of the ground in metres.
        radius_m: f64,
        /// Transit speed in knots.
        transit_kn: f64,
        /// Fishing speed in knots.
        fishing_kn: f64,
        /// Home port index.
        home_port: usize,
    },
    /// Loiter near a point (suspicious pattern: drifting/waiting).
    Loiter {
        /// Loiter centre.
        center: Position,
        /// Loiter radius in metres.
        radius_m: f64,
    },
}

/// Deception characteristics of a vessel (the veracity dimension).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeceptionProfile {
    /// Fraction of the scenario duration spent with the transponder off
    /// (0 = honest; the paper's population figure is 27% of ships dark
    /// at least 10% of the time).
    pub dark_fraction: f64,
    /// If true, reported positions are offset during a spoofing episode.
    pub gps_spoofing: bool,
    /// If set, the vessel transmits this stolen MMSI instead of its own
    /// for part of the run (identity fraud).
    pub cloned_mmsi: Option<VesselId>,
}

impl DeceptionProfile {
    /// An honest vessel.
    pub fn honest() -> Self {
        Self::default()
    }

    /// True if any deception is configured.
    pub fn is_deceptive(&self) -> bool {
        self.dark_fraction > 0.0 || self.gps_spoofing || self.cloned_mmsi.is_some()
    }
}

/// Full static description of a simulated vessel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VesselSpec {
    /// True MMSI.
    pub mmsi: VesselId,
    /// IMO number (valid check digit).
    pub imo: u32,
    /// Ship name.
    pub name: String,
    /// Call sign.
    pub callsign: String,
    /// Ship type.
    pub ship_type: ShipType,
    /// Length overall, metres.
    pub length_m: u16,
    /// Beam, metres.
    pub beam_m: u8,
    /// Draught, metres.
    pub draught_m: f64,
    /// Behaviour profile.
    pub behavior: Behavior,
    /// Deception profile.
    pub deception: DeceptionProfile,
}

const NAME_STEMS: [&str; 16] = [
    "ASTER", "BOREAL", "CORMORAN", "DAUPHIN", "ETOILE", "FLAMANT", "GOELAND", "HERMINE", "IBIS",
    "JASON", "KRAKEN", "LIBECCIO", "MISTRAL", "NEPTUNE", "ORION", "PELICAN",
];

impl VesselSpec {
    /// Mint a plausible vessel of the given type with a French-flag MMSI
    /// derived from `index`.
    pub fn mint(index: u32, ship_type: ShipType, behavior: Behavior, rng: &mut impl Rng) -> Self {
        let mmsi = 227_000_000 + index; // MID 227 = France
        let (length_m, beam_m, draught_m, speed_class): (u16, u8, f64, &str) = match ship_type {
            ShipType::Cargo => {
                (rng.gen_range(90..220), rng.gen_range(14..32), rng.gen_range(6.0..12.0), "C")
            }
            ShipType::Tanker => {
                (rng.gen_range(120..300), rng.gen_range(18..45), rng.gen_range(8.0..16.0), "T")
            }
            ShipType::Fishing => {
                (rng.gen_range(12..40), rng.gen_range(4..10), rng.gen_range(2.0..5.0), "F")
            }
            ShipType::Passenger => {
                (rng.gen_range(60..180), rng.gen_range(12..28), rng.gen_range(4.0..7.0), "P")
            }
            _ => (rng.gen_range(20..80), rng.gen_range(6..14), rng.gen_range(2.0..6.0), "V"),
        };
        let stem = NAME_STEMS[(index as usize) % NAME_STEMS.len()];
        VesselSpec {
            mmsi,
            imo: imo_from_stem(900_000 + index),
            name: format!("{stem} {}", index),
            callsign: format!("F{speed_class}{:04}", index % 10_000),
            ship_type,
            length_m,
            beam_m,
            draught_m,
            behavior,
            deception: DeceptionProfile::honest(),
        }
    }

    /// Static & voyage message content for this vessel.
    pub fn static_voyage(&self, destination: &str) -> mda_ais::messages::StaticVoyageData {
        mda_ais::messages::StaticVoyageData {
            repeat: 0,
            mmsi: self.mmsi,
            imo: self.imo,
            callsign: self.callsign.clone(),
            name: self.name.clone(),
            ship_type: self.ship_type,
            dim_to_bow: self.length_m.saturating_sub(self.length_m / 4),
            dim_to_stern: self.length_m / 4,
            dim_to_port: self.beam_m / 2,
            dim_to_starboard: self.beam_m - self.beam_m / 2,
            eta_month: 6,
            eta_day: 15,
            eta_hour: 12,
            eta_minute: 0,
            draught_m: self.draught_m,
            destination: destination.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_ais::quality::{imo_check_digit_valid, validate_static};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn minted_vessels_are_clean() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..20 {
            let v = VesselSpec::mint(
                i,
                ShipType::Cargo,
                Behavior::Loiter { center: Position::new(43.0, 5.0), radius_m: 1000.0 },
                &mut rng,
            );
            assert!(imo_check_digit_valid(v.imo), "IMO {}", v.imo);
            assert!(mda_ais::Mmsi(v.mmsi).is_plausible());
            let report = validate_static(&v.static_voyage("MARSEILLE"));
            assert!(report.is_clean(), "vessel {i}: {:?}", report.issues);
        }
    }

    #[test]
    fn dimensions_by_type() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = VesselSpec::mint(
            1,
            ShipType::Fishing,
            Behavior::Loiter { center: Position::new(0.0, 0.0), radius_m: 1.0 },
            &mut rng,
        );
        let t = VesselSpec::mint(
            2,
            ShipType::Tanker,
            Behavior::Loiter { center: Position::new(0.0, 0.0), radius_m: 1.0 },
            &mut rng,
        );
        assert!(f.length_m < t.length_m);
        let sv = t.static_voyage("DUBAI");
        assert_eq!(sv.length_m(), t.length_m);
        assert_eq!(sv.beam_m(), t.beam_m as u16);
    }

    #[test]
    fn deception_profile_flags() {
        assert!(!DeceptionProfile::honest().is_deceptive());
        assert!(DeceptionProfile { dark_fraction: 0.2, ..Default::default() }.is_deceptive());
        assert!(DeceptionProfile { gps_spoofing: true, ..Default::default() }.is_deceptive());
        assert!(DeceptionProfile { cloned_mmsi: Some(1), ..Default::default() }.is_deceptive());
    }
}
