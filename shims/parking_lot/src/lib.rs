//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind `parking_lot`'s non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly, with poison
//! recovery on panic). The real crate's performance edge does not
//! matter at current scale; swap it in via `[workspace.dependencies]`
//! when contention profiling says otherwise.
//!
//! ```
//! let lock = parking_lot::RwLock::new(5u32);
//! *lock.write() += 1;
//! assert_eq!(*lock.read(), 6);
//! ```

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_concurrent_counts() {
        let lock = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 400);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
