//! Offline stand-in for `criterion`.
//!
//! Implements the bench-definition surface the workspace uses
//! (`criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], `iter`/`iter_batched`, [`Throughput`],
//! [`BenchmarkId`], [`black_box`]) with a plain wall-clock harness: each
//! benchmark runs `sample_size` timed batches and reports the median
//! per-iteration time. No statistics, no HTML reports — enough for
//! before/after comparisons in CHANGES.md until the real criterion can
//! be vendored.
//!
//! ```no_run
//! use criterion::{criterion_group, criterion_main, Criterion};
//!
//! fn bench(c: &mut Criterion) {
//!     c.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! }
//! criterion_group!(benches, bench);
//! criterion_main!(benches);
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost; carried for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup runs once per iteration here.
    SmallInput,
    /// Large per-iteration inputs; treated identically in this shim.
    LargeInput,
}

/// Throughput annotation echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Join a function name and a parameter into an id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self { samples: Vec::new(), iters_per_sample: 1, sample_count }
    }

    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.calibrate(|| {
            black_box(routine());
        });
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
        self.iters_per_sample = 1;
    }

    /// Pick an iteration count that makes one sample take ≳200µs, then
    /// record `sample_count` timed samples.
    fn calibrate(&mut self, mut once: impl FnMut()) {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                once();
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                once();
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        ns[ns.len() / 2]
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, throughput: Option<Throughput>, bencher: &Bencher) {
    let ns = bencher.median_ns();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / ns)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{name:<50} time: {}{rate}", human_ns(ns));
}

/// Top-level benchmark driver mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// CLI-config hook; a no-op in this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, None, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{id}", self.name), self.throughput, &b);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), self.throughput, &b);
        self
    }

    /// Close the group (report-flush hook; a no-op here).
    pub fn finish(self) {}
}

/// Define a bench group: either `criterion_group!(name, fn_a, fn_b)` or
/// the struct form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Criterion benchmark group `", stringify!($name), "`.")]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_nonzero_time() {
        let mut c = Criterion::default().sample_size(3);
        let mut b = Bencher::new(3);
        b.iter(|| black_box(41u64) + 1);
        assert!(b.median_ns() >= 0.0);
        assert!(!b.samples.is_empty());
        c.bench_function("noop", |b| b.iter(|| 1u8));
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }
}
