//! Offline stand-in for `crossbeam`.
//!
//! Supplies `crossbeam::channel::unbounded` on top of
//! `std::sync::mpsc`, which covers the workspace's usage: one consumer
//! per receiver, senders dropped to close the channel, receivers
//! drained by iteration. The real crossbeam adds select!/mpmc
//! semantics the stream runner does not need yet.
//!
//! ```
//! let (tx, rx) = crossbeam::channel::unbounded();
//! for i in 0..3 {
//!     tx.send(i).unwrap();
//! }
//! drop(tx);
//! assert_eq!(rx.into_iter().sum::<i32>(), 3);
//! ```

pub mod channel {
    //! Multi-producer channels mirroring `crossbeam::channel`.

    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_across_threads() {
        let (tx, rx) = super::channel::unbounded();
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..10 {
                        tx.send(w * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let got: Vec<u64> = rx.into_iter().collect();
            assert_eq!(got.len(), 40);
        });
    }
}
