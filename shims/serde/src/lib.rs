//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this shim supplies
//! the two marker traits and the no-op derive macros the workspace
//! uses. Types annotated `#[derive(Serialize, Deserialize)]` compile
//! unchanged; nothing in the workspace performs actual serialization
//! yet. When a wire format lands, replace the `serde` entry in
//! `[workspace.dependencies]` with the real crate — no source edits
//! needed.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize)]
//! struct Tagged {
//!     value: u32,
//! }
//! let t = Tagged { value: 7 };
//! assert_eq!(t.value, 7);
//! ```

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The no-op derive does not implement it; it exists so downstream
/// code may write `T: Serialize` bounds that keep compiling when the
/// real crate is swapped in.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
