//! `any::<T>()` for types with a canonical full-domain strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;

/// Types with a default "whole domain" strategy, as in
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Sample one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

/// Full-domain strategy for `T`: `any::<bool>()`, `any::<u32>()`, ….
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
