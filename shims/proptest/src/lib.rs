//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range/tuple/`collection::vec` strategies,
//! [`Strategy::prop_map`](strategy::Strategy::prop_map),
//! and the `prop_assert*`/`prop_assume!` macros. Inputs are sampled
//! from a deterministic per-test RNG (seeded from the test's module
//! path) rather than truly shrunk — failures reproduce exactly on
//! re-run, but minimal counterexamples are up to the reader.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // (`#[test]` omitted so the doctest can call it directly)
//!     fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

pub mod option {
    //! Strategies for `Option` values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Strategy producing `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(element)`: `None` or `Some(element)` with equal probability,
    /// matching real proptest's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod collection {
    //! Strategies for collections (just `vec` here).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        length: L,
    }

    /// `vec(element, 0..20)`: vectors of `element` values whose length
    /// is drawn from `length` (itself any `usize` strategy).
    pub fn vec<S, L>(element: S, length: L) -> VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        VecStrategy { element, length }
    }

    impl<S, L> Strategy for VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.length.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring
    //! `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias of this crate so tests can write `prop::collection::vec`.
    pub use crate as prop;
}

/// Define property tests. Each function's arguments are `pattern in
/// strategy` pairs; the body runs once per sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name),
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(1000),
                    "test {}: too many rejected cases (prop_assume too strict?)",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Assert a condition inside [`proptest!`]; failure reports the sampled
/// case instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), left, right, format!($($fmt)+),
                );
            }
        }
    };
}

/// Assert two values differ inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{} != {}`, both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                );
            }
        }
    };
}

/// Discard the current case (not counted against `cases`) when a
/// sampled input misses the test's precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
