//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng as _, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type. The workspace's
/// tests build these from ranges, tuples, `prop::collection::vec`, and
/// [`Strategy::prop_map`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11),
);

/// String patterns: a `&str` literal is a strategy for `String`.
///
/// Real proptest accepts any regex; this shim supports the shape the
/// workspace uses — a single character class with a bounded repeat,
/// `"[chars]{lo,hi}"` (ranges like `A-Z` and literal chars, including
/// space, inside the class) — and treats any other pattern as a literal
/// string. Unsupported regex syntax fails loudly via `debug_assert`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((alphabet, lo, hi)) => {
                let len = rng.rng.gen_range(lo..=hi);
                (0..len).map(|_| alphabet[rng.rng.gen_range(0..alphabet.len())]).collect()
            }
            None => {
                debug_assert!(
                    !self.contains(['[', '*', '+', '?', '|', '(']),
                    "proptest shim: unsupported regex pattern {self:?}; \
                     only `[class]{{lo,hi}}` and literals are implemented",
                );
                (*self).to_string()
            }
        }
    }
}

/// Parse `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, repeat) = rest.split_once(']')?;
    let repeat = repeat.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = repeat.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    (!alphabet.is_empty() && lo <= hi).then_some((alphabet, lo, hi))
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}
