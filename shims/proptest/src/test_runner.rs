//! Test execution plumbing: config, RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Per-test configuration; only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic RNG handed to strategies. Seeded from the test's
/// fully-qualified name so every test sees a stable, independent
/// stream across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Seed from an arbitrary label (the `proptest!` macro passes the
    /// test's module path and name). Uses FNV-1a rather than std's
    /// `DefaultHasher`, whose algorithm may change between Rust
    /// releases — the input stream must not shift on a toolchain bump.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { rng: StdRng::seed_from_u64(h) }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Input missed a `prop_assume!` precondition; resample.
    Reject,
    /// A `prop_assert*` failed; the property is falsified.
    Fail(String),
}
