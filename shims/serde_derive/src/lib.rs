//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal substitute. The derive macros accept
//! the same attribute grammar as the real crate but expand to nothing:
//! the codebase only *tags* types with `#[derive(Serialize, Deserialize)]`
//! and never calls a serializer, so empty expansions are sufficient.
//! Swapping in the real `serde`/`serde_derive` later is a two-line
//! change in the workspace `Cargo.toml`.

use proc_macro::TokenStream;

/// Derive stand-in for `serde::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive stand-in for `serde::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
