//! Offline stand-in for `rand` (0.8-style API).
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the subset the workspace uses: [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] backed by
//! xoshiro256** (seeded through SplitMix64). All workspace call sites
//! seed explicitly, so determinism is preserved across runs and
//! platforms — which the simulator's scenario generation relies on.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let lane: usize = rng.gen_range(0..4);
//! let speed = rng.gen_range(8.0..22.0);
//! assert!(lane < 4);
//! assert!((8.0..22.0).contains(&speed));
//! assert_eq!(StdRng::seed_from_u64(42).gen_range(0u64..1 << 60),
//!            StdRng::seed_from_u64(42).gen_range(0u64..1 << 60));
//! ```

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a range. Mirrors
/// `rand::distributions::uniform::SampleUniform` for the primitives the
/// workspace samples.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a value in `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_in<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as $wide) - (lo as $wide) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let r = (rng.next_u64() as u128 % span as u128) as $wide;
                ((lo as $wide) + r) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128,
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges a [`Rng`] can sample from; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Seedable generators; the workspace only uses [`seed_from_u64`].
///
/// [`seed_from_u64`]: SeedableRng::seed_from_u64
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (just [`StdRng`] here).

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`. Not cryptographically secure — neither is
    /// the real `StdRng`'s contract across versions — but fast,
    /// well-distributed, and stable for reproducible simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn deterministic_and_in_range() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            for _ in 0..1000 {
                let v: i64 = a.gen_range(-50..50);
                assert!((-50..50).contains(&v));
                let f = a.gen_range(0.25f64..0.75);
                assert!((0.25..0.75).contains(&f));
                let u = a.gen_range(3usize..=9);
                assert!((3..=9).contains(&u));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(1);
            assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
            assert!((0..100).all(|_| rng.gen_bool(1.0)));
        }
    }
}
